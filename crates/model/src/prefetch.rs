//! Speculative cluster prefetch configuration (DESIGN.md §10).
//!
//! During decode step *t* the engine nominates clusters likely to be
//! selected at step *t+1* and stages their pages into the session cache's
//! bounded staging buffer. Staged transfers overlap step *t*'s compute in
//! the modeled clock (`max(compute, staged) + demand` instead of a pure
//! sum); a nomination that the next step actually selects is *promoted*
//! out of the staging buffer and its demand transfer is already paid.
//!
//! Prefetch changes **when** bytes move, never **what** attends: token
//! streams, hit rates and recalled bytes are byte-identical with prefetch
//! on or off at every chunking and thread count (the prefetch parity suite
//! enforces this). With [`PrefetchConfig::disabled`] — the default — the
//! engine performs no staging, allocates nothing for nominations, and its
//! modeled clock is bit-identical to the pure-sum clock.

use clusterkv_kvcache::types::Bytes;
use serde::{Deserialize, Serialize};

/// Which signal nominates clusters for step *t+1*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefetchPredictor {
    /// No speculation: the staging buffer is never written.
    None,
    /// Re-nominate the pages step *t* selected: semantic locality makes the
    /// next step's cluster set heavily overlap the current one (the paper's
    /// Fig. 7 observation). Policy-agnostic — works for any paged selector.
    ReuseLast,
    /// [`ReuseLast`](Self::ReuseLast) plus a cheap centroid-score lookahead:
    /// the selector re-ranks cluster centroids against the current query
    /// under a budget widened by `lookahead_tokens`, nominating the
    /// clusters that would enter the plan if the budget grew — the ones a
    /// drifting query pulls in next
    /// ([`TokenSelector::prefetch_hint`](crate::policy::TokenSelector::prefetch_hint)).
    Lookahead,
}

/// Default widening of the selection budget used by the
/// [`Lookahead`](PrefetchPredictor::Lookahead) predictor.
pub const DEFAULT_LOOKAHEAD_TOKENS: usize = 64;

/// Default per-decode-step staging byte budget (unlimited: the staging
/// buffer's own capacity is the binding constraint; the scheduler tightens
/// this per tick when configured with a prefetch byte budget).
pub const DEFAULT_STEP_BYTES: Bytes = Bytes(u64::MAX);

/// Speculative prefetch configuration for a [`ServeEngine`]
/// (`ServeEngineBuilder::prefetch`).
///
/// [`ServeEngine`]: crate::serve::ServeEngine
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// The nomination signal.
    pub predictor: PrefetchPredictor,
    /// Byte capacity of each session cache's staging buffer. 0 disables
    /// staging regardless of the predictor.
    pub staging_capacity: Bytes,
    /// Per-decode-step cap on staged bytes (the scheduler's per-tick
    /// prefetch budget divides into this).
    pub step_bytes: Bytes,
    /// Budget widening used by the lookahead predictor (ignored by the
    /// others).
    pub lookahead_tokens: usize,
    /// Whether staged transfers overlap compute in the modeled clock. With
    /// `false` the engine still stages and promotes (accounting identical)
    /// but prices every transfer on the demand path — the modeled clock is
    /// then bit-identical to a prefetch-off engine, which is how the parity
    /// suite pins the clock refactor.
    pub overlap: bool,
}

impl PrefetchConfig {
    /// Prefetch off: no staging, no nominations, pure-sum clock. The
    /// engine default.
    pub fn disabled() -> Self {
        Self {
            predictor: PrefetchPredictor::None,
            staging_capacity: Bytes(0),
            step_bytes: Bytes(0),
            lookahead_tokens: 0,
            overlap: false,
        }
    }

    /// Reuse-last prediction into a staging buffer of `staging_capacity`
    /// bytes, with overlap pricing.
    pub fn reuse_last(staging_capacity: Bytes) -> Self {
        Self {
            predictor: PrefetchPredictor::ReuseLast,
            staging_capacity,
            step_bytes: DEFAULT_STEP_BYTES,
            lookahead_tokens: 0,
            overlap: true,
        }
    }

    /// Reuse-last + centroid lookahead prediction into a staging buffer of
    /// `staging_capacity` bytes, with overlap pricing.
    pub fn lookahead(staging_capacity: Bytes) -> Self {
        Self {
            predictor: PrefetchPredictor::Lookahead,
            staging_capacity,
            step_bytes: DEFAULT_STEP_BYTES,
            lookahead_tokens: DEFAULT_LOOKAHEAD_TOKENS,
            overlap: true,
        }
    }

    /// Full staging machinery with overlap pricing switched off: every
    /// transfer stays on the demand path, so the modeled clock must be
    /// bit-identical to [`disabled`](Self::disabled). The parity suite's
    /// probe configuration.
    pub fn staging_only(staging_capacity: Bytes) -> Self {
        Self {
            overlap: false,
            ..Self::lookahead(staging_capacity)
        }
    }

    /// Override the budget widening of the lookahead predictor.
    pub fn with_lookahead_tokens(mut self, tokens: usize) -> Self {
        self.lookahead_tokens = tokens;
        self
    }

    /// Override the per-step staged byte cap.
    pub fn with_step_bytes(mut self, bytes: Bytes) -> Self {
        self.step_bytes = bytes;
        self
    }

    /// Whether the engine runs any prefetch machinery at all: a predictor
    /// is configured and the staging buffer has capacity.
    pub fn enabled(&self) -> bool {
        self.predictor != PrefetchPredictor::None && self.staging_capacity.get() > 0
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_is_inert() {
        let cfg = PrefetchConfig::disabled();
        assert!(!cfg.enabled());
        assert_eq!(cfg, PrefetchConfig::default());
        // A predictor without staging capacity is still disabled.
        let no_buffer = PrefetchConfig {
            staging_capacity: Bytes(0),
            ..PrefetchConfig::lookahead(Bytes(1024))
        };
        assert!(!no_buffer.enabled());
    }

    #[test]
    fn constructors_pick_their_predictors() {
        let reuse = PrefetchConfig::reuse_last(Bytes(4096));
        assert_eq!(reuse.predictor, PrefetchPredictor::ReuseLast);
        assert!(reuse.enabled() && reuse.overlap);

        let look = PrefetchConfig::lookahead(Bytes(4096));
        assert_eq!(look.predictor, PrefetchPredictor::Lookahead);
        assert_eq!(look.lookahead_tokens, DEFAULT_LOOKAHEAD_TOKENS);

        let probe = PrefetchConfig::staging_only(Bytes(4096));
        assert!(probe.enabled() && !probe.overlap);
        assert_eq!(
            probe.with_lookahead_tokens(7).lookahead_tokens,
            7,
            "builder overrides stick"
        );
        assert_eq!(
            PrefetchConfig::reuse_last(Bytes(1))
                .with_step_bytes(Bytes(9))
                .step_bytes,
            Bytes(9)
        );
    }
}
