//! Deterministic synthetic model weights.
//!
//! The paper's experiments use pretrained checkpoints (GLM4-9B, Llama-3.1-8B,
//! OPT-6.7B) which are not available here. The simulator instead generates
//! seeded random weights with realistic initialisation scales. Two details
//! that matter to ClusterKV are reproduced explicitly:
//!
//! * **Outlier channels in key projections** — the paper motivates cosine
//!   distance over L2/inner-product by the presence of large-magnitude
//!   outlier channels in key vectors (§III-B, citing KIVI). The synthetic
//!   key projection amplifies a few output channels to recreate this.
//! * **Attention sinks** — handled in the workload generator, not here.

use crate::config::ModelConfig;
use clusterkv_tensor::rng::{derive_seed, gaussian_vec, seeded, xavier_matrix};
use clusterkv_tensor::Matrix;

/// Weights of a single transformer layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Query projection (`hidden × hidden`).
    pub wq: Matrix,
    /// Key projection (`kv_dim × hidden`).
    pub wk: Matrix,
    /// Value projection (`kv_dim × hidden`).
    pub wv: Matrix,
    /// Output projection (`hidden × hidden`).
    pub wo: Matrix,
    /// FFN gate projection (`ffn × hidden`).
    pub w_gate: Matrix,
    /// FFN up projection (`ffn × hidden`).
    pub w_up: Matrix,
    /// FFN down projection (`hidden × ffn`).
    pub w_down: Matrix,
    /// RMSNorm weight before attention.
    pub attn_norm: Vec<f32>,
    /// RMSNorm weight before the FFN.
    pub ffn_norm: Vec<f32>,
}

/// Full model weights: embedding table plus per-layer weights.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// Token embedding table (`vocab × hidden`).
    pub embedding: Matrix,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm weight.
    pub final_norm: Vec<f32>,
}

/// Number of key-projection output channels that are amplified to act as
/// outlier channels (per KV head).
const OUTLIER_CHANNELS_PER_HEAD: usize = 2;
/// Amplification factor applied to outlier channels.
const OUTLIER_SCALE: f32 = 4.0;

impl ModelWeights {
    /// Generate deterministic synthetic weights for the given configuration.
    ///
    /// The same `(config, seed)` pair always produces identical weights.
    pub fn synthetic(config: &ModelConfig, seed: u64) -> Self {
        let hidden = config.hidden_dim();
        let kv_dim = config.num_kv_heads * config.head_dim;
        let mut emb_rng = seeded(derive_seed(seed, 0xE33B));
        let embedding = xavier_matrix(&mut emb_rng, config.vocab_size, hidden);

        let layers = (0..config.num_layers)
            .map(|l| {
                let mut rng = seeded(derive_seed(seed, 0x1000 + l as u64));
                let mut wk = xavier_matrix(&mut rng, kv_dim, hidden);
                // Amplify a few key output channels per KV head so key vectors
                // exhibit the outlier channels the paper describes.
                for kv_head in 0..config.num_kv_heads {
                    for c in 0..OUTLIER_CHANNELS_PER_HEAD {
                        let channel =
                            kv_head * config.head_dim + (c * 13 + l * 7) % config.head_dim;
                        let row = wk.row_mut(channel);
                        for v in row.iter_mut() {
                            *v *= OUTLIER_SCALE;
                        }
                    }
                }
                LayerWeights {
                    wq: xavier_matrix(&mut rng, hidden, hidden),
                    wk,
                    wv: xavier_matrix(&mut rng, kv_dim, hidden),
                    wo: xavier_matrix(&mut rng, hidden, hidden),
                    w_gate: xavier_matrix(&mut rng, config.ffn_dim, hidden),
                    w_up: xavier_matrix(&mut rng, config.ffn_dim, hidden),
                    w_down: xavier_matrix(&mut rng, hidden, config.ffn_dim),
                    attn_norm: ones_with_jitter(&mut rng, hidden),
                    ffn_norm: ones_with_jitter(&mut rng, hidden),
                }
            })
            .collect();

        let mut final_rng = seeded(derive_seed(seed, 0xF17A));
        Self {
            embedding,
            layers,
            final_norm: ones_with_jitter(&mut final_rng, hidden),
        }
    }
}

fn ones_with_jitter(rng: &mut rand::rngs::StdRng, len: usize) -> Vec<f32> {
    gaussian_vec(rng, len, 1.0, 0.02)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    #[test]
    fn synthetic_weights_are_deterministic() {
        let cfg = ModelConfig::tiny();
        let a = ModelWeights::synthetic(&cfg, 42);
        let b = ModelWeights::synthetic(&cfg, 42);
        assert_eq!(a.layers[0].wq, b.layers[0].wq);
        assert_eq!(a.embedding, b.embedding);
        let c = ModelWeights::synthetic(&cfg, 43);
        assert_ne!(a.layers[0].wq, c.layers[0].wq);
    }

    #[test]
    fn shapes_match_config() {
        let cfg = ModelConfig::tiny();
        let w = ModelWeights::synthetic(&cfg, 1);
        let hidden = cfg.hidden_dim();
        let kv_dim = cfg.num_kv_heads * cfg.head_dim;
        assert_eq!(w.layers.len(), cfg.num_layers);
        assert_eq!(w.embedding.shape(), (cfg.vocab_size, hidden));
        let l = &w.layers[0];
        assert_eq!(l.wq.shape(), (hidden, hidden));
        assert_eq!(l.wk.shape(), (kv_dim, hidden));
        assert_eq!(l.wv.shape(), (kv_dim, hidden));
        assert_eq!(l.wo.shape(), (hidden, hidden));
        assert_eq!(l.w_gate.shape(), (cfg.ffn_dim, hidden));
        assert_eq!(l.w_down.shape(), (hidden, cfg.ffn_dim));
        assert_eq!(l.attn_norm.len(), hidden);
    }

    #[test]
    fn key_projection_has_outlier_channels() {
        let cfg = ModelConfig::tiny();
        let w = ModelWeights::synthetic(&cfg, 7);
        // Average absolute weight per key-projection output channel; the
        // amplified channels should clearly stand out.
        let wk = &w.layers[0].wk;
        let channel_energy: Vec<f32> = (0..wk.rows())
            .map(|r| wk.row(r).iter().map(|x| x.abs()).sum::<f32>() / wk.cols() as f32)
            .collect();
        let max = channel_energy.iter().cloned().fold(0.0f32, f32::max);
        let mean = channel_energy.iter().sum::<f32>() / channel_energy.len() as f32;
        assert!(
            max > 2.0 * mean,
            "expected outlier channels (max {max}, mean {mean})"
        );
    }

    #[test]
    fn norm_weights_are_near_one() {
        let cfg = ModelConfig::tiny();
        let w = ModelWeights::synthetic(&cfg, 3);
        let mean: f32 = w.final_norm.iter().sum::<f32>() / w.final_norm.len() as f32;
        assert!((mean - 1.0).abs() < 0.1);
    }
}
