//! The serving engine: weights loaded once, N independent sessions, batched
//! decode.
//!
//! [`ServeEngine`] owns the model (config, weights, RoPE tables) exactly once
//! and manages any number of concurrent [`SessionId`]-addressed sequences.
//! Each session carries its own KV stores, per-head selectors, position
//! counter and trace state, so sessions are fully isolated: interleaving
//! their decode steps through [`decode_batch`](ServeEngine::decode_batch)
//! produces byte-identical token streams to running each sequence alone.
//!
//! The per-token transformer math matches the single-sequence flow of the
//! paper (Fig. 5): full causal attention during prefill, per-head
//! selection-plan attention during decoding, with the head's selector
//! observing every produced key.
//!
//! Execution is multithreaded (DESIGN.md §4): [`decode_batch`] fans the
//! batch's distinct sessions across the rayon pool (sessions are fully
//! isolated, so this is embarrassingly parallel), and within one session the
//! per-head work — query projection, selection planning, attention — plus
//! the large row-wise projections run data-parallel. Everything
//! order-sensitive (cluster-cache LRU accesses, stats accumulation, traces)
//! happens sequentially in head order after the parallel phase, so token
//! streams and every per-session statistic are byte-identical at any thread
//! count (`RAYON_NUM_THREADS`).
//!
//! [`decode_batch`]: ServeEngine::decode_batch
//!
//! [`InferenceEngine`](crate::engine::InferenceEngine) is a thin
//! single-session adapter over this type.

use crate::attention::full_attention_weights;
use crate::config::ModelConfig;
use crate::latency::{LatencyModel, StepCost};
use crate::policy::{
    CompressedPageRequest, FullAttentionSelector, HeadContext, KvResidency, ObserveEvent,
    PolicyStats, SelectionRequest, SelectorFactory, TokenSelector,
};
use crate::prefetch::{PrefetchConfig, PrefetchPredictor};
use crate::rope::Rope;
use crate::trace::{AttentionTrace, TraceStep};
use crate::weights::ModelWeights;
use clusterkv_faults::{backoff_seconds, FaultInjector, FaultPlan, FaultSite, IntegrityStats};
use clusterkv_kvcache::cluster_cache::{ClusterCache, ClusterCacheConfig};
use clusterkv_kvcache::compressed::{compress_page, CompressionConfig};
use clusterkv_kvcache::device::{DeviceModel, Seconds};
use clusterkv_kvcache::prefix::{PrefixStore, PrefixStoreConfig, PrefixStoreStats};
use clusterkv_kvcache::stats::{CompressionStats, PrefetchStats};
use clusterkv_kvcache::types::{Budget, Bytes, HeadId, LayerId};
use clusterkv_kvcache::KvStore;
use clusterkv_tensor::kernels::{attend_into, matvec_rows_into, Workspace};
use clusterkv_tensor::ops::{rms_norm, silu};
use clusterkv_tensor::vector::argmax;
use clusterkv_tensor::Matrix;
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Default cap on concurrently resident sessions.
pub const DEFAULT_MAX_SESSIONS: usize = 256;

/// Minimum output rows per worker for the row-wise projections (attention
/// output, FFN gate/up/down, logits): one row is a single `O(hidden)` dot
/// product, so tiny test models stay on one thread while production-sized
/// projections split.
const PROJ_MIN_ROWS_PER_WORKER: usize = 256;

/// Context length from which the per-head attention phase fans out across
/// workers: below this, one head's work (projection, planning, attending at
/// most this many tokens) is cheaper than a thread spawn, so heads stay on
/// one thread. Deterministic in the token position, hence parity-safe.
const HEAD_PAR_MIN_CONTEXT: usize = 512;

/// Errors produced by the serving engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The model configuration failed validation.
    InvalidConfig(String),
    /// A token id was outside the vocabulary.
    TokenOutOfVocab {
        /// The offending token id.
        token: usize,
        /// The vocabulary size.
        vocab: usize,
    },
    /// The context window was exceeded.
    ContextOverflow {
        /// Requested context length.
        requested: usize,
        /// Maximum supported context length.
        max: usize,
    },
    /// Decoding was attempted before prefill.
    NotPrefilled,
    /// Prefill was attempted twice on the same session.
    AlreadyPrefilled,
    /// The prompt was empty.
    EmptyPrompt,
    /// An empty chunk was submitted to [`ServeEngine::prefill_chunk`]
    /// (distinct from [`EmptyPrompt`](EngineError::EmptyPrompt): the session
    /// keeps accepting non-empty chunks).
    EmptyChunk,
    /// A prompt chunk was submitted after [`ServeEngine::finish_prefill`]
    /// sealed the prompt.
    PrefillSealed,
    /// The session id is not (or no longer) resident in the engine.
    UnknownSession(SessionId),
    /// The engine is at its session capacity.
    SessionLimitReached {
        /// The configured maximum number of resident sessions.
        max: usize,
    },
    /// `create_session` was called on an engine built without a default
    /// policy (use `create_session_with` or configure one on the builder).
    MissingPolicy,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidConfig(msg) => write!(f, "invalid model config: {msg}"),
            EngineError::TokenOutOfVocab { token, vocab } => {
                write!(f, "token {token} outside vocabulary of size {vocab}")
            }
            EngineError::ContextOverflow { requested, max } => {
                write!(f, "context of {requested} tokens exceeds maximum {max}")
            }
            EngineError::NotPrefilled => write!(f, "decode requested before prefill"),
            EngineError::AlreadyPrefilled => write!(f, "session is already prefilled"),
            EngineError::EmptyPrompt => write!(f, "prompt must not be empty"),
            EngineError::EmptyChunk => write!(f, "prefill chunk must not be empty"),
            EngineError::PrefillSealed => {
                write!(f, "prompt is sealed; no further prefill chunks accepted")
            }
            EngineError::UnknownSession(id) => write!(f, "unknown session {id}"),
            EngineError::SessionLimitReached { max } => {
                write!(f, "session limit of {max} reached")
            }
            EngineError::MissingPolicy => {
                write!(f, "no default selection policy configured for this engine")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Opaque handle addressing one resident sequence of a [`ServeEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw numeric id (stable for the lifetime of the engine).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Output of one decoding step for one session.
#[derive(Debug, Clone)]
pub struct DecodeOutput {
    /// The session this step belongs to.
    pub session: SessionId,
    /// Greedily chosen next token id.
    pub next_token: usize,
    /// Logits over the vocabulary.
    pub logits: Vec<f32>,
    /// Final hidden state of the step.
    pub hidden: Vec<f32>,
}

/// Final accounting returned when a session is released.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The released session.
    pub id: SessionId,
    /// Context length at release (prompt + generated tokens).
    pub context_len: usize,
    /// Number of decode steps the session ran.
    pub generated_tokens: usize,
    /// Policy statistics accumulated over every selection plan of the
    /// session, including the residency outcomes (cluster-cache hits and
    /// PCIe recalls) charged by the engine.
    pub stats: PolicyStats,
    /// Modeled decode-side latency of the session under the engine's
    /// roofline device model, with PCIe transfer charged only for
    /// cluster-cache misses.
    pub modeled_decode_time: Seconds,
    /// Prompt positions whose KV was served from the cross-session
    /// [`PrefixStore`] instead of being recomputed (0 without a store, or
    /// for the first session to see a prompt).
    pub shared_prefix_tokens: usize,
    /// KV bytes of the shared prefix positions — charged to the store, not
    /// to this session.
    pub shared_kv_bytes: Bytes,
    /// KV bytes the session was charged for (novel prompt suffix plus every
    /// generated token).
    pub private_kv_bytes: Bytes,
    /// Compressed-tier accounting of the session's cluster cache: page
    /// demotions, tokens served from the compressed GPU tier, and the
    /// exact-vs-compressed byte totals (all zero under a lossless
    /// configuration).
    pub compression: CompressionStats,
    /// Speculative-prefetch accounting of the session's cluster cache:
    /// staged / used / wasted bytes of the staging buffer (all zero with
    /// prefetch disabled — DESIGN.md §10).
    pub prefetch: PrefetchStats,
    /// Modeled PCIe time hidden behind compute by the overlap clock: per
    /// step, `min(gpu, staged)`. Zero with prefetch or overlap disabled.
    pub hidden_transfer_time: Seconds,
    /// Total modeled PCIe time of the session's decode steps (staged +
    /// demand transfers), the denominator of
    /// [`hidden_transfer_fraction`](Self::hidden_transfer_fraction).
    pub transfer_time: Seconds,
    /// Fault-injection and integrity accounting for the session: checksum
    /// verifications, corruptions injected / detected / repaired, and the
    /// modeled transfer retries charged to the clock (DESIGN.md §11). All
    /// zero when the engine runs with faults disabled.
    pub integrity: IntegrityStats,
}

impl SessionReport {
    /// Token-level hit rate of the session's cluster cache in `[0, 1]`
    /// (`0.0` when the session's policy never paged KV — never NaN).
    pub fn cache_hit_rate(&self) -> f64 {
        self.stats.cache.hit_rate()
    }

    /// Bytes recalled from CPU memory over PCIe across the whole session.
    pub fn bytes_recalled(&self) -> Bytes {
        self.stats.transfer.bytes_to_device
    }

    /// Fraction of the session's final context served from shared prefix
    /// pages, in `[0, 1]` (`0.0` for an empty session — never NaN).
    pub fn shared_fraction(&self) -> f64 {
        if self.context_len == 0 {
            0.0
        } else {
            self.shared_prefix_tokens as f64 / self.context_len as f64
        }
    }

    /// Compression ratio `exact / compressed` over every page the session's
    /// cache demoted to the compressed tier; `0.0` when nothing was demoted
    /// (lossless configs, zero-token sessions — never NaN).
    pub fn compression_ratio(&self) -> f64 {
        self.compression.ratio()
    }

    /// Fraction of staged prefetch bytes a demand access later consumed, in
    /// `[0, 1]` (`0.0` when nothing was staged — prefetch-off engines,
    /// empty sessions — never NaN).
    pub fn prefetch_accuracy(&self) -> f64 {
        self.prefetch.accuracy()
    }

    /// Fraction of the session's modeled PCIe time that the overlap clock
    /// hid behind compute, in `[0, 1]` (`0.0` when the session moved no
    /// bytes — never NaN).
    pub fn hidden_transfer_fraction(&self) -> f64 {
        let total = self.transfer_time.get();
        if total == 0.0 {
            0.0
        } else {
            self.hidden_transfer_time.get() / total
        }
    }
}

/// Per-head result of the parallel phase of one token's attention: pure
/// compute (query projection, selection planning, attention) runs
/// data-parallel across heads; everything order-sensitive — cluster-cache
/// accesses (LRU stamps), stats accumulation, traces — is applied from these
/// outcomes sequentially in head order, which is what keeps N-thread and
/// 1-thread runs byte-identical.
struct HeadOutcome {
    /// Token indices attended during decoding (the plan plus the forced
    /// current position). Empty during prefill, where attention runs the
    /// dedicated no-index-vec full path.
    selected: Vec<usize>,
    /// Per-call stats reported by the selector (`None` during prefill).
    stats: Option<PolicyStats>,
    /// Page decomposition of the plan (`None` during prefill or when the
    /// selected KV is trivially resident).
    pages: Option<Vec<crate::policy::PageRequest>>,
    /// Whether the pages were recalled through the compressed tier: phase 2
    /// then charges the compressed byte count instead of exact token
    /// transfers.
    compressed: bool,
    /// Clusters the lookahead predictor nominates for the next step
    /// (DESIGN.md §10). Always empty unless the engine runs the
    /// [`Lookahead`](PrefetchPredictor::Lookahead) predictor, so
    /// prefetch-off engines allocate nothing here.
    hint: Vec<crate::policy::PageRequest>,
    /// Post-RoPE query, cloned out of the head's workspace only for traced
    /// heads (empty otherwise — tracing is the one consumer).
    query: Vec<f32>,
}

/// Lifecycle of one session, from creation to decodability.
///
/// Replaces the former `prefilled: bool`: chunked prefill
/// ([`ServeEngine::prefill_chunk`]) introduces a third state in which some
/// prompt tokens are forwarded but the session is not yet decodable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionPhase {
    /// Created; no prompt tokens forwarded yet.
    Fresh,
    /// At least one prefill chunk forwarded; more may follow until
    /// [`ServeEngine::finish_prefill`] seals the prompt.
    Prefilling,
    /// Prefill complete (selectors reconciled, memory settled); the session
    /// decodes.
    Ready,
}

/// Per-step policy knobs shared by every session of an engine: the
/// selection budget, the speculative-prefetch configuration, and the
/// deterministic fault injector. Bundled so the sessionless decode entry
/// points stay at a readable arity.
#[derive(Debug, Clone, Copy)]
struct StepPolicy {
    budget: Budget,
    prefetch: PrefetchConfig,
    faults: FaultInjector,
}

/// Totals one decode step accumulates across every selective-layer head,
/// mapped onto a [`StepCost`] after the step to price its latency.
#[derive(Debug, Clone, Copy, Default)]
struct StepAccounting {
    /// Vectors scored during selection.
    scored: u64,
    /// Tokens recalled exactly (f16) from CPU memory on cluster-cache
    /// misses.
    transferred: u64,
    /// Tokens attended by selective-layer heads.
    attended: u64,
    /// Bytes recalled for compressed pages on cluster-cache misses. Tracked
    /// in bytes, not tokens: quantized pages move fewer bytes per token, and
    /// the cache reports the exact compressed count (DESIGN.md §9).
    transferred_compressed_bytes: u64,
    /// Bytes the prefetcher staged this step (overlapped with this step's
    /// compute by the overlap clock — DESIGN.md §10).
    staged_bytes: u64,
    /// Exact-plan miss tokens served out of the staging buffer this step:
    /// their PCIe transfer was already charged (overlapped) when they were
    /// staged, so the overlap clock subtracts them from the demand term.
    promoted_tokens: u64,
    /// Compressed-plan miss bytes served out of the staging buffer this
    /// step (the compressed-tier analogue of `promoted_tokens`).
    promoted_compressed_bytes: u64,
    /// Bytes re-transferred this step for modeled transfer failures and
    /// checksum repairs. Priced as extra demand PCIe time; never changes
    /// what the step attends (DESIGN.md §11).
    retried_bytes: u64,
    /// Modeled exponential-backoff wait accumulated by this step's retries,
    /// added verbatim to the demand term of the overlap clock.
    backoff_seconds: f64,
}

/// Per-session state: everything that differs between concurrent sequences.
struct SessionState {
    /// KV stores indexed by `[layer][kv_head]`.
    kv: Vec<Vec<KvStore>>,
    /// Selectors indexed by `[layer][query_head]`; dense layers hold
    /// [`FullAttentionSelector`]s.
    selectors: Vec<Vec<Box<dyn TokenSelector>>>,
    /// Heads to trace: map from `(layer, head)` to the trace being built.
    traces: BTreeMap<(usize, usize), AttentionTrace>,
    /// Context length so far; doubles as the RoPE position of the next token.
    num_tokens: usize,
    /// Number of decode steps run.
    generated_tokens: usize,
    /// Where the session is in its prefill → decode lifecycle.
    phase: SessionPhase,
    /// Token fed to the next decode step (last prompt token after prefill,
    /// then the previously generated token — overridable for external
    /// sampling via [`ServeEngine::set_next_input`]).
    next_input: Option<usize>,
    /// Policy statistics accumulated from every selection plan, with
    /// residency outcomes filled in from `cache`.
    stats: PolicyStats,
    /// The session's tiered KV hierarchy: GPU-resident selected-KV pages
    /// over the CPU backing store. Capacity 0 models pure offload (every
    /// selected page is recalled every step).
    cache: ClusterCache,
    /// One kernel workspace per query head (heads run data-parallel, each
    /// worker owns its scratch). Buffers grow to the steady-state working
    /// set during the first decode steps and are reused afterwards, so the
    /// per-head attention phase performs no heap allocation (DESIGN.md §6).
    workspaces: Vec<Workspace>,
    /// Concatenated per-head attention outputs of the current layer; heads
    /// write disjoint `head_dim` slices during the parallel phase.
    concat: Vec<f32>,
    /// Scratch for the per-KV-head key/value projections of one token.
    k_scratch: Vec<f32>,
    /// See `k_scratch`.
    v_scratch: Vec<f32>,
    /// Totals of the decode step currently in flight.
    step: StepAccounting,
    /// Modeled decode latency accumulated over every step.
    modeled_decode: Seconds,
    /// Modeled PCIe time hidden behind compute (`min(gpu, staged)` summed
    /// over steps — DESIGN.md §10). Stays zero without the overlap clock.
    hidden_transfer: Seconds,
    /// Total modeled PCIe time (staged + demand) summed over decode steps.
    transfer_time: Seconds,
    /// Pages nominated for the next step's staging pass, collected in
    /// deterministic (layer, head) order during phase 2 and drained by the
    /// end-of-step staging pass. Only ever written when prefetch is
    /// enabled, so prefetch-off engines never allocate here.
    nominations: Vec<(usize, usize, Vec<crate::policy::PageRequest>)>,
    /// The prompt tokens fed so far, buffered only while the engine has a
    /// [`PrefixStore`] (lookup during chunks, donation at
    /// `finish_prefill`, unpinning at release).
    prompt_tokens: Vec<usize>,
    /// Whether prefill chunks are still walking the prefix tree. Starts true
    /// iff the engine has a store; cleared at the first divergence.
    prefix_active: bool,
    /// Prompt positions whose KV is store-backed (served by — or, for the
    /// recomputed last token of a chunk, available from — shared pages).
    /// Drives the shared-vs-private byte accounting.
    matched_prefix_tokens: usize,
    /// Prompt positions whose forward pass was actually skipped (KV copied
    /// from shared pages). Drives the compute/FLOP accounting; differs from
    /// `matched_prefix_tokens` by at most one recomputed token per chunk.
    fastpath_prefix_tokens: usize,
    /// The exact token prefix this session has pinned in the store
    /// (admission pin before prefill, the full prompt after donation);
    /// unpinned at release.
    pinned_prompt: Vec<usize>,
    /// Integrity accounting local to this session's fault seams (prefix
    /// adoption verifies, transfer retries). Merged with the cluster
    /// cache's own [`IntegrityStats`] at release.
    integrity: IntegrityStats,
}

/// Builder for [`ServeEngine`], replacing the positional
/// `InferenceEngine::new(config, weights, factory, budget)` constructor.
pub struct ServeEngineBuilder {
    config: ModelConfig,
    weights: Option<ModelWeights>,
    synthetic_seed: u64,
    budget: Budget,
    policy: Option<Box<dyn SelectorFactory>>,
    max_sessions: usize,
    kv_cache_capacity: Option<Bytes>,
    prefix_store_capacity: Option<Bytes>,
    device: DeviceModel,
    compression: CompressionConfig,
    prefetch: PrefetchConfig,
    faults: FaultPlan,
}

impl ServeEngineBuilder {
    /// Start building an engine for the given model shape. Without further
    /// calls the engine uses synthetic weights from seed 0, an unbounded
    /// budget, no default policy, no GPU cluster cache (pure offload) and an
    /// Ada-6000 device model.
    pub fn new(config: ModelConfig) -> Self {
        Self {
            config,
            weights: None,
            synthetic_seed: 0,
            budget: Budget::new(usize::MAX),
            policy: None,
            max_sessions: DEFAULT_MAX_SESSIONS,
            kv_cache_capacity: None,
            prefix_store_capacity: None,
            device: DeviceModel::ada6000(),
            compression: CompressionConfig::lossless(),
            prefetch: PrefetchConfig::disabled(),
            faults: FaultPlan::disabled(),
        }
    }

    /// Use explicit model weights.
    pub fn weights(mut self, weights: ModelWeights) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Generate deterministic synthetic weights from `seed`.
    pub fn synthetic_weights(mut self, seed: u64) -> Self {
        self.weights = None;
        self.synthetic_seed = seed;
        self
    }

    /// KV budget `B` every selective head must respect.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Default selection policy used by
    /// [`create_session`](ServeEngine::create_session).
    pub fn policy(mut self, factory: Box<dyn SelectorFactory>) -> Self {
        self.policy = Some(factory);
        self
    }

    /// Cap on concurrently resident sessions (default
    /// [`DEFAULT_MAX_SESSIONS`]).
    pub fn max_sessions(mut self, max: usize) -> Self {
        self.max_sessions = max;
        self
    }

    /// Give every session a GPU cluster cache of `capacity` bytes for its
    /// selected-KV pages. Without this call (or with capacity 0) the engine
    /// models pure offload: every selected page is recalled from CPU memory
    /// at every step. Residency affects accounting and modeled latency
    /// only — token streams are identical whatever the capacity.
    ///
    /// Residency is tracked per *query* head (selectors select
    /// independently, so their pages are distinct even within a GQA group):
    /// under GQA the same physical KV may be resident once per query head
    /// sharing it. Size capacities with
    /// [`ModelConfig::selected_kv_bytes_per_step`], which counts query
    /// heads, rather than from `kv_bytes_per_token`.
    pub fn kv_cache_capacity(mut self, capacity: Bytes) -> Self {
        self.kv_cache_capacity = Some(capacity);
        self
    }

    /// Device model used to price modeled decode latency and PCIe recall
    /// (default [`DeviceModel::ada6000`]).
    pub fn device(mut self, device: DeviceModel) -> Self {
        self.device = device;
        self
    }

    /// Compressed-tier configuration for every session's cluster cache
    /// (DESIGN.md §9): lossy settings shrink demoted pages (SLERP merging +
    /// int8/int4 cold KV) and price recalls at the compressed byte count.
    /// Defaults to [`CompressionConfig::lossless`], which keeps the
    /// byte-parity guarantee. Pass the same configuration the selection
    /// policy was built with (e.g. `ClusterKvConfig::compression`): the
    /// policy decides *when* to emit recall-compressed plans, this knob
    /// decides *how* the engine reconstructs and accounts for them.
    pub fn compression(mut self, compression: CompressionConfig) -> Self {
        self.compression = compression;
        self
    }

    /// Speculative cluster prefetch (DESIGN.md §10): sessions get a bounded
    /// staging buffer of [`PrefetchConfig::staging_capacity`] bytes, the
    /// configured predictor nominates next-step clusters at every decode
    /// step, and — when [`PrefetchConfig::overlap`] is set — staged
    /// transfers overlap compute in the modeled clock
    /// (`max(compute, staged) + demand`). Defaults to
    /// [`PrefetchConfig::disabled`]. Prefetch changes *when* bytes move,
    /// never *what* attends: token streams, hit rates and recalled bytes
    /// are byte-identical whatever this setting.
    pub fn prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Enable the workspace-global [`PrefixStore`]: sessions whose prompts
    /// share a prefix reuse its KV pages, key-norm caches and cluster
    /// centroids instead of recomputing them, with `capacity` bytes of
    /// zero-refcount pages retained LRU-style for cross-session temporal
    /// reuse (DESIGN.md §8). Without this call every session prefills cold.
    ///
    /// Sharing changes what is computed and stored, never what attends:
    /// token streams are byte-identical with and without the store, at any
    /// chunking and any thread count (enforced by the prefix parity suite).
    pub fn prefix_store(mut self, capacity: Bytes) -> Self {
        self.prefix_store_capacity = Some(capacity);
        self
    }

    /// Deterministic fault injection (DESIGN.md §11): modeled transfer
    /// failures retried with exponential backoff on the modeled clock, and
    /// checksum corruption of resident KV pages, detected and repaired by
    /// the integrity scrub. Every decision is a pure function of
    /// `(plan seed, site, session id, step)`, so fault schedules are
    /// bit-identical across runs, chunkings and thread counts. Faults change
    /// *when* and *how long*, never *what attends*: completed token streams
    /// are byte-identical with faults on or off. Defaults to
    /// [`FaultPlan::disabled`].
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Validate the configuration and build the engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] if the configuration fails
    /// [`ModelConfig::validate`] or the fault plan fails
    /// [`FaultPlan::validate`].
    pub fn build(self) -> Result<ServeEngine, EngineError> {
        self.config.validate().map_err(EngineError::InvalidConfig)?;
        self.faults.validate().map_err(EngineError::InvalidConfig)?;
        let weights = self
            .weights
            .unwrap_or_else(|| ModelWeights::synthetic(&self.config, self.synthetic_seed));
        let rope = Rope::new(self.config.head_dim, 10_000.0);
        let latency = LatencyModel::new(self.config, self.device);
        Ok(ServeEngine {
            config: self.config,
            weights,
            rope,
            budget: self.budget,
            policy: self.policy,
            sessions: BTreeMap::new(),
            next_session: 0,
            max_sessions: self.max_sessions,
            kv_cache_capacity: self.kv_cache_capacity.unwrap_or(Bytes(0)),
            compression: self.compression,
            prefetch: self.prefetch,
            prefix: self.prefix_store_capacity.map(|capacity| {
                PrefixStore::new(PrefixStoreConfig {
                    capacity,
                    layers: self.config.num_layers,
                    kv_heads: self.config.num_kv_heads,
                    head_dim: self.config.head_dim,
                })
            }),
            latency,
            injector: FaultInjector::new(self.faults),
        })
    }
}

/// A decoder-only transformer serving N independent sequences with per-head
/// KV-selection policies.
pub struct ServeEngine {
    config: ModelConfig,
    weights: ModelWeights,
    rope: Rope,
    budget: Budget,
    policy: Option<Box<dyn SelectorFactory>>,
    sessions: BTreeMap<u64, SessionState>,
    next_session: u64,
    max_sessions: usize,
    /// GPU capacity of each session's cluster cache (0 = pure offload).
    kv_cache_capacity: Bytes,
    /// Compressed-tier configuration applied to every session's cache.
    compression: CompressionConfig,
    /// Speculative prefetch: predictor, staging capacity, per-step byte cap
    /// and the overlap-clock switch (DESIGN.md §10).
    prefetch: PrefetchConfig,
    /// Cross-session shared-prefix pages (`None` = every session cold).
    prefix: Option<PrefixStore>,
    /// Roofline pricing of modeled per-step decode latency.
    latency: LatencyModel,
    /// Deterministic fault injector driving the recovery seams
    /// (DESIGN.md §11); a disabled plan makes every decision a no-op.
    injector: FaultInjector,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("config", &self.config)
            .field("budget", &self.budget)
            .field("policy", &self.policy.as_ref().map(|p| p.name()))
            .field("sessions", &self.sessions.len())
            .field("max_sessions", &self.max_sessions)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for ServeEngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngineBuilder")
            .field("config", &self.config)
            .field("budget", &self.budget)
            .field("policy", &self.policy.as_ref().map(|p| p.name()))
            .field("max_sessions", &self.max_sessions)
            .finish_non_exhaustive()
    }
}

impl ServeEngine {
    /// Start building an engine.
    pub fn builder(config: ModelConfig) -> ServeEngineBuilder {
        ServeEngineBuilder::new(config)
    }

    /// Model configuration in use.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// KV cache budget used for selection.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Number of resident sessions.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Resident session ids, in creation order (ids are allocated
    /// monotonically and the session table is ordered, so the key order is
    /// the creation order).
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.keys().copied().map(SessionId).collect()
    }

    fn session(&self, id: SessionId) -> Result<&SessionState, EngineError> {
        self.sessions
            .get(&id.0)
            .ok_or(EngineError::UnknownSession(id))
    }

    fn session_mut(&mut self, id: SessionId) -> Result<&mut SessionState, EngineError> {
        self.sessions
            .get_mut(&id.0)
            .ok_or(EngineError::UnknownSession(id))
    }

    /// Create a session using the engine's default policy.
    ///
    /// # Errors
    ///
    /// [`EngineError::MissingPolicy`] when the engine was built without a
    /// default policy; [`EngineError::SessionLimitReached`] at capacity.
    pub fn create_session(&mut self) -> Result<SessionId, EngineError> {
        if self.policy.is_none() {
            return Err(EngineError::MissingPolicy);
        }
        // Build the selectors through a reborrow so the factory box can be
        // consulted while `self` is otherwise borrowed.
        let selectors = {
            let factory = self.policy.as_deref().expect("checked above");
            Self::make_selectors(&self.config, factory)
        };
        self.insert_session(selectors)
    }

    /// Create a session with an explicit selection policy (sessions with
    /// different policies can coexist in one engine).
    ///
    /// # Errors
    ///
    /// [`EngineError::SessionLimitReached`] at capacity.
    pub fn create_session_with(
        &mut self,
        factory: &dyn SelectorFactory,
    ) -> Result<SessionId, EngineError> {
        let selectors = Self::make_selectors(&self.config, factory);
        self.insert_session(selectors)
    }

    fn make_selectors(
        config: &ModelConfig,
        factory: &dyn SelectorFactory,
    ) -> Vec<Vec<Box<dyn TokenSelector>>> {
        (0..config.num_layers)
            .map(|layer| {
                (0..config.num_heads)
                    .map(|head| {
                        if layer < config.dense_layers {
                            Box::new(FullAttentionSelector) as Box<dyn TokenSelector>
                        } else {
                            factory.create(HeadContext {
                                layer,
                                head,
                                head_dim: config.head_dim,
                            })
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn insert_session(
        &mut self,
        selectors: Vec<Vec<Box<dyn TokenSelector>>>,
    ) -> Result<SessionId, EngineError> {
        if self.sessions.len() >= self.max_sessions {
            return Err(EngineError::SessionLimitReached {
                max: self.max_sessions,
            });
        }
        let kv = (0..self.config.num_layers)
            .map(|_| {
                (0..self.config.num_kv_heads)
                    .map(|_| KvStore::new(self.config.head_dim))
                    .collect()
            })
            .collect();
        let id = SessionId(self.next_session);
        self.next_session += 1;
        self.sessions.insert(
            id.0,
            SessionState {
                kv,
                selectors,
                traces: BTreeMap::new(),
                num_tokens: 0,
                generated_tokens: 0,
                phase: SessionPhase::Fresh,
                next_input: None,
                stats: PolicyStats::default(),
                cache: ClusterCache::new(
                    ClusterCacheConfig::new(self.kv_cache_capacity, self.config.head_dim)
                        .with_compression(self.compression)
                        .with_staging(if self.prefetch.enabled() {
                            self.prefetch.staging_capacity
                        } else {
                            Bytes(0)
                        }),
                ),
                step: StepAccounting::default(),
                modeled_decode: Seconds::zero(),
                hidden_transfer: Seconds::zero(),
                transfer_time: Seconds::zero(),
                nominations: Vec::new(),
                prompt_tokens: Vec::new(),
                prefix_active: self.prefix.is_some(),
                matched_prefix_tokens: 0,
                fastpath_prefix_tokens: 0,
                pinned_prompt: Vec::new(),
                integrity: IntegrityStats::default(),
                workspaces: (0..self.config.num_heads)
                    .map(|_| Workspace::new())
                    .collect(),
                concat: Vec::new(),
                k_scratch: Vec::new(),
                v_scratch: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Release a session, freeing its KV and selector state.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn release(&mut self, id: SessionId) -> Result<SessionReport, EngineError> {
        let sess = self
            .sessions
            .remove(&id.0)
            .ok_or(EngineError::UnknownSession(id))?;
        if let Some(store) = &mut self.prefix {
            if !sess.pinned_prompt.is_empty() {
                store.unpin_prompt(&sess.pinned_prompt);
            }
        }
        let shared_kv_bytes =
            Bytes(sess.matched_prefix_tokens as u64 * self.config.kv_bytes_per_token());
        let private_kv_bytes = Bytes(
            (sess.num_tokens - sess.matched_prefix_tokens) as u64
                * self.config.kv_bytes_per_token(),
        );
        let mut integrity = sess.integrity;
        integrity.merge(&sess.cache.integrity());
        Ok(SessionReport {
            id,
            context_len: sess.num_tokens,
            generated_tokens: sess.generated_tokens,
            stats: sess.stats,
            modeled_decode_time: sess.modeled_decode,
            shared_prefix_tokens: sess.matched_prefix_tokens,
            shared_kv_bytes,
            private_kv_bytes,
            compression: sess.cache.compression_stats(),
            prefetch: sess.cache.prefetch_stats(),
            hidden_transfer_time: sess.hidden_transfer,
            transfer_time: sess.transfer_time,
            integrity,
        })
    }

    /// Current context length of a session (prompt + generated tokens).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn context_len(&self, id: SessionId) -> Result<usize, EngineError> {
        Ok(self.session(id)?.num_tokens)
    }

    /// The fault plan the engine was built with
    /// ([`FaultPlan::disabled`] by default).
    pub fn fault_plan(&self) -> FaultPlan {
        *self.injector.plan()
    }

    /// Degradation hook (ladder level 1, DESIGN.md §11): release every
    /// staged page of the session's prefetch buffer, returning the bytes
    /// freed (charged as wasted prefetch). A no-op for sessions without a
    /// staging buffer. Staging only affects the modeled clock, so shedding
    /// it never changes what the session attends.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn shed_staging(&mut self, id: SessionId) -> Result<Bytes, EngineError> {
        Ok(self.session_mut(id)?.cache.drop_staging())
    }

    /// Degradation hook (ladder level 2, DESIGN.md §11): demote the
    /// session's resident exact pages to the compressed GPU tier, returning
    /// how many pages moved. A no-op (0) under a lossless compression
    /// config, where demotion would not shrink anything.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn demote_session(&mut self, id: SessionId) -> Result<usize, EngineError> {
        Ok(self.session_mut(id)?.cache.demote_all())
    }

    /// Live integrity accounting of a session: the session-level fault
    /// seams (prefix-adoption verifies, transfer retries) merged with its
    /// cluster cache's scrub counters. All zero with faults disabled and an
    /// intact store.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn integrity_stats(&self, id: SessionId) -> Result<IntegrityStats, EngineError> {
        let sess = self.session(id)?;
        let mut integrity = sess.integrity;
        integrity.merge(&sess.cache.integrity());
        Ok(integrity)
    }

    /// Whether the engine was built with a cross-session [`PrefixStore`].
    pub fn has_prefix_store(&self) -> bool {
        self.prefix.is_some()
    }

    /// Counters of the engine's [`PrefixStore`] (`None` without one).
    pub fn prefix_store_stats(&self) -> Option<PrefixStoreStats> {
        self.prefix.as_ref().map(PrefixStore::stats)
    }

    /// Length of the prompt prefix the store could serve *and guarantee
    /// through a pin* (whole-node coverage; see [`PrefixStore::peek_match`]).
    /// 0 without a store. Read-only — admission control uses this to shrink
    /// a request's worst-case KV reservation before deciding to admit.
    pub fn prefix_match_len(&self, prompt: &[usize]) -> usize {
        self.prefix
            .as_ref()
            .map_or(0, |store| store.peek_match(prompt))
    }

    /// Pin the currently shareable prefix of `prompt` on behalf of session
    /// `id`, guaranteeing those store pages survive until the session is
    /// released (admission-time companion of [`prefix_match_len`]: pinned
    /// coverage can only grow, so a reservation computed against it stays
    /// sound). Returns the pinned length; 0 (and no pin) without a store.
    /// The pin is swapped for a full-prompt pin when the session seals its
    /// prefill, and dropped at release either way.
    ///
    /// [`prefix_match_len`]: Self::prefix_match_len
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn pin_session_prefix(
        &mut self,
        id: SessionId,
        prompt: &[usize],
    ) -> Result<usize, EngineError> {
        let sess = self
            .sessions
            .get_mut(&id.0)
            .ok_or(EngineError::UnknownSession(id))?;
        let Some(store) = &mut self.prefix else {
            return Ok(0);
        };
        let old_pin = std::mem::take(&mut sess.pinned_prompt);
        let pinned = store.pin_prompt(prompt);
        sess.pinned_prompt = prompt[..pinned].to_vec();
        if !old_pin.is_empty() {
            store.unpin_prompt(&old_pin);
        }
        Ok(pinned)
    }

    /// Per-session prefix accounting: `(store-backed positions, positions
    /// whose forward pass was actually skipped)`. The two differ by the
    /// chunk-last tokens the fast path recomputes to keep returned hidden
    /// states exact. Both 0 without a store or for a cold prompt.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn session_prefix_tokens(&self, id: SessionId) -> Result<(usize, usize), EngineError> {
        let sess = self.session(id)?;
        Ok((sess.matched_prefix_tokens, sess.fastpath_prefix_tokens))
    }

    /// Policy statistics accumulated over every selection plan of a session,
    /// including the residency outcomes charged by the engine.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn session_stats(&self, id: SessionId) -> Result<PolicyStats, EngineError> {
        Ok(self.session(id)?.stats)
    }

    /// A session's tiered KV hierarchy (GPU resident set + CPU backing
    /// store), for inspection.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn session_cache(&self, id: SessionId) -> Result<&ClusterCache, EngineError> {
        Ok(&self.session(id)?.cache)
    }

    /// Modeled decode latency accumulated by a session so far (roofline
    /// device model; PCIe transfer charged only for cluster-cache misses).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn modeled_decode_time(&self, id: SessionId) -> Result<Seconds, EngineError> {
        Ok(self.session(id)?.modeled_decode)
    }

    /// GPU capacity of each session's cluster cache (0 = pure offload).
    pub fn kv_cache_capacity(&self) -> Bytes {
        self.kv_cache_capacity
    }

    /// The engine's speculative-prefetch configuration (DESIGN.md §10).
    pub fn prefetch_config(&self) -> PrefetchConfig {
        self.prefetch
    }

    /// Cap the bytes every decode step may stage from here on. The
    /// scheduler calls this each tick to divide its per-tick prefetch byte
    /// budget across the decode batch; a no-op while prefetch is disabled.
    pub fn set_prefetch_step_bytes(&mut self, bytes: Bytes) {
        self.prefetch.step_bytes = bytes;
    }

    /// Prefetch accounting of a session's staging buffer so far (staged /
    /// used / wasted bytes — all zero with prefetch disabled).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn session_prefetch_stats(&self, id: SessionId) -> Result<PrefetchStats, EngineError> {
        Ok(self.session(id)?.cache.prefetch_stats())
    }

    /// Modeled PCIe time of a session so far as `(hidden, total)`: the part
    /// the overlap clock hid behind compute, and the whole staged + demand
    /// transfer time (DESIGN.md §10).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn session_transfer_times(&self, id: SessionId) -> Result<(Seconds, Seconds), EngineError> {
        let sess = self.session(id)?;
        Ok((sess.hidden_transfer, sess.transfer_time))
    }

    /// Heap bytes currently held by a session's per-head kernel workspaces
    /// (plus the layer concat and projection scratch). The buffers grow to
    /// the steady-state working set during the first decode steps and then
    /// stay fixed — the workspace-reuse test pins this, which is how the
    /// engine documents that its per-head attention phase performs no heap
    /// allocation in steady state (DESIGN.md §6).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn session_workspace_bytes(&self, id: SessionId) -> Result<usize, EngineError> {
        let sess = self.session(id)?;
        let per_head: usize = sess.workspaces.iter().map(|w| w.allocated_bytes()).sum();
        Ok(per_head
            + std::mem::size_of::<f32>()
                * (sess.concat.capacity() + sess.k_scratch.capacity() + sess.v_scratch.capacity()))
    }

    /// Cap on concurrently resident sessions.
    pub fn max_sessions(&self) -> usize {
        self.max_sessions
    }

    /// Whether the engine was built with a default selection policy (i.e.
    /// [`create_session`](Self::create_session) works without an explicit
    /// factory).
    pub fn has_default_policy(&self) -> bool {
        self.policy.is_some()
    }

    /// The engine's analytical latency model (roofline pricing of prefill
    /// and decode steps on the configured device). The serving scheduler
    /// uses this to advance its modeled clock.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Whether a session has finished prefill and is decodable.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn is_ready(&self, id: SessionId) -> Result<bool, EngineError> {
        Ok(self.session(id)?.phase == SessionPhase::Ready)
    }

    /// Enable tracing of a specific `(layer, head)` pair of a session. Must
    /// be called before decoding; tracing records exact attention weights,
    /// which is expensive but only for the traced heads.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn enable_trace(
        &mut self,
        id: SessionId,
        layer: usize,
        head: usize,
    ) -> Result<(), EngineError> {
        self.session_mut(id)?
            .traces
            .insert((layer, head), AttentionTrace::new(layer, head));
        Ok(())
    }

    /// Access a recorded trace of a session.
    pub fn trace(&self, id: SessionId, layer: usize, head: usize) -> Option<&AttentionTrace> {
        self.sessions
            .get(&id.0)
            .and_then(|s| s.traces.get(&(layer, head)))
    }

    /// Access the KV store of a `(layer, kv_head)` pair of a session (for
    /// tests and experiments).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] if the id is not resident.
    pub fn kv_store(
        &self,
        id: SessionId,
        layer: usize,
        kv_head: usize,
    ) -> Result<&KvStore, EngineError> {
        Ok(&self.session(id)?.kv[layer][kv_head])
    }

    /// Override the token fed to the session's next decode step (for
    /// externally sampled tokens; by default the engine continues greedily).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`] / [`EngineError::NotPrefilled`] /
    /// [`EngineError::TokenOutOfVocab`] (validated here so a later
    /// [`decode_batch`](Self::decode_batch) cannot fail mid-batch on a bad
    /// injected token).
    pub fn set_next_input(&mut self, id: SessionId, token: usize) -> Result<(), EngineError> {
        let vocab = self.config.vocab_size;
        let sess = self.session_mut(id)?;
        if sess.phase != SessionPhase::Ready {
            return Err(EngineError::NotPrefilled);
        }
        if token >= vocab {
            return Err(EngineError::TokenOutOfVocab { token, vocab });
        }
        sess.next_input = Some(token);
        Ok(())
    }

    fn kv_head_of(config: &ModelConfig, query_head: usize) -> usize {
        query_head / (config.num_heads / config.num_kv_heads)
    }

    /// Project a hidden vector through the per-head slice of a projection
    /// matrix `w` (whose rows are output channels) into a reusable buffer —
    /// one blocked matvec over the head's row range.
    fn project_head_into(
        w: &Matrix,
        hidden: &[f32],
        head: usize,
        head_dim: usize,
        out: &mut Vec<f32>,
    ) {
        matvec_rows_into(w, head * head_dim..(head + 1) * head_dim, hidden, out);
    }

    /// `w[..rows] · v` through the blocked kernel, row-chunk-parallel at a
    /// constant chunk size — thread-count invariant (DESIGN.md §6).
    fn par_rows_matvec(w: &Matrix, v: &[f32], rows: usize) -> Vec<f32> {
        clusterkv_tensor::kernels::par_matvec_rows(w, 0..rows, v, PROJ_MIN_ROWS_PER_WORKER)
    }

    /// Attend `query` over the gathered selected tokens, substituting the
    /// compressed (SLERP-merged, quantize-round-tripped) representation for
    /// every selected token belonging to one of the plan's pages
    /// (DESIGN.md §9). Tokens outside the pages — sinks, pending decode
    /// tokens, the position being generated — keep their exact KV.
    ///
    /// Per-page reconstruction runs over the page's *full* membership from
    /// the backing store, never the selection or cache state, so the result
    /// depends only on `(compression, membership, stored KV)` and phase-1
    /// head parallelism stays order-free.
    fn attend_compressed(
        store: &KvStore,
        selected: &[usize],
        pages: &[CompressedPageRequest],
        compression: CompressionConfig,
        query: &[f32],
        weights: &mut Vec<f32>,
        out: &mut [f32],
    ) {
        let mut k_sel = store.keys().select_rows(selected);
        let mut v_sel = store.values().select_rows(selected);
        let row_of: BTreeMap<usize, usize> = selected
            .iter()
            .enumerate()
            .map(|(row, &pos)| (pos, row))
            .collect();
        for page in pages {
            let cp = compress_page(store.keys(), store.values(), &page.members, compression);
            for (i, &pos) in page.members.iter().enumerate() {
                if let Some(&row) = row_of.get(&pos) {
                    k_sel.row_mut(row).copy_from_slice(cp.keys.row(i));
                    v_sel.row_mut(row).copy_from_slice(cp.values.row(i));
                }
            }
        }
        attend_into(&k_sel, &v_sel, None, query, weights, out);
    }

    /// Run one token of one session through the transformer. `use_selection`
    /// is false during prefill (full causal attention) and true during
    /// decoding.
    fn forward_token(
        config: &ModelConfig,
        weights: &ModelWeights,
        rope: &Rope,
        policy: StepPolicy,
        sess: &mut SessionState,
        token: usize,
        use_selection: bool,
    ) -> Result<Vec<f32>, EngineError> {
        let StepPolicy {
            budget, prefetch, ..
        } = policy;
        let position = sess.num_tokens;
        if position >= config.max_context {
            return Err(EngineError::ContextOverflow {
                requested: position + 1,
                max: config.max_context,
            });
        }
        if token >= config.vocab_size {
            return Err(EngineError::TokenOutOfVocab {
                token,
                vocab: config.vocab_size,
            });
        }
        let mut x = weights.embedding.row(token).to_vec();
        let head_dim = config.head_dim;
        let num_heads = config.num_heads;

        for layer in 0..config.num_layers {
            let lw = &weights.layers[layer];
            let h = rms_norm(&x, &lw.attn_norm, 1e-6);

            // KV projections for this layer (one per KV head), RoPE on keys.
            // Sequential on purpose: one projection is microseconds of work,
            // far below the cost of enlisting a worker. The projections land
            // in session-owned scratch, so no per-token buffers are built.
            for kv_head in 0..config.num_kv_heads {
                Self::project_head_into(&lw.wk, &h, kv_head, head_dim, &mut sess.k_scratch);
                Self::project_head_into(&lw.wv, &h, kv_head, head_dim, &mut sess.v_scratch);
                rope.apply(&mut sess.k_scratch, position);
                sess.kv[layer][kv_head].append(&sess.k_scratch, &sess.v_scratch);
            }

            // Attention, phase 1 (parallel across query heads): project the
            // query, plan the token set, attend. Each head owns its selector
            // plus a persistent kernel workspace and writes its output
            // straight into its disjoint slice of the layer's concat buffer
            // — pure, order-free compute with no allocation once the
            // workspace is warm. Heads fan out only once the context is long
            // enough for one head's attention to outweigh a spawn
            // (`min_len = num_heads` forces a single chunk below the
            // threshold).
            let head_min_len = if position >= HEAD_PAR_MIN_CONTEXT {
                1
            } else {
                num_heads
            };
            let kv_layer = &sess.kv[layer];
            let traces = &sess.traces;
            let compression = sess.cache.compression();
            sess.concat.clear();
            sess.concat.resize(num_heads * head_dim, 0.0);
            /// One head's unit of the parallel attention phase: its index,
            /// selector, persistent workspace and concat-buffer slice.
            type HeadWork<'a> = (
                usize,
                &'a mut Box<dyn TokenSelector>,
                &'a mut Workspace,
                &'a mut [f32],
            );
            let work: Vec<HeadWork<'_>> = sess.selectors[layer]
                .iter_mut()
                .zip(sess.workspaces.iter_mut())
                .zip(sess.concat.chunks_mut(head_dim))
                .enumerate()
                .map(|(head, ((selector, ws), slot))| (head, selector, ws, slot))
                .collect();
            let head_outcomes: Vec<HeadOutcome> = work
                .into_par_iter()
                .with_min_len(head_min_len)
                .map(|(head, selector, ws, slot)| {
                    Self::project_head_into(&lw.wq, &h, head, head_dim, &mut ws.q);
                    rope.apply(&mut ws.q, position);
                    let store = &kv_layer[Self::kv_head_of(config, head)];
                    let n = store.len();
                    let (selected, stats, pages, compressed_pages, hint) = if use_selection {
                        let plan = selector.plan(SelectionRequest::new(&ws.q, n, budget));
                        // The lookahead nomination runs right after the plan,
                        // against the same query: a pure read re-ranking
                        // cluster centroids under a widened budget. Only the
                        // Lookahead predictor pays for it.
                        let hint = if prefetch.enabled()
                            && prefetch.predictor == PrefetchPredictor::Lookahead
                        {
                            selector.prefetch_hint(
                                SelectionRequest::new(&ws.q, n, budget),
                                prefetch.lookahead_tokens,
                            )
                        } else {
                            Vec::new()
                        };
                        let mut sel = plan.indices;
                        // The token being generated always attends to
                        // itself: its KV was just produced on the GPU and is
                        // not subject to selection (policies may not even
                        // have observed it yet).
                        if !sel.contains(&position) {
                            sel.push(position);
                        }
                        let (pages, cpages) = match plan.residency {
                            KvResidency::Paged(pages) => (Some(pages), None),
                            KvResidency::Compressed(cpages) => {
                                let inner = cpages.iter().map(|p| p.request).collect();
                                (Some(inner), Some(cpages))
                            }
                            KvResidency::Resident => (None, None),
                        };
                        (sel, Some(plan.stats), pages, cpages, hint)
                    } else {
                        // Prefill: full causal attention through the
                        // dedicated no-index-vec path (no `(0..n)` vector).
                        (Vec::new(), None, None, None, Vec::new())
                    };
                    if let Some(cpages) = &compressed_pages {
                        // Recall-compressed attention (DESIGN.md §9): attend
                        // through the merged + quantize-round-tripped KV of
                        // the plan's pages, exact KV elsewhere. Depends only
                        // on (config, page membership, stored values), so it
                        // is order-free across heads and thread counts.
                        Self::attend_compressed(
                            store,
                            &selected,
                            cpages,
                            compression,
                            &ws.q,
                            &mut ws.weights,
                            slot,
                        );
                    } else {
                        let indices = stats.as_ref().map(|_| selected.as_slice());
                        attend_into(
                            store.keys(),
                            store.values(),
                            indices,
                            &ws.q,
                            &mut ws.weights,
                            slot,
                        );
                    }
                    // The query is consumed after the parallel phase only by
                    // traced heads; everyone else skips the copy.
                    let query = if traces.contains_key(&(layer, head)) {
                        ws.q.clone()
                    } else {
                        Vec::new()
                    };
                    HeadOutcome {
                        selected,
                        stats,
                        pages,
                        compressed: compressed_pages.is_some(),
                        hint,
                        query,
                    }
                })
                .collect();

            // Attention, phase 2 (sequential, in head order): cluster-cache
            // accesses (whose LRU stamps are order-sensitive), stats
            // accumulation and traces consume the outcomes exactly as the
            // sequential engine did (outputs already sit in the concat
            // buffer, written by the parallel phase).
            for (head, mut outcome) in head_outcomes.into_iter().enumerate() {
                if let Some(mut stats) = outcome.stats.take() {
                    // Residency: resolve the plan's page requests against the
                    // session's cluster cache; only misses cross PCIe.
                    if let Some(pages) = &outcome.pages {
                        let access = sess.cache.access(LayerId(layer), HeadId(head), pages);
                        stats.charge_recall(&access);
                        if outcome.compressed {
                            // Compressed recalls move quantized pages; the
                            // cache reports their exact byte count, which
                            // the latency model prices directly.
                            sess.step.transferred_compressed_bytes += access.bytes_recalled.get();
                            sess.step.promoted_compressed_bytes += access.staged_bytes.get();
                        } else {
                            sess.step.transferred += access.missed_tokens;
                            sess.step.promoted_tokens += access.staged_tokens;
                        }
                    }
                    // Nominate next-step pages for the end-of-step staging
                    // pass: every predictor re-nominates the pages this step
                    // selected (semantic locality), Lookahead adds its
                    // widened-budget hint. Pushed in (layer, head) order by
                    // this sequential phase, so the staging order — and
                    // hence every staging-LRU stamp — is deterministic.
                    if prefetch.enabled() {
                        if let Some(pages) = outcome.pages.take() {
                            sess.nominations.push((layer, head, pages));
                        }
                        if !outcome.hint.is_empty() {
                            let hint = std::mem::take(&mut outcome.hint);
                            sess.nominations.push((layer, head, hint));
                        }
                    }
                    sess.stats.merge(&stats);
                    if layer >= config.dense_layers {
                        sess.step.scored += stats.scored_vectors;
                        sess.step.attended += outcome.selected.len() as u64;
                    }
                    if let Some(trace) = sess.traces.get_mut(&(layer, head)) {
                        let store = &sess.kv[layer][Self::kv_head_of(config, head)];
                        trace.push(TraceStep {
                            position,
                            full_weights: full_attention_weights(store, &outcome.query),
                            selected: outcome.selected.clone(),
                        });
                    }
                }
            }

            // Output projection and residual (row-parallel).
            let attn_out = Self::par_rows_matvec(&lw.wo, &sess.concat, config.hidden_dim());
            for (xi, ai) in x.iter_mut().zip(&attn_out) {
                *xi += ai;
            }

            // FFN with SiLU gating and residual (row-parallel).
            let h2 = rms_norm(&x, &lw.ffn_norm, 1e-6);
            let mut gate = Self::par_rows_matvec(&lw.w_gate, &h2, config.ffn_dim);
            for g in gate.iter_mut() {
                *g = silu(*g);
            }
            let up = Self::par_rows_matvec(&lw.w_up, &h2, config.ffn_dim);
            let gated: Vec<f32> = gate.iter().zip(&up).map(|(g, u)| g * u).collect();
            let down = Self::par_rows_matvec(&lw.w_down, &gated, config.hidden_dim());
            for (xd, dd) in x.iter_mut().zip(&down) {
                *xd += dd;
            }
        }

        sess.num_tokens += 1;
        Ok(rms_norm(&x, &weights.final_norm, 1e-6))
    }

    /// Admit pages whose KV was just produced on the GPU (prefill
    /// clustering, incremental decode clustering) into the session's cluster
    /// cache while capacity allows, and grow the CPU backing store to the
    /// full KV size.
    fn settle_session_memory(config: &ModelConfig, sess: &mut SessionState) {
        if sess.cache.enabled() {
            for layer in config.dense_layers..config.num_layers {
                for head in 0..config.num_heads {
                    // Once a head's KV is offloaded the decision is permanent
                    // — skip building its page table again every step.
                    if sess.cache.is_offloaded(LayerId(layer), HeadId(head)) {
                        continue;
                    }
                    // Both paged and recall-compressed tables warm the same
                    // way: admission is always exact, demotion to the
                    // compressed tier happens under eviction pressure.
                    if let Some(pages) = sess.selectors[layer][head].page_table().page_requests() {
                        sess.cache.warm(LayerId(layer), HeadId(head), &pages);
                    }
                }
            }
        }
        // Shared-prefix positions live in the workspace-global store and are
        // charged there exactly once; the session's backing store only pays
        // for its private rows (novel prompt suffix + generated tokens).
        // Without a prefix store `matched_prefix_tokens` is 0 and this is
        // the plain full-context charge.
        let private = sess.num_tokens - sess.matched_prefix_tokens;
        let total = Bytes(private as u64 * config.kv_bytes_per_token());
        sess.cache
            .set_backing(total)
            .expect("host DRAM exhausted by simulated KV");
    }

    /// Fan an observe event out across every selective `(layer, head)`
    /// selector of a session. The closure receives the selector's layer
    /// offset (0 = first selective layer) and the head index, and must be
    /// order-free: selectors are independent, so the fan-out runs
    /// data-parallel (DESIGN.md §4).
    fn observe_selective<F>(config: &ModelConfig, sess: &mut SessionState, observe: F)
    where
        F: Fn(usize, usize, &mut Box<dyn TokenSelector>) + Sync,
    {
        sess.selectors[config.dense_layers..]
            .iter_mut()
            .enumerate()
            .flat_map(|(li, heads)| {
                heads
                    .iter_mut()
                    .enumerate()
                    .map(move |(head, sel)| (li, head, sel))
            })
            .collect::<Vec<_>>()
            .into_par_iter()
            .with_min_len(1)
            .for_each(|(li, head, sel)| observe(li, head, sel));
    }

    /// Forward one contiguous chunk of a session's prompt with full causal
    /// attention, letting every selective head's selector observe the
    /// chunk's keys ([`ObserveEvent::PrefillChunk`]). Returns the final
    /// hidden state of the chunk's last token.
    ///
    /// Chunks are resumable: a prompt may arrive over any number of calls
    /// (the serving scheduler interleaves the chunks of one session with
    /// other sessions' decode steps), and the session becomes decodable only
    /// after [`finish_prefill`](Self::finish_prefill). Decode token streams,
    /// selector statistics and cache accounting are byte-identical whatever
    /// the chunking — including the monolithic [`prefill`](Self::prefill),
    /// which is a wrapper over this path.
    ///
    /// Each call validates its whole chunk upfront (vocabulary, context
    /// fit), so a failed call forwards nothing and the session keeps
    /// accepting corrected chunks.
    ///
    /// When the engine has a [`PrefixStore`], the chunk first walks the
    /// store: prompt positions covered by shared pages have their KV (and
    /// key-norm caches) bulk-copied instead of recomputed, and only the
    /// novel suffix runs the forward pass. The last token of every chunk is
    /// always forwarded so the returned hidden state is exact. Shared pages
    /// are immutable; the session's own stores are its private copy, so
    /// decode appends never write back (copy-on-write at the materialize
    /// boundary, DESIGN.md §8).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`], [`EngineError::PrefillSealed`]
    /// (the session already finished prefill), [`EngineError::EmptyChunk`],
    /// [`EngineError::TokenOutOfVocab`] or [`EngineError::ContextOverflow`].
    pub fn prefill_chunk(
        &mut self,
        id: SessionId,
        chunk: &[usize],
    ) -> Result<Vec<f32>, EngineError> {
        let Self {
            config,
            weights,
            rope,
            budget,
            sessions,
            prefix,
            injector,
            ..
        } = self;
        let sess = sessions
            .get_mut(&id.0)
            .ok_or(EngineError::UnknownSession(id))?;
        if sess.phase == SessionPhase::Ready {
            return Err(EngineError::PrefillSealed);
        }
        if chunk.is_empty() {
            return Err(EngineError::EmptyChunk);
        }
        // Validate the whole chunk upfront: a chunk that errored halfway
        // through would otherwise leave partial KV entries behind while the
        // session still accepts a retry, silently shifting every position of
        // the retried tokens.
        if sess.num_tokens + chunk.len() > config.max_context {
            return Err(EngineError::ContextOverflow {
                requested: sess.num_tokens + chunk.len(),
                max: config.max_context,
            });
        }
        if let Some(&token) = chunk.iter().find(|&&t| t >= config.vocab_size) {
            return Err(EngineError::TokenOutOfVocab {
                token,
                vocab: config.vocab_size,
            });
        }
        let start = sess.num_tokens;
        // The chunk's length is known: reserve every store once instead of
        // growing per token.
        for layer_kv in sess.kv.iter_mut() {
            for store in layer_kv.iter_mut() {
                store.reserve(chunk.len());
            }
        }
        // Prefix fast path: positions the store already holds get their KV
        // rows (and key-norm caches) bulk-copied from shared pages; only the
        // novel suffix is forwarded. The walk is capped one token short of
        // the buffered prompt so the chunk's last token is always forwarded
        // and the returned hidden state stays exact. Copied rows are bitwise
        // what the forward pass would produce (deterministic kernels,
        // absolute-position RoPE), so everything downstream — selector
        // observes, decode, parity — is byte-identical to a cold prefill.
        let mut fast = 0;
        if let Some(store) = prefix {
            sess.prompt_tokens.extend_from_slice(chunk);
            if sess.prefix_active {
                let cap = sess.prompt_tokens.len() - 1;
                let (matched, segments) = store.match_from(start, &sess.prompt_tokens[..cap]);
                if matched > start {
                    fast = matched - start;
                    for (layer, layer_kv) in sess.kv.iter_mut().enumerate() {
                        for (kv_head, kv) in layer_kv.iter_mut().enumerate() {
                            for seg in &segments {
                                // Integrity gate (DESIGN.md §11): the page's
                                // seal is checked before its rows are
                                // adopted; a damaged seal is repaired from
                                // the pristine rows (recompute + re-donate)
                                // so adoption never propagates corruption.
                                let key = (seg.node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                                    ^ ((layer as u64) << 32)
                                    ^ ((kv_head as u64) << 16)
                                    ^ id.raw();
                                if injector.should_corrupt(FaultSite::PrefixAdoption, key)
                                    && store.corrupt_page(seg.node, layer, kv_head)
                                {
                                    sess.integrity.record_injected();
                                }
                                match store.verify_page(seg.node, layer, kv_head) {
                                    Some(true) => sess.integrity.record_verified(),
                                    Some(false) => {
                                        sess.integrity.record_verified();
                                        sess.integrity.record_detected();
                                        if let Some(bytes) =
                                            store.repair_page(seg.node, layer, kv_head)
                                        {
                                            sess.integrity.record_repaired(bytes.get());
                                        }
                                    }
                                    None => {}
                                }
                                let page = store.page(seg.node, layer, kv_head);
                                kv.append_shared(
                                    &page.keys,
                                    &page.values,
                                    &page.key_norms,
                                    seg.rows.0,
                                    seg.rows.1,
                                );
                            }
                        }
                    }
                    sess.num_tokens += fast;
                    sess.fastpath_prefix_tokens += fast;
                }
                sess.matched_prefix_tokens = sess.matched_prefix_tokens.max(matched);
                if matched < cap {
                    // First divergence: every later position is novel, so
                    // stop walking the tree for this session.
                    sess.prefix_active = false;
                }
            }
        }
        let mut last = Vec::new();
        for &token in &chunk[fast..] {
            last = Self::forward_token(
                config,
                weights,
                rope,
                StepPolicy {
                    budget: *budget,
                    prefetch: PrefetchConfig::disabled(),
                    faults: *injector,
                },
                sess,
                token,
                false,
            )?;
        }
        // Notify selectors of the chunk's keys (per query head, sharing one
        // copy of the associated KV head's chunk rows across its query-head
        // group). Selectors are independent, making the observes order-free;
        // policies whose prefill pass is global (ClusterKV's clustering,
        // InfiniGen's SVD) buffer here and reconcile on `PrefillDone`.
        let group = config.num_heads / config.num_kv_heads;
        let end = sess.num_tokens;
        let keys_per_layer: Vec<Vec<Matrix>> = (config.dense_layers..config.num_layers)
            .map(|layer| {
                (0..config.num_kv_heads)
                    .map(|kv_head| sess.kv[layer][kv_head].keys().slice_rows(start, end))
                    .collect()
            })
            .collect();
        Self::observe_selective(config, sess, |li, head, sel| {
            sel.observe(ObserveEvent::PrefillChunk {
                start,
                keys: &keys_per_layer[li][head / group],
            });
        });
        sess.phase = SessionPhase::Prefilling;
        sess.next_input = Some(*chunk.last().expect("chunk checked non-empty"));
        Ok(last)
    }

    /// Seal a chunked prefill: selectors reconcile their prompt state
    /// ([`ObserveEvent::PrefillDone`] — this is where ClusterKV's semantic
    /// clustering runs, Fig. 5 step 1, the heaviest per-head work of a
    /// session's lifetime), the prefill KV settles into the tiered memory
    /// hierarchy, and the session becomes decodable (its next decode input
    /// is the last prompt token).
    ///
    /// With a [`PrefixStore`], sealing also donates the session's prompt KV
    /// into the tree (refcounted, pinned until release) and reconciles
    /// selector state: the first session to seal a prompt exports its
    /// post-clustering state to the terminal node, and later sessions adopt
    /// it — skipping the k-means entirely — when the fingerprint and token
    /// count line up.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`], [`EngineError::AlreadyPrefilled`]
    /// (already sealed) or [`EngineError::EmptyPrompt`] (no chunks were
    /// forwarded).
    pub fn finish_prefill(&mut self, id: SessionId) -> Result<(), EngineError> {
        let Self {
            config,
            sessions,
            prefix,
            ..
        } = self;
        let sess = sessions
            .get_mut(&id.0)
            .ok_or(EngineError::UnknownSession(id))?;
        match sess.phase {
            SessionPhase::Ready => return Err(EngineError::AlreadyPrefilled),
            SessionPhase::Fresh => return Err(EngineError::EmptyPrompt),
            SessionPhase::Prefilling => {}
        }
        let total_tokens = sess.num_tokens;
        let mut terminal = None;
        if let Some(store) = prefix {
            debug_assert_eq!(sess.prompt_tokens.len(), total_tokens);
            if sess.prefix_active {
                // Retroactively credit the chunk-last tokens the fast path
                // recomputed: they are store-backed even though they were
                // forwarded, so they belong to the shared byte accounting.
                let (matched, _) = store.match_from(total_tokens, &sess.prompt_tokens);
                sess.matched_prefix_tokens = sess.matched_prefix_tokens.max(matched);
            }
            // Donate the prompt KV (pages are slices of this session's own
            // stores, so re-donating a known prompt adds zero bytes) and
            // swap the admission pin, if any, for the full-prompt pin that
            // `insert` takes on our behalf.
            let node = store.insert(&sess.prompt_tokens, &sess.kv);
            let old_pin = std::mem::replace(&mut sess.pinned_prompt, sess.prompt_tokens.clone());
            if !old_pin.is_empty() {
                store.unpin_prompt(&old_pin);
            }
            terminal = Some(node);
        }
        let adopt_from = terminal.and_then(|node| {
            prefix
                .as_ref()
                .filter(|store| store.has_selector_states(node))
                .map(|store| (store, node))
        });
        let dense = config.dense_layers;
        Self::observe_selective(config, sess, |li, head, sel| {
            if let Some((store, node)) = adopt_from {
                if let Some(state) = store.selector_state(node, li + dense, head) {
                    if sel.adopt_prefill_state(state, total_tokens) {
                        return;
                    }
                }
            }
            sel.observe(ObserveEvent::PrefillDone { total_tokens });
        });
        if let Some(node) = terminal {
            let store = prefix.as_mut().expect("terminal implies a store");
            if !store.has_selector_states(node) {
                // First session to seal this exact prompt: export each
                // selective head's post-reconcile state so later sessions
                // skip the clustering work.
                for (li, heads) in sess.selectors[dense..].iter().enumerate() {
                    for (head, sel) in heads.iter().enumerate() {
                        if let Some(state) = sel.export_prefill_state() {
                            store.cache_selector_state(node, li + dense, head, state);
                        }
                    }
                }
            }
        }
        // The prefill KV was produced on the GPU: pages stay resident while
        // cache capacity allows, the rest is offloaded to the backing store.
        Self::settle_session_memory(config, sess);
        sess.phase = SessionPhase::Ready;
        Ok(())
    }

    /// Process a session's whole prompt with full causal attention, then hand
    /// each head's prefill keys to its selector. Returns the final hidden
    /// state of the last prompt token and arms the session for decoding
    /// (its next decode input is the last prompt token).
    ///
    /// This is the monolithic wrapper over the resumable
    /// [`prefill_chunk`](Self::prefill_chunk) / [`finish_prefill`]
    /// path: one chunk covering the whole prompt, then the seal. Outputs are
    /// byte-identical to any other chunking of the same prompt.
    ///
    /// [`finish_prefill`]: Self::finish_prefill
    ///
    /// # Errors
    ///
    /// Returns an error for unknown sessions, repeated or in-progress
    /// prefills, empty prompts, out-of-vocabulary tokens or context
    /// overflow.
    pub fn prefill(&mut self, id: SessionId, prompt: &[usize]) -> Result<Vec<f32>, EngineError> {
        // Reject a session mid-chunked-prefill (silently appending the whole
        // prompt after partial chunks is never what the caller meant) or
        // already sealed. Checked here, not via `prefill_chunk`, to keep this
        // monolithic API's historical error contract: `AlreadyPrefilled` and
        // `EmptyPrompt`, where the chunked path reports the finer-grained
        // `PrefillSealed` and `EmptyChunk`.
        if self.session(id)?.phase != SessionPhase::Fresh {
            return Err(EngineError::AlreadyPrefilled);
        }
        if prompt.is_empty() {
            return Err(EngineError::EmptyPrompt);
        }
        let last = self.prefill_chunk(id, prompt)?;
        self.finish_prefill(id)?;
        Ok(last)
    }

    fn decode_session(&mut self, id: SessionId) -> Result<DecodeOutput, EngineError> {
        let Self {
            config,
            weights,
            rope,
            budget,
            prefetch,
            sessions,
            latency,
            injector,
            ..
        } = self;
        let sess = sessions
            .get_mut(&id.0)
            .ok_or(EngineError::UnknownSession(id))?;
        Self::decode_one(
            config,
            weights,
            rope,
            StepPolicy {
                budget: *budget,
                prefetch: *prefetch,
                faults: *injector,
            },
            latency,
            id,
            sess,
        )
    }

    /// Advance one session by one decoding step. Free of `&mut self` so
    /// [`decode_batch`](Self::decode_batch) can run disjoint sessions on
    /// different threads against the shared (read-only) model state.
    fn decode_one(
        config: &ModelConfig,
        weights: &ModelWeights,
        rope: &Rope,
        policy: StepPolicy,
        latency: &LatencyModel,
        id: SessionId,
        sess: &mut SessionState,
    ) -> Result<DecodeOutput, EngineError> {
        let StepPolicy { prefetch, .. } = policy;
        if sess.phase != SessionPhase::Ready {
            return Err(EngineError::NotPrefilled);
        }
        let token = sess.next_input.ok_or(EngineError::NotPrefilled)?;
        let position = sess.num_tokens;
        sess.step = StepAccounting::default();
        let hidden = Self::forward_token(config, weights, rope, policy, sess, token, true)?;

        // Notify selectors of the new keys appended at `position` — parallel
        // across the independent (layer, head) selectors, one key snapshot
        // per KV head. Incremental clustering (ClusterKV's periodic k-means
        // over the decode buffer) runs inside these observes.
        let group = config.num_heads / config.num_kv_heads;
        let key_per_layer: Vec<Vec<Vec<f32>>> = (config.dense_layers..config.num_layers)
            .map(|layer| {
                (0..config.num_kv_heads)
                    .map(|kv_head| sess.kv[layer][kv_head].key(position).to_vec())
                    .collect()
            })
            .collect();
        sess.selectors[config.dense_layers..]
            .iter_mut()
            .enumerate()
            .flat_map(|(li, heads)| {
                heads
                    .iter_mut()
                    .enumerate()
                    .map(move |(head, sel)| (li, head, sel))
            })
            .collect::<Vec<_>>()
            .into_par_iter()
            .with_min_len(1)
            .for_each(|(li, head, sel)| {
                sel.observe(ObserveEvent::Append {
                    position,
                    key: &key_per_layer[li][head / group],
                });
            });
        // New KV (and any freshly created clusters) was produced on-device;
        // settle what stays resident, then stage this step's nominations for
        // the next step. Staging runs after settlement so freshly admitted
        // pages are already resident (stage() skips them), and drains the
        // nominations in the (layer, head) order phase 2 pushed them —
        // deterministic staging-LRU stamps at any thread count.
        Self::settle_session_memory(config, sess);
        if prefetch.enabled() {
            let mut budget_left = prefetch.step_bytes;
            for (layer, head, pages) in sess.nominations.drain(..) {
                if budget_left.get() == 0 {
                    continue; // keep draining so no stale nominations survive
                }
                let moved = sess
                    .cache
                    .stage(LayerId(layer), HeadId(head), &pages, budget_left);
                sess.step.staged_bytes += moved.get();
                budget_left = Bytes(budget_left.get() - moved.get());
            }
        }
        // Deterministic fault injection (DESIGN.md §11). Every decision is a
        // pure function of (plan seed, site, session id, position), so the
        // schedule is bit-identical across runs, chunkings and thread
        // counts. Faults only add modeled time (retried bytes, backoff) and
        // checksum churn; the KV payloads a step attends are untouched, so
        // token streams match the faults-off run byte for byte.
        let injector = policy.faults;
        if injector.enabled() {
            let step_key = id.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ position as u64;
            // Modeled transfer failures: this step's demand recall is
            // re-sent (attempts - 1) extra times, each preceded by an
            // exponential-backoff wait charged to the modeled clock.
            let demand_bytes = sess.step.transferred * (4 * config.head_dim) as u64
                + sess.step.transferred_compressed_bytes;
            if demand_bytes > 0 {
                let attempts = injector.transfer_attempts(FaultSite::DemandRecall, step_key);
                if attempts > 1 {
                    let retries = u64::from(attempts - 1);
                    let retried = retries * demand_bytes;
                    let backoff = backoff_seconds(injector.plan().backoff_base, attempts);
                    sess.step.retried_bytes += retried;
                    sess.step.backoff_seconds += backoff;
                    sess.integrity.record_retries(retries, retried, backoff);
                }
            }
            // Checksum corruption of a resident page, scrubbed in the same
            // step: detection re-seals the tag from the pristine backing
            // rows and the re-fetch is charged as retried demand traffic.
            if injector.should_corrupt(FaultSite::DemandRecall, step_key)
                && sess.cache.corrupt_resident_page(step_key)
            {
                let repaired = sess.cache.scrub();
                sess.step.retried_bytes += repaired.get();
            }
        }
        // Price the step. With the overlap clock, miss tokens promoted out
        // of the staging buffer leave the demand term (their transfer was
        // charged — overlapped — by the step that staged them) and this
        // step's staged bytes enter the overlap term. Without overlap (or
        // with prefetch off) the raw totals reproduce the pure-sum clock
        // bit for bit.
        let (transferred, compressed_bytes, staged_bytes) =
            if prefetch.enabled() && prefetch.overlap {
                (
                    sess.step.transferred - sess.step.promoted_tokens,
                    sess.step.transferred_compressed_bytes - sess.step.promoted_compressed_bytes,
                    sess.step.staged_bytes,
                )
            } else {
                (
                    sess.step.transferred,
                    sess.step.transferred_compressed_bytes,
                    0,
                )
            };
        let cost = StepCost::from_step_totals(
            config,
            sess.step.scored,
            sess.step.attended,
            transferred,
            compressed_bytes,
            staged_bytes,
        )
        .with_retries(sess.step.retried_bytes, sess.step.backoff_seconds);
        let breakdown = latency.decode_step_breakdown(sess.num_tokens, &cost);
        sess.modeled_decode += breakdown.total;
        sess.hidden_transfer += breakdown.hidden();
        sess.transfer_time += breakdown.staged + breakdown.demand;

        // Tied-embedding logits (blocked matvec, row-chunk-parallel over the
        // vocabulary).
        let logits = Self::par_rows_matvec(&weights.embedding, &hidden, config.vocab_size);
        let next_token = argmax(&logits).unwrap_or(0);
        sess.generated_tokens += 1;
        sess.next_input = Some(next_token);
        Ok(DecodeOutput {
            session: id,
            next_token,
            logits,
            hidden,
        })
    }

    /// Run one decoding step for a session with an explicit input token
    /// (typically the previously generated token).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSession`], [`EngineError::NotPrefilled`], plus
    /// vocabulary / context errors.
    pub fn decode_step(
        &mut self,
        id: SessionId,
        token: usize,
    ) -> Result<DecodeOutput, EngineError> {
        self.set_next_input(id, token)?;
        self.decode_session(id)
    }

    /// Advance every listed session by one decoding step, each consuming its
    /// own pending input token (the last prompt token right after prefill,
    /// afterwards its previously generated token unless overridden via
    /// [`set_next_input`](Self::set_next_input)).
    ///
    /// The batch's **distinct sessions fan out across the thread pool**
    /// (`RAYON_NUM_THREADS` workers): sessions are fully isolated, so the
    /// outputs are byte-identical to calling
    /// [`decode_step`](Self::decode_step) on each session separately, at any
    /// thread count — the serving parity suite enforces this. A session may
    /// appear multiple times, advancing multiple steps; its steps run
    /// sequentially on one worker, in batch order. Outputs are returned in
    /// the order of `ids`, exactly as the sequential engine produced them.
    ///
    /// # Errors
    ///
    /// Validates every id upfront — [`EngineError::UnknownSession`],
    /// [`EngineError::NotPrefilled`], and [`EngineError::ContextOverflow`]
    /// (counting repeated ids) are all reported before any session is
    /// advanced, so a failed batch performs no work.
    pub fn decode_batch(&mut self, ids: &[SessionId]) -> Result<Vec<DecodeOutput>, EngineError> {
        let mut steps_per_id: BTreeMap<u64, usize> = BTreeMap::new();
        for &id in ids {
            let sess = self.session(id)?;
            if sess.phase != SessionPhase::Ready || sess.next_input.is_none() {
                return Err(EngineError::NotPrefilled);
            }
            let steps = steps_per_id.entry(id.0).or_insert(0);
            *steps += 1;
            // Input tokens are validated on entry (argmax continuations and
            // `set_next_input` both stay inside the vocabulary), so the only
            // way a step can fail after this point is running out of context.
            if sess.num_tokens + *steps > self.config.max_context {
                return Err(EngineError::ContextOverflow {
                    requested: sess.num_tokens + *steps,
                    max: self.config.max_context,
                });
            }
        }

        // Group the batch by session: each distinct session becomes one unit
        // of work carrying the output slots its steps fill.
        let mut slots_per_id: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (slot, &id) in ids.iter().enumerate() {
            slots_per_id.entry(id.0).or_default().push(slot);
        }
        let Self {
            config,
            weights,
            rope,
            budget,
            prefetch,
            sessions,
            latency,
            injector,
            ..
        } = self;
        let policy = StepPolicy {
            budget: *budget,
            prefetch: *prefetch,
            faults: *injector,
        };
        // The session table is a BTreeMap, so the work list (and thus chunk
        // assignment) is id-ordered structurally — no post-hoc sort needed.
        let work: Vec<(u64, Vec<usize>, &mut SessionState)> = sessions
            .iter_mut()
            .filter_map(|(&raw, sess)| slots_per_id.remove(&raw).map(|slots| (raw, slots, sess)))
            .collect();

        // Fan distinct sessions across the pool; inside one unit the steps
        // run in batch order. Every tool the step needs (`config`, weights,
        // RoPE tables, the latency model) is shared immutably; all mutable
        // state is per-session and moves into exactly one unit.
        let per_session: Vec<Vec<(usize, Result<DecodeOutput, EngineError>)>> = work
            .into_par_iter()
            .with_min_len(1)
            .map(|(raw, slots, sess)| {
                let id = SessionId(raw);
                slots
                    .into_iter()
                    .map(|slot| {
                        (
                            slot,
                            Self::decode_one(config, weights, rope, policy, latency, id, sess),
                        )
                    })
                    .collect()
            })
            .collect();

        // Scatter the per-session outputs back into batch order.
        let mut out: Vec<Option<DecodeOutput>> = ids.iter().map(|_| None).collect();
        for (slot, result) in per_session.into_iter().flatten() {
            out[slot] = Some(result?);
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("every batch slot is produced by exactly one session unit"))
            .collect())
    }

    /// Greedily generate `steps` tokens for a session after prefilling it
    /// with `prompt`, returning the generated token ids.
    ///
    /// This stays a direct single-session driver rather than a client of the
    /// `clusterkv-sched` scheduler: it is the "one sequence, run it to the
    /// end" convenience path, with no queueing, admission or modeled clock
    /// to consult — routing it through a one-request scheduler would add a
    /// policy layer that cannot change any output. Multi-request serving
    /// (arrivals, chunked prefill interleaved with decode, latency
    /// accounting) belongs to `clusterkv_sched::Scheduler`, which drives the
    /// same [`prefill_chunk`](Self::prefill_chunk) /
    /// [`decode_batch`](Self::decode_batch) primitives.
    ///
    /// The whole generation is validated upfront (`prompt.len() + steps`
    /// must fit the context window): either the call succeeds in full, or it
    /// fails before forwarding anything — an error never leaves the session
    /// half-advanced with some tokens generated but none returned.
    ///
    /// # Errors
    ///
    /// [`EngineError::ContextOverflow`] if the prompt plus every requested
    /// step cannot fit `max_context`, reported before any work; otherwise
    /// propagates the validation errors of [`prefill`](Self::prefill).
    pub fn generate(
        &mut self,
        id: SessionId,
        prompt: &[usize],
        steps: usize,
    ) -> Result<Vec<usize>, EngineError> {
        // Validate the decode phase upfront. Decode inputs are always
        // in-vocabulary (greedy argmax continuations), so the only way a
        // step could fail after prefill succeeded is running out of context
        // — which would discard the tokens already generated. Checking the
        // full span here makes mid-generation failure impossible.
        let start = self.session(id)?.num_tokens;
        let requested = start + prompt.len() + steps;
        if requested > self.config.max_context {
            return Err(EngineError::ContextOverflow {
                requested,
                max: self.config.max_context,
            });
        }
        self.prefill(id, prompt)?;
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            out.push(self.decode_session(id)?.next_token);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FullAttentionFactory, OracleTopKFactory, SelectionPlan};

    fn tiny_serve(budget: usize) -> ServeEngine {
        ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(7)
            .budget(Budget::new(budget))
            .policy(Box::new(OracleTopKFactory))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_config() {
        let mut bad = ModelConfig::tiny();
        bad.num_heads = 3;
        bad.num_kv_heads = 2;
        assert!(matches!(
            ServeEngine::builder(bad).build().unwrap_err(),
            EngineError::InvalidConfig(_)
        ));
    }

    #[test]
    fn create_without_policy_errors() {
        let mut eng = ServeEngine::builder(ModelConfig::tiny()).build().unwrap();
        assert_eq!(
            eng.create_session().unwrap_err(),
            EngineError::MissingPolicy
        );
        // An explicit factory still works.
        assert!(eng.create_session_with(&FullAttentionFactory).is_ok());
    }

    #[test]
    fn session_lifecycle_and_ids() {
        let mut eng = tiny_serve(64);
        let a = eng.create_session().unwrap();
        let b = eng.create_session().unwrap();
        assert_ne!(a, b);
        assert_eq!(eng.num_sessions(), 2);
        assert_eq!(eng.session_ids(), vec![a, b]);
        eng.generate(a, &[1, 2, 3], 2).unwrap();
        let report = eng.release(a).unwrap();
        assert_eq!(report.id, a);
        assert_eq!(report.context_len, 5);
        assert_eq!(report.generated_tokens, 2);
        assert_eq!(eng.num_sessions(), 1);
        assert_eq!(
            eng.release(a).unwrap_err(),
            EngineError::UnknownSession(a),
            "double release is reported"
        );
    }

    #[test]
    fn session_limit_is_enforced() {
        let mut eng = ServeEngine::builder(ModelConfig::tiny())
            .policy(Box::new(FullAttentionFactory))
            .max_sessions(2)
            .build()
            .unwrap();
        eng.create_session().unwrap();
        eng.create_session().unwrap();
        assert_eq!(
            eng.create_session().unwrap_err(),
            EngineError::SessionLimitReached { max: 2 }
        );
        let ids = eng.session_ids();
        eng.release(ids[0]).unwrap();
        assert!(eng.create_session().is_ok(), "capacity is reclaimed");
    }

    #[test]
    fn prefill_guards() {
        let mut eng = tiny_serve(64);
        let s = eng.create_session().unwrap();
        assert_eq!(eng.prefill(s, &[]).unwrap_err(), EngineError::EmptyPrompt);
        eng.prefill(s, &[1, 2, 3]).unwrap();
        assert_eq!(
            eng.prefill(s, &[4]).unwrap_err(),
            EngineError::AlreadyPrefilled
        );
        let ghost = SessionId(999);
        assert_eq!(
            eng.prefill(ghost, &[1]).unwrap_err(),
            EngineError::UnknownSession(ghost)
        );
    }

    #[test]
    fn chunked_prefill_matches_monolithic() {
        let prompt: Vec<usize> = (0..25).map(|i| (i * 5 + 2) % 128).collect();
        let mut mono = tiny_serve(8);
        let sm = mono.create_session().unwrap();
        let mono_hidden = mono.prefill(sm, &prompt).unwrap();
        let mono_stream: Vec<usize> = (0..6)
            .map(|_| mono.decode_batch(&[sm]).unwrap()[0].next_token)
            .collect();

        for chunk_size in [1usize, 3, 7, prompt.len()] {
            let mut eng = tiny_serve(8);
            let s = eng.create_session().unwrap();
            let mut last = Vec::new();
            for chunk in prompt.chunks(chunk_size) {
                last = eng.prefill_chunk(s, chunk).unwrap();
            }
            eng.finish_prefill(s).unwrap();
            assert_eq!(last, mono_hidden, "chunk {chunk_size}: hidden diverged");
            let stream: Vec<usize> = (0..6)
                .map(|_| eng.decode_batch(&[s]).unwrap()[0].next_token)
                .collect();
            assert_eq!(stream, mono_stream, "chunk {chunk_size}: stream diverged");
            assert_eq!(
                eng.session_stats(s).unwrap(),
                mono.session_stats(sm).unwrap(),
                "chunk {chunk_size}: stats diverged"
            );
        }
    }

    #[test]
    fn chunked_prefill_lifecycle_guards() {
        let mut eng = tiny_serve(64);
        let s = eng.create_session().unwrap();
        // Nothing fed yet: the prompt cannot be sealed and decode is barred.
        assert_eq!(eng.finish_prefill(s).unwrap_err(), EngineError::EmptyPrompt);
        assert_eq!(
            eng.decode_batch(&[s]).unwrap_err(),
            EngineError::NotPrefilled
        );
        eng.prefill_chunk(s, &[1, 2, 3]).unwrap();
        // Mid-prefill: still not decodable, and the monolithic entry point
        // refuses to splice a whole prompt after partial chunks.
        assert_eq!(
            eng.decode_batch(&[s]).unwrap_err(),
            EngineError::NotPrefilled
        );
        assert_eq!(
            eng.set_next_input(s, 1).unwrap_err(),
            EngineError::NotPrefilled
        );
        assert_eq!(
            eng.prefill(s, &[4, 5]).unwrap_err(),
            EngineError::AlreadyPrefilled
        );
        // An empty chunk is a caller bug, named as such — not EmptyPrompt,
        // which is about sealing a session that never fed any chunk.
        assert_eq!(
            eng.prefill_chunk(s, &[]).unwrap_err(),
            EngineError::EmptyChunk
        );
        eng.prefill_chunk(s, &[4, 5]).unwrap();
        eng.finish_prefill(s).unwrap();
        assert_eq!(eng.context_len(s).unwrap(), 5);
        // Sealed: further chunks get the dedicated error (the session's
        // phase silently advancing would corrupt positions), no double seal.
        assert_eq!(
            eng.prefill_chunk(s, &[6]).unwrap_err(),
            EngineError::PrefillSealed
        );
        assert_eq!(
            eng.finish_prefill(s).unwrap_err(),
            EngineError::AlreadyPrefilled
        );
        eng.decode_batch(&[s]).unwrap();
        let ghost = SessionId(999);
        assert_eq!(
            eng.prefill_chunk(ghost, &[1]).unwrap_err(),
            EngineError::UnknownSession(ghost)
        );
        assert_eq!(
            eng.finish_prefill(ghost).unwrap_err(),
            EngineError::UnknownSession(ghost)
        );
    }

    #[test]
    fn failed_chunk_is_atomic_and_resumable() {
        let mut eng = tiny_serve(64);
        let s = eng.create_session().unwrap();
        eng.prefill_chunk(s, &[1, 2]).unwrap();
        let err = eng.prefill_chunk(s, &[3, 9999]).unwrap_err();
        assert!(matches!(
            err,
            EngineError::TokenOutOfVocab { token: 9999, .. }
        ));
        // The failed chunk forwarded nothing; a corrected chunk resumes.
        assert_eq!(eng.context_len(s).unwrap(), 2);
        eng.prefill_chunk(s, &[3, 4]).unwrap();
        eng.finish_prefill(s).unwrap();
        assert_eq!(eng.context_len(s).unwrap(), 4);
        assert_eq!(eng.kv_store(s, 0, 0).unwrap().len(), 4);
    }

    #[test]
    fn generate_validates_the_whole_run_upfront() {
        let mut cfg = ModelConfig::tiny();
        cfg.max_context = 6;
        let mut eng = ServeEngine::builder(cfg)
            .synthetic_weights(7)
            .budget(Budget::new(64))
            .policy(Box::new(FullAttentionFactory))
            .build()
            .unwrap();
        let s = eng.create_session().unwrap();
        // 4 prompt + 3 steps > 6: rejected before any work, so the session
        // is untouched (no partially generated tokens are ever discarded).
        let err = eng.generate(s, &[1, 2, 3, 4], 3).unwrap_err();
        assert_eq!(
            err,
            EngineError::ContextOverflow {
                requested: 7,
                max: 6
            }
        );
        assert_eq!(eng.context_len(s).unwrap(), 0, "nothing was advanced");
        // The same session then runs the fitting request in full.
        assert_eq!(eng.generate(s, &[1, 2, 3, 4], 2).unwrap().len(), 2);
    }

    #[test]
    fn failed_prefill_leaves_no_partial_state() {
        let mut eng = tiny_serve(64);
        let s = eng.create_session().unwrap();
        // Token 9999 is out of vocabulary: the whole prefill must be
        // rejected before any KV is appended...
        let err = eng.prefill(s, &[1, 2, 9999, 4]).unwrap_err();
        assert!(matches!(
            err,
            EngineError::TokenOutOfVocab { token: 9999, .. }
        ));
        assert_eq!(eng.context_len(s).unwrap(), 0);
        assert_eq!(eng.kv_store(s, 0, 0).unwrap().len(), 0);
        // ...so a corrected retry starts from a clean session.
        eng.prefill(s, &[1, 2, 3, 4]).unwrap();
        assert_eq!(eng.context_len(s).unwrap(), 4);
        assert_eq!(eng.kv_store(s, 0, 0).unwrap().len(), 4);
    }

    #[test]
    fn set_next_input_rejects_out_of_vocab_tokens() {
        let mut eng = tiny_serve(64);
        let s = eng.create_session().unwrap();
        eng.prefill(s, &[1, 2, 3]).unwrap();
        let vocab = eng.config().vocab_size;
        assert!(matches!(
            eng.set_next_input(s, vocab).unwrap_err(),
            EngineError::TokenOutOfVocab { .. }
        ));
        // The pending input is untouched, so decoding still works.
        eng.decode_batch(&[s]).unwrap();
    }

    #[test]
    fn decode_batch_reports_context_overflow_before_any_work() {
        let mut cfg = ModelConfig::tiny();
        cfg.max_context = 5;
        let mut eng = ServeEngine::builder(cfg)
            .synthetic_weights(7)
            .budget(Budget::new(64))
            .policy(Box::new(FullAttentionFactory))
            .build()
            .unwrap();
        let s = eng.create_session().unwrap();
        eng.prefill(s, &[1, 2, 3, 4]).unwrap();
        // One free slot, but the batch asks for two steps of the same
        // session: the overflow must be detected upfront, advancing nothing.
        let err = eng.decode_batch(&[s, s]).unwrap_err();
        assert_eq!(
            err,
            EngineError::ContextOverflow {
                requested: 6,
                max: 5
            }
        );
        assert_eq!(eng.context_len(s).unwrap(), 4, "no session was advanced");
        // A single step still fits.
        eng.decode_batch(&[s]).unwrap();
        assert_eq!(eng.context_len(s).unwrap(), 5);
    }

    #[test]
    fn decode_batch_validates_upfront() {
        let mut eng = tiny_serve(64);
        let a = eng.create_session().unwrap();
        let b = eng.create_session().unwrap();
        eng.prefill(a, &[1, 2, 3]).unwrap();
        // b is not prefilled: the whole batch must fail with no work done.
        assert_eq!(
            eng.decode_batch(&[a, b]).unwrap_err(),
            EngineError::NotPrefilled
        );
        assert_eq!(eng.context_len(a).unwrap(), 3, "a was not advanced");
    }

    #[test]
    fn decode_batch_advances_each_session_once() {
        let mut eng = tiny_serve(64);
        let ids: Vec<SessionId> = (0..3).map(|_| eng.create_session().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            eng.prefill(id, &[1 + i, 2 + i, 3 + i]).unwrap();
        }
        let outs = eng.decode_batch(&ids).unwrap();
        assert_eq!(outs.len(), 3);
        for (out, &id) in outs.iter().zip(&ids) {
            assert_eq!(out.session, id);
            assert_eq!(eng.context_len(id).unwrap(), 4);
        }
    }

    #[test]
    fn repeated_id_in_batch_advances_twice() {
        let mut eng = tiny_serve(64);
        let s = eng.create_session().unwrap();
        eng.prefill(s, &[5, 6, 7]).unwrap();
        let outs = eng.decode_batch(&[s, s]).unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(eng.context_len(s).unwrap(), 5);
    }

    #[test]
    fn set_next_input_overrides_greedy_continuation() {
        let mut a = tiny_serve(512);
        let mut b = tiny_serve(512);
        let sa = a.create_session().unwrap();
        let sb = b.create_session().unwrap();
        a.prefill(sa, &[1, 2, 3, 4]).unwrap();
        b.prefill(sb, &[1, 2, 3, 4]).unwrap();
        let greedy = a.decode_batch(&[sa]).unwrap()[0].next_token;
        // Session b decodes the same step but is then forced onto a token
        // that differs from the greedy continuation.
        b.decode_batch(&[sb]).unwrap();
        let forced = (greedy + 1) % b.config().vocab_size;
        b.set_next_input(sb, forced).unwrap();
        let ya = a.decode_batch(&[sa]).unwrap();
        let yb = b.decode_batch(&[sb]).unwrap();
        // The engines are identical, so any divergence can only come from
        // the forced input token.
        assert_ne!(ya[0].logits, yb[0].logits);
    }

    #[test]
    fn sessions_are_isolated() {
        // Interleaving decode steps of two sessions gives the same streams
        // as running each alone.
        let prompt_a: Vec<usize> = (0..24).map(|i| (i * 3) % 128).collect();
        let prompt_b: Vec<usize> = (0..24).map(|i| (i * 7 + 1) % 128).collect();

        let mut solo = tiny_serve(8);
        let s = solo.create_session().unwrap();
        let alone_a = solo.generate(s, &prompt_a, 6).unwrap();
        let s2 = solo.create_session().unwrap();
        let alone_b = solo.generate(s2, &prompt_b, 6).unwrap();

        let mut eng = tiny_serve(8);
        let a = eng.create_session().unwrap();
        let b = eng.create_session().unwrap();
        eng.prefill(a, &prompt_a).unwrap();
        eng.prefill(b, &prompt_b).unwrap();
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        for _ in 0..6 {
            let outs = eng.decode_batch(&[a, b]).unwrap();
            got_a.push(outs[0].next_token);
            got_b.push(outs[1].next_token);
        }
        assert_eq!(got_a, alone_a);
        assert_eq!(got_b, alone_b);
    }

    fn clusterkv_like_engine(capacity: Bytes) -> ServeEngine {
        // A paged policy without depending on the core crate: exercise the
        // cache through a minimal cluster-shaped selector.
        ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(7)
            .budget(Budget::new(8))
            .policy(Box::new(PagedTopKFactory))
            .kv_cache_capacity(capacity)
            .build()
            .unwrap()
    }

    /// Test-only paged policy: exact top-k selection reported as one
    /// four-token-aligned page per selected token group.
    struct PagedTopKSelector {
        inner: crate::policy::OracleTopKSelector,
    }

    impl TokenSelector for PagedTopKSelector {
        fn name(&self) -> &str {
            "PagedTopK"
        }
        fn observe(&mut self, event: ObserveEvent<'_>) {
            self.inner.observe(event);
        }
        fn plan(&mut self, request: SelectionRequest<'_>) -> SelectionPlan {
            let plan = self.inner.plan(request);
            if request.budget.covers(request.num_tokens) {
                return plan;
            }
            let pages: Vec<crate::policy::PageRequest> = plan
                .indices
                .iter()
                .map(|&t| crate::policy::PageRequest::new(t / 4, 4))
                .collect();
            let stats = plan.stats;
            SelectionPlan::new(plan.indices)
                .with_stats(stats)
                .with_pages(pages)
        }
    }

    struct PagedTopKFactory;

    impl SelectorFactory for PagedTopKFactory {
        fn name(&self) -> &str {
            "PagedTopK"
        }
        fn create(&self, ctx: HeadContext) -> Box<dyn TokenSelector> {
            Box::new(PagedTopKSelector {
                inner: crate::policy::OracleTopKSelector::new(ctx.head_dim),
            })
        }
    }

    #[test]
    fn residency_changes_accounting_but_never_token_streams() {
        let prompt: Vec<usize> = (0..32).map(|i| (i * 5 + 1) % 128).collect();
        let run = |capacity: Bytes| {
            let mut eng = clusterkv_like_engine(capacity);
            let s = eng.create_session().unwrap();
            let stream = eng.generate(s, &prompt, 8).unwrap();
            (stream, eng.release(s).unwrap())
        };
        let (cold_stream, cold) = run(Bytes(0));
        let (warm_stream, warm) = run(Bytes(1 << 20));
        assert_eq!(warm_stream, cold_stream, "residency must not change tokens");
        assert_eq!(cold.stats.cache.hits, 0, "no cache, no hits");
        assert!(cold.stats.cache.misses > 0);
        assert!(warm.stats.cache.hits > 0);
        assert!(
            warm.bytes_recalled() < cold.bytes_recalled(),
            "cache must reduce PCIe traffic: {} vs {}",
            warm.bytes_recalled(),
            cold.bytes_recalled()
        );
        assert!(
            warm.modeled_decode_time < cold.modeled_decode_time,
            "misses must cost transfer time: {} vs {}",
            warm.modeled_decode_time,
            cold.modeled_decode_time
        );
        assert!(warm.cache_hit_rate() > cold.cache_hit_rate());
    }

    #[test]
    fn backing_store_tracks_the_full_kv_size() {
        let mut eng = clusterkv_like_engine(Bytes(1 << 16));
        let s = eng.create_session().unwrap();
        let prompt: Vec<usize> = (0..24).map(|i| (i * 3) % 128).collect();
        eng.prefill(s, &prompt).unwrap();
        eng.decode_batch(&[s, s]).unwrap();
        let cache = eng.session_cache(s).unwrap();
        let expected = 26 * eng.config().kv_bytes_per_token();
        assert_eq!(cache.cpu().used(), Bytes(expected));
        assert!(cache.resident_bytes() <= cache.capacity());
    }

    #[test]
    fn resident_policies_keep_the_cache_empty() {
        let mut eng = ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(7)
            .budget(Budget::new(8))
            .policy(Box::new(FullAttentionFactory))
            .kv_cache_capacity(Bytes(1 << 20))
            .build()
            .unwrap();
        assert_eq!(eng.kv_cache_capacity(), Bytes(1 << 20));
        let s = eng.create_session().unwrap();
        eng.generate(s, &[1, 2, 3, 4, 5, 6], 4).unwrap();
        let cache = eng.session_cache(s).unwrap();
        assert_eq!(cache.resident_pages(), 0, "FullKV never pages");
        let report = eng.release(s).unwrap();
        assert_eq!(report.stats.cache.total(), 0);
        assert_eq!(report.bytes_recalled(), Bytes(0));
        assert!(report.modeled_decode_time.get() > 0.0);
    }

    #[test]
    fn modeled_decode_time_grows_with_each_step() {
        let mut eng = clusterkv_like_engine(Bytes(1 << 20));
        let s = eng.create_session().unwrap();
        eng.prefill(s, &(0..16).collect::<Vec<_>>()).unwrap();
        assert_eq!(
            eng.modeled_decode_time(s).unwrap(),
            Seconds::zero(),
            "prefill charges no decode time"
        );
        eng.decode_batch(&[s]).unwrap();
        let after_one = eng.modeled_decode_time(s).unwrap();
        assert!(after_one.get() > 0.0);
        eng.decode_batch(&[s]).unwrap();
        assert!(eng.modeled_decode_time(s).unwrap() > after_one);
    }

    #[test]
    fn decode_workspaces_reach_steady_state() {
        // The per-head workspaces (and projection/concat scratch) grow while
        // the first decode steps size them, then stop: steady-state decode
        // reuses the same buffers every step instead of allocating.
        let mut eng = tiny_serve(8);
        let s = eng.create_session().unwrap();
        let prompt: Vec<usize> = (0..24).map(|i| (i * 3 + 1) % 128).collect();
        eng.prefill(s, &prompt).unwrap();
        // Warm-up: a few steps let every buffer reach its working size.
        for _ in 0..4 {
            eng.decode_batch(&[s]).unwrap();
        }
        let warm = eng.session_workspace_bytes(s).unwrap();
        assert!(warm > 0, "workspaces are in use");
        for _ in 0..12 {
            eng.decode_batch(&[s]).unwrap();
        }
        assert_eq!(
            eng.session_workspace_bytes(s).unwrap(),
            warm,
            "steady-state decode must not grow the workspaces"
        );
    }

    #[test]
    fn stats_accumulate_per_session() {
        let mut eng = tiny_serve(4);
        let a = eng.create_session().unwrap();
        let b = eng.create_session().unwrap();
        eng.prefill(a, &[1, 2, 3, 4, 5, 6]).unwrap();
        eng.prefill(b, &[1, 2, 3, 4, 5, 6]).unwrap();
        eng.decode_batch(&[a]).unwrap();
        let sa = eng.session_stats(a).unwrap();
        let sb = eng.session_stats(b).unwrap();
        assert!(sa.scored_vectors > 0, "a decoded and accumulated stats");
        assert_eq!(sb.scored_vectors, 0, "b never decoded");
    }

    fn tiny_serve_with_prefix(budget: usize) -> ServeEngine {
        ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(7)
            .budget(Budget::new(budget))
            .policy(Box::new(OracleTopKFactory))
            .prefix_store(Bytes(1 << 20))
            .build()
            .unwrap()
    }

    #[test]
    fn prefix_reuse_is_byte_identical_to_cold_sessions() {
        let prompt: Vec<usize> = (0..32).map(|i| (i * 5 + 3) % 128).collect();
        let mut cold = tiny_serve(8);
        let c = cold.create_session().unwrap();
        cold.prefill(c, &prompt).unwrap();
        let cold_stream: Vec<usize> = (0..8)
            .map(|_| cold.decode_batch(&[c]).unwrap()[0].next_token)
            .collect();

        let mut eng = tiny_serve_with_prefix(8);
        // First session sees a cold store: nothing fast-pathed, but the
        // prompt gets donated at seal.
        let a = eng.create_session().unwrap();
        let last_a = eng.prefill(a, &prompt).unwrap();
        let (matched_a, fast_a) = eng.session_prefix_tokens(a).unwrap();
        assert_eq!(fast_a, 0, "nothing to reuse on a cold store");
        assert_eq!(matched_a, 0);
        let a_stream: Vec<usize> = (0..8)
            .map(|_| eng.decode_batch(&[a]).unwrap()[0].next_token)
            .collect();
        assert_eq!(a_stream, cold_stream, "store-enabled first session");

        // Second session: the whole prompt except the recomputed final
        // token is served from shared pages, and decode is byte-identical.
        let b = eng.create_session().unwrap();
        let last_b = eng.prefill(b, &prompt).unwrap();
        assert_eq!(last_b, last_a, "returned hidden states match exactly");
        let (matched_b, fast_b) = eng.session_prefix_tokens(b).unwrap();
        assert_eq!(fast_b, prompt.len() - 1, "all but the final token reused");
        assert_eq!(matched_b, prompt.len(), "final match credits the prompt");
        let b_stream: Vec<usize> = (0..8)
            .map(|_| eng.decode_batch(&[b]).unwrap()[0].next_token)
            .collect();
        assert_eq!(b_stream, cold_stream, "shared-prefix session diverged");

        let stats = eng.prefix_store_stats().unwrap();
        assert!(stats.hit_tokens as usize >= prompt.len() - 1);
    }

    #[test]
    fn prefix_reuse_is_chunking_invariant() {
        let prompt: Vec<usize> = (0..24).map(|i| (i * 7 + 2) % 128).collect();
        let mut cold = tiny_serve(8);
        let c = cold.create_session().unwrap();
        cold.prefill(c, &prompt).unwrap();
        let cold_stream: Vec<usize> = (0..6)
            .map(|_| cold.decode_batch(&[c]).unwrap()[0].next_token)
            .collect();
        for chunk_size in [1, 3, 7, 24] {
            let mut eng = tiny_serve_with_prefix(8);
            let a = eng.create_session().unwrap();
            eng.prefill(a, &prompt).unwrap();
            let b = eng.create_session().unwrap();
            for chunk in prompt.chunks(chunk_size) {
                eng.prefill_chunk(b, chunk).unwrap();
            }
            eng.finish_prefill(b).unwrap();
            let stream: Vec<usize> = (0..6)
                .map(|_| eng.decode_batch(&[b]).unwrap()[0].next_token)
                .collect();
            assert_eq!(stream, cold_stream, "chunk {chunk_size}: diverged");
            let (matched, fast) = eng.session_prefix_tokens(b).unwrap();
            assert_eq!(matched, prompt.len(), "chunk {chunk_size}");
            // Every chunk recomputes exactly its final token.
            assert_eq!(
                fast,
                prompt.len() - prompt.len().div_ceil(chunk_size),
                "chunk {chunk_size}: fast-path count"
            );
        }
    }

    #[test]
    fn prefix_divergent_prompt_reuses_only_common_part() {
        let shared: Vec<usize> = (0..16).map(|i| (i * 3 + 1) % 128).collect();
        let mut a_prompt = shared.clone();
        a_prompt.extend([40, 41, 42, 43]);
        let mut b_prompt = shared.clone();
        b_prompt.extend([90, 91, 92, 93]);

        let mut cold = tiny_serve(8);
        let c = cold.create_session().unwrap();
        cold.prefill(c, &b_prompt).unwrap();
        let cold_stream: Vec<usize> = (0..6)
            .map(|_| cold.decode_batch(&[c]).unwrap()[0].next_token)
            .collect();

        let mut eng = tiny_serve_with_prefix(8);
        let a = eng.create_session().unwrap();
        eng.prefill(a, &a_prompt).unwrap();
        let b = eng.create_session().unwrap();
        eng.prefill(b, &b_prompt).unwrap();
        let (matched, fast) = eng.session_prefix_tokens(b).unwrap();
        assert_eq!(matched, shared.len(), "only the common prefix is shared");
        assert_eq!(fast, shared.len());
        let stream: Vec<usize> = (0..6)
            .map(|_| eng.decode_batch(&[b]).unwrap()[0].next_token)
            .collect();
        assert_eq!(stream, cold_stream, "divergent-suffix session diverged");
    }

    #[test]
    fn prefix_session_reports_split_shared_and_private_bytes() {
        let prompt: Vec<usize> = (0..20).map(|i| (i * 11 + 5) % 128).collect();
        let per_token = ModelConfig::tiny().kv_bytes_per_token();
        let mut eng = tiny_serve_with_prefix(8);
        let a = eng.create_session().unwrap();
        eng.prefill(a, &prompt).unwrap();
        let b = eng.create_session().unwrap();
        eng.prefill(b, &prompt).unwrap();
        for _ in 0..4 {
            eng.decode_batch(&[a, b]).unwrap();
        }
        let ra = eng.release(a).unwrap();
        assert_eq!(ra.shared_prefix_tokens, 0, "first session computed cold");
        assert_eq!(ra.shared_kv_bytes, Bytes(0));
        assert_eq!(
            ra.private_kv_bytes,
            Bytes(ra.context_len as u64 * per_token)
        );
        let rb = eng.release(b).unwrap();
        assert_eq!(rb.shared_prefix_tokens, prompt.len());
        assert_eq!(rb.shared_kv_bytes, Bytes(prompt.len() as u64 * per_token));
        assert_eq!(
            rb.private_kv_bytes,
            Bytes((rb.context_len - prompt.len()) as u64 * per_token)
        );
        assert!(rb.shared_fraction() > 0.0 && rb.shared_fraction() < 1.0);
        // Both sessions released and unpinned: the donated pages stay under
        // the LRU cap, refcount-free, ready for the next session.
        let stats = eng.prefix_store_stats().unwrap();
        assert!(stats.shared_bytes > Bytes(0));
    }

    #[test]
    fn prefix_pin_shrinks_admission_and_survives_release_order() {
        let prompt: Vec<usize> = (0..16).map(|i| (i * 9 + 4) % 128).collect();
        // Zero retention capacity: unpinned zero-refcount pages are evicted
        // immediately, so only b's admission pin can keep them alive.
        let mut eng = ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(7)
            .budget(Budget::new(8))
            .policy(Box::new(OracleTopKFactory))
            .prefix_store(Bytes(0))
            .build()
            .unwrap();
        assert_eq!(eng.prefix_match_len(&prompt), 0, "cold store");
        let a = eng.create_session().unwrap();
        eng.prefill(a, &prompt).unwrap();
        // After the first seal the whole prompt is pinnable coverage.
        assert_eq!(eng.prefix_match_len(&prompt), prompt.len());
        let b = eng.create_session().unwrap();
        let pinned = eng.pin_session_prefix(b, &prompt).unwrap();
        assert_eq!(pinned, prompt.len());
        // The donor releases first; b's pin keeps the pages alive.
        eng.release(a).unwrap();
        eng.prefill(b, &prompt).unwrap();
        let (_, fast) = eng.session_prefix_tokens(b).unwrap();
        assert_eq!(fast, prompt.len() - 1, "pinned pages stayed resident");
        eng.release(b).unwrap();
    }

    #[test]
    fn prefix_disabled_engine_reports_zero_sharing() {
        let mut eng = tiny_serve(8);
        assert!(!eng.has_prefix_store());
        assert!(eng.prefix_store_stats().is_none());
        assert_eq!(eng.prefix_match_len(&[1, 2, 3]), 0);
        let s = eng.create_session().unwrap();
        assert_eq!(eng.pin_session_prefix(s, &[1, 2, 3]).unwrap(), 0);
        eng.prefill(s, &[1, 2, 3, 4]).unwrap();
        assert_eq!(eng.session_prefix_tokens(s).unwrap(), (0, 0));
        let r = eng.release(s).unwrap();
        assert_eq!(r.shared_prefix_tokens, 0);
        assert_eq!(r.shared_kv_bytes, Bytes(0));
        assert_eq!(r.shared_fraction(), 0.0);
    }

    /// Page size of the block-paged test policy below.
    const TEST_BLOCK: usize = 8;

    /// Test-double policy: selects the most recent `B` tokens and pages the
    /// whole context in fixed [`TEST_BLOCK`]-token blocks, emitting
    /// recall-compressed plans (full block membership) when `compressed` is
    /// set and plain paged plans otherwise — the minimal policy that drives
    /// the engine's compressed recall path without the ClusterKV stack.
    struct BlockPagedSelector {
        n: usize,
        compressed: bool,
    }

    impl BlockPagedSelector {
        fn blocks(&self) -> Vec<CompressedPageRequest> {
            (0..self.n)
                .step_by(TEST_BLOCK)
                .map(|start| {
                    let members: Vec<usize> = (start..(start + TEST_BLOCK).min(self.n)).collect();
                    CompressedPageRequest::new(start / TEST_BLOCK, members)
                })
                .collect()
        }
    }

    impl TokenSelector for BlockPagedSelector {
        fn name(&self) -> &str {
            "BlockPaged"
        }

        fn observe(&mut self, event: ObserveEvent<'_>) {
            match event {
                ObserveEvent::Prefill { keys } => self.n = keys.rows(),
                ObserveEvent::PrefillChunk { start, keys } => self.n = start + keys.rows(),
                ObserveEvent::PrefillDone { total_tokens } => self.n = total_tokens,
                ObserveEvent::Append { position, .. } => self.n = position + 1,
            }
        }

        fn plan(&mut self, request: SelectionRequest<'_>) -> SelectionPlan {
            let b = request.budget.tokens().min(request.num_tokens);
            let indices: Vec<usize> = (request.num_tokens - b..request.num_tokens).collect();
            let first = indices[0];
            let pages: Vec<CompressedPageRequest> = self
                .blocks()
                .into_iter()
                .filter(|p| *p.members.last().unwrap() >= first)
                .collect();
            let plan = SelectionPlan::new(indices);
            if self.compressed {
                plan.with_compressed_pages(pages)
            } else {
                plan.with_pages(pages.into_iter().map(|p| p.request).collect())
            }
        }

        fn page_table(&self) -> KvResidency {
            let pages = self.blocks();
            if self.compressed {
                KvResidency::Compressed(pages)
            } else {
                KvResidency::Paged(pages.into_iter().map(|p| p.request).collect())
            }
        }
    }

    struct BlockPagedFactory {
        compressed: bool,
    }

    impl SelectorFactory for BlockPagedFactory {
        fn name(&self) -> &str {
            "BlockPaged"
        }

        fn create(&self, _ctx: HeadContext) -> Box<dyn TokenSelector> {
            Box::new(BlockPagedSelector {
                n: 0,
                compressed: self.compressed,
            })
        }
    }

    fn block_paged_engine(
        compressed_plans: bool,
        compression: CompressionConfig,
        capacity: Bytes,
    ) -> ServeEngine {
        ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(7)
            .budget(Budget::new(8))
            .policy(Box::new(BlockPagedFactory {
                compressed: compressed_plans,
            }))
            .kv_cache_capacity(capacity)
            .compression(compression)
            .build()
            .unwrap()
    }

    #[test]
    fn lossless_compressed_recall_matches_the_exact_paged_path() {
        // With a lossless engine config, `attend_compressed` reconstructs
        // the identity, so a policy emitting recall-compressed plans decodes
        // the exact same token stream as its recall-exact twin.
        let prompt: Vec<usize> = (0..30).map(|i| (i * 11 + 3) % 128).collect();
        let run = |compressed_plans: bool| {
            let mut eng =
                block_paged_engine(compressed_plans, CompressionConfig::lossless(), Bytes(512));
            let s = eng.create_session().unwrap();
            eng.prefill(s, &prompt).unwrap();
            let stream: Vec<usize> = (0..8)
                .map(|_| eng.decode_batch(&[s]).unwrap()[0].next_token)
                .collect();
            (stream, eng.release(s).unwrap())
        };
        let (exact_stream, exact_report) = run(false);
        let (comp_stream, comp_report) = run(true);
        assert_eq!(comp_stream, exact_stream, "lossless must be byte-identical");
        // A lossless cache never demotes, so the compressed tier stays idle
        // on both paths.
        assert_eq!(comp_report.compression, CompressionStats::default());
        assert_eq!(comp_report.compression_ratio(), 0.0);
        assert_eq!(exact_report.compression, CompressionStats::default());
    }

    #[test]
    fn compressed_tier_decodes_end_to_end_under_memory_pressure() {
        // Small cache + int8 tier: evictions demote pages to the compressed
        // tier, compressed recalls flow through `attend_compressed`, and the
        // report carries the byte accounting.
        let prompt: Vec<usize> = (0..40).map(|i| (i * 7 + 5) % 128).collect();
        let mut eng = block_paged_engine(true, CompressionConfig::int8(), Bytes(600));
        let s = eng.create_session().unwrap();
        eng.prefill(s, &prompt).unwrap();
        for _ in 0..10 {
            eng.decode_batch(&[s]).unwrap();
        }
        let report = eng.release(s).unwrap();
        assert!(
            report.compression.demotions > 0,
            "capacity pressure must demote pages: {:?}",
            report.compression
        );
        assert!(
            report.compression_ratio() > 1.0,
            "int8 demotions shrink bytes: {}",
            report.compression_ratio()
        );
        assert!(!report.compression_ratio().is_nan());
        assert!(report.generated_tokens == 10);
        assert!(report.modeled_decode_time > Seconds(0.0));
    }

    fn prefetch_engine(capacity: Bytes, prefetch: PrefetchConfig) -> ServeEngine {
        ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(7)
            .budget(Budget::new(8))
            .policy(Box::new(PagedTopKFactory))
            .kv_cache_capacity(capacity)
            .prefetch(prefetch)
            .build()
            .unwrap()
    }

    #[test]
    fn prefetch_changes_accounting_but_never_token_streams() {
        // The tentpole invariant (DESIGN.md §10): prefetch only changes
        // *when* bytes move. Streams, hit rates and recalled bytes must be
        // identical with prefetch off, staging without overlap pricing, and
        // the full overlap clock; the staging-only probe must additionally
        // reproduce the prefetch-off modeled clock bit for bit.
        let prompt: Vec<usize> = (0..32).map(|i| (i * 5 + 1) % 128).collect();
        let capacity = Bytes(512); // tight: most selected pages miss
        let run = |prefetch: PrefetchConfig| {
            let mut eng = prefetch_engine(capacity, prefetch);
            let s = eng.create_session().unwrap();
            let stream = eng.generate(s, &prompt, 8).unwrap();
            (stream, eng.release(s).unwrap())
        };
        let (off_stream, off) = run(PrefetchConfig::disabled());
        let (probe_stream, probe) = run(PrefetchConfig::staging_only(Bytes(1 << 20)));
        let (on_stream, on) = run(PrefetchConfig::reuse_last(Bytes(1 << 20)));

        assert_eq!(probe_stream, off_stream, "staging must not change tokens");
        assert_eq!(on_stream, off_stream, "overlap must not change tokens");
        for report in [&probe, &on] {
            assert_eq!(report.stats.cache, off.stats.cache, "hit rates differ");
            assert_eq!(
                report.bytes_recalled(),
                off.bytes_recalled(),
                "recalled bytes differ"
            );
        }
        assert_eq!(
            probe.modeled_decode_time.get().to_bits(),
            off.modeled_decode_time.get().to_bits(),
            "without overlap pricing the clock is bit-identical to prefetch off"
        );

        // Reuse-last on a slowly drifting top-k set stages pages the next
        // step actually demands: the staging buffer sees real promotions.
        assert!(on.prefetch.staged_pages > 0, "nothing was staged");
        assert!(on.prefetch.used_pages > 0, "nothing was promoted");
        let accuracy = on.prefetch_accuracy();
        assert!(accuracy > 0.0 && accuracy <= 1.0, "accuracy {accuracy}");
        assert_eq!(probe.prefetch.staged_pages, on.prefetch.staged_pages);
        // Off-engine prefetch accounting stays all-zero.
        assert_eq!(off.prefetch, PrefetchStats::new());
        assert_eq!(off.prefetch_accuracy(), 0.0);
        assert_eq!(off.hidden_transfer_fraction(), 0.0);
        assert_eq!(off.hidden_transfer_time, Seconds::zero());
        // The overlap clock hides staged transfer behind compute; demand
        // promoted out of the staging buffer can only shrink the step, so
        // the demand-side transfer total never grows.
        let hidden = on.hidden_transfer_fraction();
        assert!(hidden > 0.0 && hidden <= 1.0, "hidden fraction {hidden}");
        assert!(on.hidden_transfer_time.get() > 0.0);
        assert!(on.transfer_time >= on.hidden_transfer_time);
    }

    #[test]
    fn prefetch_step_byte_cap_throttles_staging() {
        let prompt: Vec<usize> = (0..24).map(|i| (i * 3 + 2) % 128).collect();
        let mut eng = prefetch_engine(
            Bytes(512),
            PrefetchConfig::reuse_last(Bytes(1 << 20)).with_step_bytes(Bytes(0)),
        );
        let s = eng.create_session().unwrap();
        let choked = eng.generate(s, &prompt, 6).unwrap();
        assert_eq!(
            eng.session_prefetch_stats(s).unwrap(),
            PrefetchStats::new(),
            "a zero per-step budget stages nothing"
        );
        // Lifting the cap mid-flight starts staging without touching tokens.
        eng.set_prefetch_step_bytes(Bytes(u64::MAX));
        assert_eq!(eng.prefetch_config().step_bytes, Bytes(u64::MAX));
        for _ in 0..6 {
            eng.decode_batch(&[s]).unwrap();
        }
        assert!(eng.session_prefetch_stats(s).unwrap().staged_pages > 0);
        let (hidden, total) = eng.session_transfer_times(s).unwrap();
        assert!(total >= hidden);

        let mut free = prefetch_engine(Bytes(512), PrefetchConfig::reuse_last(Bytes(1 << 20)));
        let fs = free.create_session().unwrap();
        let free_stream = free.generate(fs, &prompt, 6).unwrap();
        assert_eq!(choked, free_stream, "step budget must not change tokens");
    }

    #[test]
    fn session_report_prefetch_ratios_are_zero_not_nan_for_empty_sessions() {
        // Satellite guard (PR 8 convention): zero staged bytes and zero
        // transfer time must report 0.0 ratios, never NaN — both for a
        // session released untouched and for a prefetch-enabled engine
        // whose sessions never staged.
        let mut eng = prefetch_engine(Bytes(512), PrefetchConfig::lookahead(Bytes(1 << 16)));
        let s = eng.create_session().unwrap();
        let r = eng.release(s).unwrap();
        assert_eq!(r.prefetch_accuracy(), 0.0);
        assert_eq!(r.hidden_transfer_fraction(), 0.0);
        assert!(!r.prefetch_accuracy().is_nan());
        assert!(!r.hidden_transfer_fraction().is_nan());
        // A full-attention session decodes without ever staging: same guard.
        let mut full = ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(7)
            .budget(Budget::new(8))
            .policy(Box::new(FullAttentionFactory))
            .prefetch(PrefetchConfig::reuse_last(Bytes(1 << 16)))
            .build()
            .unwrap();
        let s = full.create_session().unwrap();
        full.generate(s, &[1, 2, 3], 2).unwrap();
        let r = full.release(s).unwrap();
        assert_eq!(r.prefetch_accuracy(), 0.0);
        assert_eq!(r.hidden_transfer_fraction(), 0.0);
    }

    #[test]
    fn session_report_ratios_are_zero_not_nan_for_empty_sessions() {
        // Satellite guard: a session released before any token is forwarded
        // has zero tokens, zero cache traffic and zero compressed bytes —
        // every ratio accessor must report 0.0, never NaN.
        let mut eng = tiny_serve(8);
        let s = eng.create_session().unwrap();
        let r = eng.release(s).unwrap();
        assert_eq!(r.context_len, 0);
        assert_eq!(r.cache_hit_rate(), 0.0);
        assert_eq!(r.shared_fraction(), 0.0);
        assert_eq!(r.compression_ratio(), 0.0);
        assert!(!r.cache_hit_rate().is_nan());
        assert!(!r.shared_fraction().is_nan());
        assert!(!r.compression_ratio().is_nan());
        // A resident-policy session that did run also keeps the paging
        // ratios at 0.0 (it never touched the cache or the tier).
        let mut full = ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(7)
            .budget(Budget::new(8))
            .policy(Box::new(FullAttentionFactory))
            .build()
            .unwrap();
        let s = full.create_session().unwrap();
        full.generate(s, &[1, 2, 3], 2).unwrap();
        let r = full.release(s).unwrap();
        assert_eq!(r.cache_hit_rate(), 0.0);
        assert_eq!(r.compression_ratio(), 0.0);
        assert!(r.shared_fraction() == 0.0 && !r.shared_fraction().is_nan());
    }

    #[test]
    fn prefix_pin_churn_leaves_no_leaked_pins() {
        // Satellite regression: create/pin/prefill/decode/release churn, in
        // both release orders, against a zero-retention store. Any pin the
        // engine failed to release would keep nodes alive (zero-refcount
        // nodes are evicted immediately at `Bytes(0)` capacity); any
        // double-unpin would panic on refcount underflow.
        let prompt: Vec<usize> = (0..16).map(|i| (i * 9 + 4) % 128).collect();
        let mut eng = ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(7)
            .budget(Budget::new(8))
            .policy(Box::new(OracleTopKFactory))
            .prefix_store(Bytes(0))
            .build()
            .unwrap();
        for round in 0..4 {
            let a = eng.create_session().unwrap();
            let b = eng.create_session().unwrap();
            // Pin before prefill (admission-control order); b re-pins after
            // a's seal when coverage exists, exercising the pin swap.
            eng.pin_session_prefix(a, &prompt).unwrap();
            eng.prefill(a, &prompt).unwrap();
            eng.pin_session_prefix(b, &prompt).unwrap();
            eng.prefill(b, &prompt).unwrap();
            for _ in 0..2 {
                eng.decode_batch(&[a, b]).unwrap();
            }
            // Alternate release orders across rounds.
            let (first, second) = if round % 2 == 0 { (a, b) } else { (b, a) };
            eng.release(first).unwrap();
            eng.release(second).unwrap();
            let stats = eng.prefix_store_stats().unwrap();
            assert_eq!(
                stats.nodes, 0,
                "round {round}: all pins released ⇒ zero-retention store empties"
            );
            assert_eq!(stats.shared_bytes, Bytes(0), "round {round}");
        }
    }

    /// An engine with a real cluster cache and a fault plan: the paged
    /// test policy keeps the cache in play (resident pages give corruption
    /// a target) while a small budget keeps demand transfers flowing (so
    /// retries have traffic to re-send).
    fn tiny_faulty(budget: usize, plan: FaultPlan) -> ServeEngine {
        ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(7)
            .budget(Budget::new(budget))
            .policy(Box::new(PagedTopKFactory))
            .kv_cache_capacity(Bytes(1 << 16))
            .faults(plan)
            .build()
            .unwrap()
    }

    #[test]
    fn faults_never_change_token_streams() {
        // The central robustness invariant (DESIGN.md §11): fault injection
        // adds modeled time and checksum churn but the decoded stream is
        // byte-identical to the faults-off run, at every fault rate.
        let prompt: Vec<usize> = (0..24).map(|i| (i * 7 + 5) % 128).collect();
        let mut clean = tiny_faulty(6, FaultPlan::disabled());
        let c = clean.create_session().unwrap();
        clean.prefill(c, &prompt).unwrap();
        let clean_stream: Vec<usize> = (0..8)
            .map(|_| clean.decode_batch(&[c]).unwrap()[0].next_token)
            .collect();
        let clean_report = clean.release(c).unwrap();
        assert_eq!(clean_report.integrity, IntegrityStats::default());

        for rate in [0.05, 0.2, 0.6] {
            let mut eng = tiny_faulty(6, FaultPlan::uniform(11, rate));
            let s = eng.create_session().unwrap();
            eng.prefill(s, &prompt).unwrap();
            let stream: Vec<usize> = (0..8)
                .map(|_| eng.decode_batch(&[s]).unwrap()[0].next_token)
                .collect();
            assert_eq!(stream, clean_stream, "rate {rate}: stream diverged");
            let report = eng.release(s).unwrap();
            // Faults only ever add modeled time.
            assert!(
                report.modeled_decode_time.get() >= clean_report.modeled_decode_time.get(),
                "rate {rate}: faults made the modeled clock run backwards"
            );
            assert_eq!(
                report.integrity.silent_corruptions(),
                0,
                "rate {rate}: an injected corruption escaped the scrub"
            );
            assert_eq!(
                report.integrity.corruptions_repaired, report.integrity.corruptions_detected,
                "rate {rate}: a detected corruption was not repaired"
            );
        }
    }

    #[test]
    fn fault_schedules_are_bit_identical_across_runs() {
        let prompt: Vec<usize> = (0..20).map(|i| (i * 3 + 2) % 128).collect();
        let run = || {
            let mut eng = tiny_faulty(6, FaultPlan::uniform(42, 0.4));
            let s = eng.create_session().unwrap();
            eng.prefill(s, &prompt).unwrap();
            let stream: Vec<usize> = (0..6)
                .map(|_| eng.decode_batch(&[s]).unwrap()[0].next_token)
                .collect();
            let report = eng.release(s).unwrap();
            (
                stream,
                report.integrity,
                report.modeled_decode_time.get().to_bits(),
            )
        };
        let (s1, i1, t1) = run();
        let (s2, i2, t2) = run();
        assert_eq!(s1, s2);
        assert_eq!(i1, i2, "integrity accounting must be deterministic");
        assert_eq!(t1, t2, "modeled time must be bit-identical across runs");
        // A high uniform rate over 6 decode steps with live demand traffic
        // must actually fire: a plan that never injects is a broken plan.
        assert!(i1.transfer_retries > 0, "no retries at rate 0.4");
        assert!(i1.backoff_seconds > 0.0, "retries must charge backoff");
    }

    #[test]
    fn injected_corruptions_are_detected_and_repaired() {
        let prompt: Vec<usize> = (0..24).map(|i| (i * 5 + 1) % 128).collect();
        // corruption_rate = 0.45: fires on roughly half the decode steps.
        let mut eng = tiny_faulty(6, FaultPlan::uniform(3, 0.9));
        let s = eng.create_session().unwrap();
        eng.prefill(s, &prompt).unwrap();
        for _ in 0..10 {
            eng.decode_batch(&[s]).unwrap();
        }
        let integrity = eng.integrity_stats(s).unwrap();
        eng.release(s).unwrap();
        assert!(
            integrity.corruptions_injected > 0,
            "corruption never fired at rate 0.45 over 10 steps"
        );
        assert_eq!(
            integrity.corruptions_detected, integrity.corruptions_injected,
            "every injected corruption must be caught by the scrub"
        );
        assert_eq!(
            integrity.corruptions_repaired, integrity.corruptions_detected,
            "every detected corruption must be repaired"
        );
        assert_eq!(integrity.silent_corruptions(), 0);
        assert!(integrity.verifications > 0);
    }

    #[test]
    fn prefix_adoption_verifies_and_repairs_shared_pages() {
        let prompt: Vec<usize> = (0..32).map(|i| (i * 5 + 3) % 128).collect();
        // Donate with a clean engine, adopt with corruption firing at
        // nearly every adoption decision.
        let plan = FaultPlan {
            corruption_rate: 0.9,
            ..FaultPlan::disabled().with_seed(5)
        };
        let mut eng = ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(7)
            .budget(Budget::new(8))
            .policy(Box::new(OracleTopKFactory))
            .prefix_store(Bytes(1 << 20))
            .faults(plan)
            .build()
            .unwrap();
        let donor = eng.create_session().unwrap();
        eng.prefill(donor, &prompt).unwrap();
        let donor_stream: Vec<usize> = (0..4)
            .map(|_| eng.decode_batch(&[donor]).unwrap()[0].next_token)
            .collect();

        let adopter = eng.create_session().unwrap();
        eng.prefill(adopter, &prompt).unwrap();
        let adopter_stream: Vec<usize> = (0..4)
            .map(|_| eng.decode_batch(&[adopter]).unwrap()[0].next_token)
            .collect();
        assert_eq!(
            adopter_stream, donor_stream,
            "adoption-time corruption must never reach the adopted rows"
        );
        let integrity = eng.integrity_stats(adopter).unwrap();
        assert!(
            integrity.verifications > 0,
            "adoption must verify shared-page seals"
        );
        assert!(
            integrity.corruptions_injected > 0,
            "corruption never fired at rate 0.9 across adopted pages"
        );
        assert_eq!(
            integrity.corruptions_detected,
            integrity.corruptions_injected
        );
        assert_eq!(
            integrity.corruptions_repaired,
            integrity.corruptions_detected
        );
        eng.release(adopter).unwrap();
        eng.release(donor).unwrap();
    }

    #[test]
    fn degradation_hooks_are_safe_no_ops_without_their_tiers() {
        // Without a staging buffer there is nothing to shed; under a
        // lossless config there is nothing to demote. Both hooks must be
        // callable unconditionally by the scheduler's pressure ladder.
        let mut eng = tiny_faulty(6, FaultPlan::disabled());
        let s = eng.create_session().unwrap();
        eng.prefill(s, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        eng.decode_batch(&[s]).unwrap();
        assert_eq!(eng.shed_staging(s).unwrap(), Bytes(0));
        assert_eq!(eng.demote_session(s).unwrap(), 0);
        let ghost = SessionId(999);
        assert!(matches!(
            eng.shed_staging(ghost),
            Err(EngineError::UnknownSession(_))
        ));
        assert!(matches!(
            eng.demote_session(ghost),
            Err(EngineError::UnknownSession(_))
        ));
        // The stream is unaffected by ladder pokes.
        let next = eng.decode_batch(&[s]).unwrap()[0].next_token;
        let mut clean = tiny_faulty(6, FaultPlan::disabled());
        let c = clean.create_session().unwrap();
        clean.prefill(c, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        clean.decode_batch(&[c]).unwrap();
        assert_eq!(clean.decode_batch(&[c]).unwrap()[0].next_token, next);
    }

    #[test]
    fn builder_rejects_invalid_fault_plans() {
        let mut plan = FaultPlan::disabled();
        plan.corruption_rate = 1.5;
        assert!(matches!(
            ServeEngine::builder(ModelConfig::tiny())
                .faults(plan)
                .build(),
            Err(EngineError::InvalidConfig(_))
        ));
    }
}
