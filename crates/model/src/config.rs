//! Model shape configuration and presets.
//!
//! Two distinct uses:
//!
//! 1. The *latency model* ([`crate::latency`]) needs the real shapes of the
//!    models used in the paper (GLM4-9B, Llama-3.1-8B, OPT-6.7B) to estimate
//!    memory traffic and FLOPs.
//! 2. The *executable simulator* ([`crate::engine`]) runs with scaled-down
//!    shapes ([`ModelConfig::tiny`], [`ModelPreset::scaled_down`]) so the
//!    accuracy-style experiments finish quickly on a CPU.

use serde::{Deserialize, Serialize};

/// Shape of a decoder-only transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Number of transformer layers.
    pub num_layers: usize,
    /// Number of query heads per layer.
    pub num_heads: usize,
    /// Number of key/value heads (GQA); equals `num_heads` for MHA.
    pub num_kv_heads: usize,
    /// Dimensionality of each head.
    pub head_dim: usize,
    /// FFN intermediate dimension.
    pub ffn_dim: usize,
    /// Vocabulary size (only used for embedding/cost accounting).
    pub vocab_size: usize,
    /// Maximum context window the model supports.
    pub max_context: usize,
    /// Number of initial layers that always use the full KV cache
    /// (the evaluation disables selection on the first two layers, matching
    /// Quest's setting; §V-A).
    pub dense_layers: usize,
}

impl ModelConfig {
    /// Hidden size (`num_heads * head_dim`).
    pub fn hidden_dim(&self) -> usize {
        self.num_heads * self.head_dim
    }

    /// KV bytes per token across all layers (fp16), used for memory/latency
    /// accounting: `2 (K and V) * 2 bytes * layers * kv_heads * head_dim`.
    pub fn kv_bytes_per_token(&self) -> u64 {
        (2 * 2 * self.num_layers * self.num_kv_heads * self.head_dim) as u64
    }

    /// Bytes of selected KV one decode step touches across every
    /// selective-layer query head (fp16 K+V), the natural unit for sizing a
    /// session's GPU cluster cache: a capacity of `N ×` this value holds
    /// roughly `N` steps' worth of selections (the LRU analogue of the
    /// paper's recency window `R = N`, §IV-D). Pass the selection budget
    /// plus one cluster/page of slack as `tokens_per_step` — recall is page
    /// granular and overshoots the budget by up to one trimmed page.
    pub fn selected_kv_bytes_per_step(&self, tokens_per_step: usize) -> u64 {
        let selective_heads = (self.num_layers - self.dense_layers) * self.num_heads;
        (selective_heads * tokens_per_step) as u64 * (4 * self.head_dim) as u64
    }

    /// Approximate parameter count (weights only, ignoring embeddings
    /// sharing), used for prefill FLOP estimation.
    pub fn approx_params(&self) -> u64 {
        let h = self.hidden_dim() as u64;
        let kv_h = (self.num_kv_heads * self.head_dim) as u64;
        let per_layer = h * h // q proj
            + 2 * h * kv_h    // k and v proj
            + h * h           // o proj
            + 3 * h * self.ffn_dim as u64; // gate/up/down
        per_layer * self.num_layers as u64 + 2 * h * self.vocab_size as u64
    }

    /// A deliberately tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_layers: 2,
            num_heads: 2,
            num_kv_heads: 2,
            head_dim: 8,
            ffn_dim: 32,
            vocab_size: 128,
            max_context: 512,
            dense_layers: 0,
        }
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_layers == 0 {
            return Err("num_layers must be > 0".into());
        }
        if self.num_heads == 0 || self.num_kv_heads == 0 {
            return Err("head counts must be > 0".into());
        }
        if !self.num_heads.is_multiple_of(self.num_kv_heads) {
            return Err(format!(
                "num_heads ({}) must be a multiple of num_kv_heads ({})",
                self.num_heads, self.num_kv_heads
            ));
        }
        if self.head_dim == 0 || !self.head_dim.is_multiple_of(2) {
            return Err("head_dim must be a positive even number (for RoPE)".into());
        }
        if self.dense_layers > self.num_layers {
            return Err("dense_layers cannot exceed num_layers".into());
        }
        Ok(())
    }
}

/// The concrete models referenced in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelPreset {
    /// GLM4-9B-Chat (accuracy evaluation; 128k context window).
    Glm4_9b,
    /// Llama-3.1-8B (inference-performance evaluation vs Quest).
    Llama31_8b,
    /// Llama-3-8B (motivation study of Fig. 3).
    Llama3_8b,
    /// OPT-6.7B (InfiniGen/FlexGen comparison; 2k context window).
    Opt6_7b,
}

impl ModelPreset {
    /// Full-size configuration used by the latency model.
    pub fn config(self) -> ModelConfig {
        match self {
            ModelPreset::Glm4_9b => ModelConfig {
                num_layers: 40,
                num_heads: 32,
                num_kv_heads: 2,
                head_dim: 128,
                ffn_dim: 13696,
                vocab_size: 151552,
                max_context: 131072,
                dense_layers: 2,
            },
            ModelPreset::Llama31_8b => ModelConfig {
                num_layers: 32,
                num_heads: 32,
                num_kv_heads: 8,
                head_dim: 128,
                ffn_dim: 14336,
                vocab_size: 128256,
                max_context: 131072,
                dense_layers: 2,
            },
            ModelPreset::Llama3_8b => ModelConfig {
                num_layers: 32,
                num_heads: 32,
                num_kv_heads: 8,
                head_dim: 128,
                ffn_dim: 14336,
                vocab_size: 128256,
                max_context: 8192,
                dense_layers: 2,
            },
            ModelPreset::Opt6_7b => ModelConfig {
                num_layers: 32,
                num_heads: 32,
                num_kv_heads: 32,
                head_dim: 128,
                ffn_dim: 16384,
                vocab_size: 50272,
                max_context: 2048,
                dense_layers: 2,
            },
        }
    }

    /// Scaled-down but structurally faithful configuration for the
    /// executable simulator (same layer/head ratios, smaller dims).
    pub fn scaled_down(self) -> ModelConfig {
        let full = self.config();
        ModelConfig {
            num_layers: 4,
            num_heads: 4,
            num_kv_heads: (4 * full.num_kv_heads / full.num_heads).max(1),
            head_dim: 32,
            ffn_dim: 128,
            vocab_size: 1024,
            max_context: full.max_context,
            dense_layers: full.dense_layers.min(1),
        }
    }

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelPreset::Glm4_9b => "GLM4-9B-Chat",
            ModelPreset::Llama31_8b => "Llama-3.1-8B",
            ModelPreset::Llama3_8b => "Llama-3-8B",
            ModelPreset::Opt6_7b => "OPT-6.7B",
        }
    }
}

impl std::fmt::Display for ModelPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_config_is_valid() {
        assert!(ModelConfig::tiny().validate().is_ok());
    }

    #[test]
    fn all_presets_are_valid() {
        for p in [
            ModelPreset::Glm4_9b,
            ModelPreset::Llama31_8b,
            ModelPreset::Llama3_8b,
            ModelPreset::Opt6_7b,
        ] {
            assert!(p.config().validate().is_ok(), "{p} invalid");
            assert!(p.scaled_down().validate().is_ok(), "{p} scaled invalid");
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = ModelConfig::tiny();
        c.num_layers = 0;
        assert!(c.validate().is_err());

        let mut c = ModelConfig::tiny();
        c.head_dim = 7;
        assert!(c.validate().is_err());

        let mut c = ModelConfig::tiny();
        c.num_kv_heads = 3; // 2 % 3 != 0
        assert!(c.validate().is_err());

        let mut c = ModelConfig::tiny();
        c.dense_layers = 5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn llama31_kv_bytes_per_token_matches_hand_calculation() {
        // 2 tensors * 2 bytes * 32 layers * 8 kv heads * 128 dims = 131072.
        let c = ModelPreset::Llama31_8b.config();
        assert_eq!(c.kv_bytes_per_token(), 131072);
    }

    #[test]
    fn approx_params_is_in_the_right_ballpark() {
        // Llama-3.1-8B has ~8e9 parameters; the estimate should land within 2x.
        let p = ModelPreset::Llama31_8b.config().approx_params() as f64;
        assert!(p > 4e9 && p < 16e9, "params estimate {p}");
    }

    #[test]
    fn hidden_dim_is_heads_times_head_dim() {
        let c = ModelPreset::Glm4_9b.config();
        assert_eq!(c.hidden_dim(), 32 * 128);
    }

    #[test]
    fn scaled_down_preserves_gqa_ratio_direction() {
        let full = ModelPreset::Llama31_8b.config();
        let small = ModelPreset::Llama31_8b.scaled_down();
        assert!(small.num_kv_heads <= small.num_heads);
        assert_eq!(
            full.num_heads / full.num_kv_heads,
            small.num_heads / small.num_kv_heads
        );
    }
}
