//! Attention computation over a (possibly compressed) KV cache.
//!
//! All paths route through the blocked kernels of
//! [`clusterkv_tensor::kernels`] (DESIGN.md §6): logits are one blocked
//! (gather-)matvec over the key matrix, the output one blocked weighted sum
//! over the value matrix — no gathered row copies, no index vectors for the
//! full-attention case, and with the `*_ws` variants no allocation at all
//! once the caller's [`Workspace`] is warm. The per-row arithmetic is
//! canonical, so [`attend_full`] is bit-identical to [`attend_selected`]
//! over all indices. The pre-kernel scalar pipeline survives as
//! [`attend_selected_reference`] for property tests and benches.

use clusterkv_kvcache::KvStore;
use clusterkv_tensor::kernels::{attend_into, attention_weights_into, Workspace};
use clusterkv_tensor::ops::{attention_weights, weighted_sum};

/// Output of a single-head attention step.
///
/// The token indices the weights refer to are the `indices` the caller
/// passed to [`attend_selected`] (or `0..store.len()` for [`attend_full`]);
/// they are no longer cloned into the output — the caller already owns them.
#[derive(Debug, Clone)]
pub struct AttentionOutput {
    /// The attention output vector (`softmax(qK_Sᵀ/√d) · V_S`).
    pub output: Vec<f32>,
    /// Attention weights over the *selected* tokens, aligned with the
    /// caller's index order.
    pub weights: Vec<f32>,
}

/// Compute single-head attention of `query` over the tokens at `indices`
/// within `store`, reusing the caller's workspace: weights land in
/// `ws.weights`, the output in `ws.out`. This is the serving engine's
/// per-head decode path — allocation-free once the workspace is warm.
///
/// # Panics
///
/// Panics if `query.len() != store.head_dim()` or an index is out of bounds.
// analyzer: hot-path — zero-allocation contract (tests/zero_alloc.rs)
pub fn attend_selected_ws(store: &KvStore, query: &[f32], indices: &[usize], ws: &mut Workspace) {
    assert_eq!(query.len(), store.head_dim(), "query dim mismatch");
    ws.out.clear();
    ws.out.resize(store.head_dim(), 0.0);
    attend_into(
        store.keys(),
        store.values(),
        Some(indices),
        query,
        &mut ws.weights,
        &mut ws.out,
    );
}

/// Compute single-head attention of `query` over the tokens at `indices`
/// within `store`.
///
/// This is the approximated attention `softmax(q·K_Sᵀ/√d)·V_S` of the paper
/// (§II-B). Passing all indices yields exact full attention.
///
/// # Panics
///
/// Panics if `query.len() != store.head_dim()` or an index is out of bounds.
pub fn attend_selected(store: &KvStore, query: &[f32], indices: &[usize]) -> AttentionOutput {
    assert_eq!(query.len(), store.head_dim(), "query dim mismatch");
    let mut weights = Vec::with_capacity(indices.len());
    let mut output = vec![0.0f32; store.head_dim()];
    attend_into(
        store.keys(),
        store.values(),
        Some(indices),
        query,
        &mut weights,
        &mut output,
    );
    AttentionOutput { output, weights }
}

/// Compute exact full attention over every token in the store, without
/// materializing a `0..len` index vector: the kernels walk the key/value
/// matrices contiguously. Bit-identical to [`attend_selected`] over
/// `[0, 1, …, len-1]`.
pub fn attend_full(store: &KvStore, query: &[f32]) -> AttentionOutput {
    assert_eq!(query.len(), store.head_dim(), "query dim mismatch");
    let mut weights = Vec::with_capacity(store.len());
    let mut output = vec![0.0f32; store.head_dim()];
    attend_into(
        store.keys(),
        store.values(),
        None,
        query,
        &mut weights,
        &mut output,
    );
    AttentionOutput { output, weights }
}

/// Exact attention weights of `query` over *all* tokens in the store into
/// `ws.weights` (without computing the output, without an index vector and
/// without allocating once warm). Used by importance traces and recall
/// metrics, where only the weights matter.
// analyzer: hot-path — zero-allocation contract (tests/zero_alloc.rs)
pub fn full_attention_weights_ws(store: &KvStore, query: &[f32], ws: &mut Workspace) {
    attention_weights_into(store.keys(), None, query, &mut ws.weights);
}

/// Exact attention weights of `query` over *all* tokens in the store
/// (allocating variant of [`full_attention_weights_ws`]).
pub fn full_attention_weights(store: &KvStore, query: &[f32]) -> Vec<f32> {
    let mut weights = Vec::with_capacity(store.len());
    attention_weights_into(store.keys(), None, query, &mut weights);
    weights
}

/// The pre-kernel-layer scalar attention pipeline (iterator logits via
/// scalar `dot`, row-sequential `axpy` reduction), kept as the reference the
/// blocked path is property-tested and speedup-gated against.
pub fn attend_selected_reference(
    store: &KvStore,
    query: &[f32],
    indices: &[usize],
) -> AttentionOutput {
    assert_eq!(query.len(), store.head_dim(), "query dim mismatch");
    let keys = indices.iter().map(|&i| store.key(i));
    let weights = attention_weights(query, keys);
    let values = indices.iter().map(|&i| store.value(i));
    let output = weighted_sum(&weights, values, store.head_dim());
    AttentionOutput { output, weights }
}

/// L2 error between the full-attention output and the output computed over a
/// selected subset, normalised by the full output's norm. This is the
/// quantity the accuracy proxies in `clusterkv-workloads` are built on.
pub fn attention_output_error(store: &KvStore, query: &[f32], indices: &[usize]) -> f32 {
    let full = attend_full(store, query);
    let approx = attend_selected(store, query, indices);
    let diff: f32 = full
        .output
        .iter()
        .zip(&approx.output)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt();
    let denom: f32 = full.output.iter().map(|x| x * x).sum::<f32>().sqrt();
    if denom == 0.0 {
        diff
    } else {
        diff / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(keys: Vec<Vec<f32>>, values: Vec<Vec<f32>>) -> KvStore {
        let dim = keys[0].len();
        let mut s = KvStore::new(dim);
        for (k, v) in keys.iter().zip(&values) {
            s.append(k, v);
        }
        s
    }

    #[test]
    fn full_attention_matches_selected_with_all_indices() {
        let store = store_with(
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
        );
        let q = [0.5, 0.25];
        let full = attend_full(&store, &q);
        let sel = attend_selected(&store, &q, &[0, 1, 2]);
        assert_eq!(full.output, sel.output);
        assert_eq!(full.weights, sel.weights);
    }

    #[test]
    fn weights_sum_to_one_and_align_with_index_order() {
        let store = store_with(
            vec![vec![2.0, 0.0], vec![0.0, 2.0], vec![-2.0, 0.0]],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
        );
        let out = attend_selected(&store, &[1.0, 0.0], &[2, 0]);
        assert_eq!(out.weights.len(), 2);
        assert!((out.weights.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        // Key 0 is aligned with the query, key 2 is anti-aligned; weights
        // stay aligned with the order of the caller's indices [2, 0].
        assert!(out.weights[1] > out.weights[0]);
    }

    #[test]
    fn workspace_variant_matches_allocating_variant() {
        let store = store_with(
            vec![
                vec![1.0, 0.2],
                vec![0.3, -0.9],
                vec![0.7, 0.7],
                vec![-1.0, 0.1],
            ],
            vec![
                vec![0.5, 0.1],
                vec![1.5, -0.5],
                vec![0.0, 2.0],
                vec![0.25, 0.25],
            ],
        );
        let q = [0.4, -0.6];
        let mut ws = Workspace::new();
        attend_selected_ws(&store, &q, &[3, 1, 0], &mut ws);
        let alloc = attend_selected(&store, &q, &[3, 1, 0]);
        assert_eq!(ws.out, alloc.output);
        assert_eq!(ws.weights, alloc.weights);
        let warm = ws.allocated_bytes();
        for _ in 0..10 {
            attend_selected_ws(&store, &q, &[3, 1, 0], &mut ws);
            full_attention_weights_ws(&store, &q, &mut ws);
        }
        assert_eq!(ws.allocated_bytes(), warm, "workspace must not grow");
    }

    #[test]
    fn blocked_attention_matches_scalar_reference() {
        let store = store_with(
            vec![
                vec![1.0, 0.5, -0.25, 2.0],
                vec![0.3, -0.2, 0.8, -1.0],
                vec![0.0, 1.0, 0.0, 0.5],
                vec![2.0, -0.5, 1.5, 0.25],
                vec![-0.75, 0.1, 0.9, -0.3],
            ],
            vec![
                vec![0.1, 0.2, 0.3, 0.4],
                vec![-0.4, 0.3, -0.2, 0.1],
                vec![1.0, -1.0, 0.5, -0.5],
                vec![0.0, 0.25, 0.5, 0.75],
                vec![0.6, -0.6, 0.2, -0.2],
            ],
        );
        let q = [0.7, -0.1, 0.4, 0.9];
        for indices in [vec![0usize, 1, 2, 3, 4], vec![4, 2, 0], vec![1]] {
            let blocked = attend_selected(&store, &q, &indices);
            let reference = attend_selected_reference(&store, &q, &indices);
            for (b, r) in blocked.weights.iter().zip(&reference.weights) {
                assert!((b - r).abs() <= 1e-5, "weights {b} vs {r}");
            }
            for (b, r) in blocked.output.iter().zip(&reference.output) {
                assert!((b - r).abs() <= 1e-4, "output {b} vs {r}");
            }
        }
    }

    #[test]
    fn selecting_the_important_token_gives_small_error() {
        // One key dominates the softmax; selecting just that token should
        // approximate full attention much better than selecting another.
        let store = store_with(
            vec![vec![8.0, 0.0], vec![0.0, 0.1], vec![0.1, 0.0]],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]],
        );
        let q = [4.0, 0.0];
        let err_good = attention_output_error(&store, &q, &[0]);
        let err_bad = attention_output_error(&store, &q, &[1]);
        assert!(err_good < err_bad);
        assert!(err_good < 0.1);
    }

    #[test]
    fn full_attention_weights_match_attend_full() {
        let store = store_with(
            vec![vec![1.0, 0.5], vec![0.3, -0.2], vec![0.0, 1.0]],
            vec![vec![0.0, 0.0]; 3],
        );
        let q = [0.7, -0.1];
        let w1 = full_attention_weights(&store, &q);
        let w2 = attend_full(&store, &q).weights;
        assert_eq!(w1, w2, "both full paths share the same kernels");
    }

    #[test]
    fn error_of_full_selection_is_zero() {
        let store = store_with(
            vec![vec![1.0, 2.0], vec![2.0, 1.0]],
            vec![vec![0.5, 0.5], vec![1.5, -0.5]],
        );
        let err = attention_output_error(&store, &[1.0, 1.0], &[0, 1]);
        assert!(err < 1e-6);
    }
}
