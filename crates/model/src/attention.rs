//! Attention computation over a (possibly compressed) KV cache.

use clusterkv_kvcache::KvStore;
use clusterkv_tensor::ops::{attention_weights, softmax_in_place, weighted_sum};
use clusterkv_tensor::vector::dot;

/// Output of a single-head attention step.
#[derive(Debug, Clone)]
pub struct AttentionOutput {
    /// The attention output vector (`softmax(qK_Sᵀ/√d) · V_S`).
    pub output: Vec<f32>,
    /// Attention weights over the *selected* tokens, aligned with `indices`.
    pub weights: Vec<f32>,
    /// Indices of the selected tokens the weights refer to.
    pub indices: Vec<usize>,
}

/// Compute single-head attention of `query` over the tokens at `indices`
/// within `store`.
///
/// This is the approximated attention `softmax(q·K_Sᵀ/√d)·V_S` of the paper
/// (§II-B). Passing all indices yields exact full attention.
///
/// # Panics
///
/// Panics if `query.len() != store.head_dim()` or an index is out of bounds.
pub fn attend_selected(store: &KvStore, query: &[f32], indices: &[usize]) -> AttentionOutput {
    assert_eq!(query.len(), store.head_dim(), "query dim mismatch");
    let keys = indices.iter().map(|&i| store.key(i));
    let weights = attention_weights(query, keys);
    let values = indices.iter().map(|&i| store.value(i));
    let output = weighted_sum(&weights, values, store.head_dim());
    AttentionOutput {
        output,
        weights,
        indices: indices.to_vec(),
    }
}

/// Compute exact full attention over every token in the store.
pub fn attend_full(store: &KvStore, query: &[f32]) -> AttentionOutput {
    let indices: Vec<usize> = (0..store.len()).collect();
    attend_selected(store, query, &indices)
}

/// Exact attention weights of `query` over *all* tokens in the store
/// (without computing the output). Used by importance traces and recall
/// metrics, where only the weights matter.
pub fn full_attention_weights(store: &KvStore, query: &[f32]) -> Vec<f32> {
    let scale = 1.0 / (store.head_dim() as f32).sqrt();
    let mut logits: Vec<f32> = (0..store.len())
        .map(|i| dot(store.key(i), query) * scale)
        .collect();
    softmax_in_place(&mut logits);
    logits
}

/// L2 error between the full-attention output and the output computed over a
/// selected subset, normalised by the full output's norm. This is the
/// quantity the accuracy proxies in `clusterkv-workloads` are built on.
pub fn attention_output_error(store: &KvStore, query: &[f32], indices: &[usize]) -> f32 {
    let full = attend_full(store, query);
    let approx = attend_selected(store, query, indices);
    let diff: f32 = full
        .output
        .iter()
        .zip(&approx.output)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt();
    let denom: f32 = full.output.iter().map(|x| x * x).sum::<f32>().sqrt();
    if denom == 0.0 {
        diff
    } else {
        diff / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(keys: Vec<Vec<f32>>, values: Vec<Vec<f32>>) -> KvStore {
        let dim = keys[0].len();
        let mut s = KvStore::new(dim);
        for (k, v) in keys.iter().zip(&values) {
            s.append(k, v);
        }
        s
    }

    #[test]
    fn full_attention_matches_selected_with_all_indices() {
        let store = store_with(
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
        );
        let q = [0.5, 0.25];
        let full = attend_full(&store, &q);
        let sel = attend_selected(&store, &q, &[0, 1, 2]);
        assert_eq!(full.output, sel.output);
        assert_eq!(full.weights, sel.weights);
    }

    #[test]
    fn weights_sum_to_one_and_align_with_indices() {
        let store = store_with(
            vec![vec![2.0, 0.0], vec![0.0, 2.0], vec![-2.0, 0.0]],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
        );
        let out = attend_selected(&store, &[1.0, 0.0], &[2, 0]);
        assert_eq!(out.indices, vec![2, 0]);
        assert!((out.weights.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        // Key 0 is aligned with the query, key 2 is anti-aligned.
        assert!(out.weights[1] > out.weights[0]);
    }

    #[test]
    fn selecting_the_important_token_gives_small_error() {
        // One key dominates the softmax; selecting just that token should
        // approximate full attention much better than selecting another.
        let store = store_with(
            vec![vec![8.0, 0.0], vec![0.0, 0.1], vec![0.1, 0.0]],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]],
        );
        let q = [4.0, 0.0];
        let err_good = attention_output_error(&store, &q, &[0]);
        let err_bad = attention_output_error(&store, &q, &[1]);
        assert!(err_good < err_bad);
        assert!(err_good < 0.1);
    }

    #[test]
    fn full_attention_weights_match_attend_full() {
        let store = store_with(
            vec![vec![1.0, 0.5], vec![0.3, -0.2], vec![0.0, 1.0]],
            vec![vec![0.0, 0.0]; 3],
        );
        let q = [0.7, -0.1];
        let w1 = full_attention_weights(&store, &q);
        let w2 = attend_full(&store, &q).weights;
        for (a, b) in w1.iter().zip(&w2) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn error_of_full_selection_is_zero() {
        let store = store_with(
            vec![vec![1.0, 2.0], vec![2.0, 1.0]],
            vec![vec![0.5, 0.5], vec![1.5, -0.5]],
        );
        let err = attention_output_error(&store, &[1.0, 1.0], &[0, 1]);
        assert!(err < 1e-6);
    }
}
