//! Tiny transformer inference engine for the ClusterKV reproduction.
//!
//! The paper hooks its KV-cache selection into GLM4-9B / Llama-3.1-8B /
//! OPT-6.7B running under PyTorch. This crate provides the equivalent
//! substrate in pure Rust:
//!
//! * [`config`] — model shape descriptions and presets matching the models
//!   used in the paper (used both to size the synthetic simulator and to
//!   drive the analytical latency model).
//! * [`rope`] — rotary position embeddings applied to queries and keys.
//! * [`weights`] — deterministic synthetic weight generation.
//! * [`policy`] — the [`TokenSelector`] trait that ClusterKV and every
//!   baseline implement (request/plan shaped: [`SelectionRequest`] →
//!   [`SelectionPlan`] carrying indices, stats and its
//!   [`KvResidency`] paging), plus [`FullAttentionSelector`].
//! * [`attention`] — multi-head attention over a selected subset of the KV
//!   cache.
//! * [`serve`] — the serving engine: weights loaded once, N independent
//!   sessions, batched decode ([`ServeEngine`]).
//! * [`engine`] — [`InferenceEngine`], the single-session adapter over the
//!   serving engine.
//! * [`trace`] — recording of per-step attention weights (token-importance
//!   traces behind Fig. 3a / Fig. 11).
//! * [`latency`] — the analytical latency/throughput model behind Fig. 12 and
//!   Fig. 13.
//! * [`prefetch`] — speculative cluster prefetch configuration: predictor
//!   choice, staging capacity and the overlap clock switch (DESIGN.md §10).

#![warn(missing_docs)]

pub mod attention;
pub mod config;
pub mod engine;
pub mod latency;
pub mod policy;
pub mod prefetch;
pub mod rope;
pub mod serve;
pub mod trace;
pub mod weights;

pub use config::{ModelConfig, ModelPreset};
pub use engine::InferenceEngine;
pub use latency::{DecodeStepBreakdown, InferenceBreakdown, LatencyModel};
pub use policy::{
    CompressedPageRequest, FullAttentionSelector, KvResidency, ObserveEvent, PageRequest,
    PolicyStats, SelectionPlan, SelectionRequest, SelectorFactory, TokenSelector,
};
pub use prefetch::{PrefetchConfig, PrefetchPredictor};
pub use serve::{
    DecodeOutput, EngineError, ServeEngine, ServeEngineBuilder, SessionId, SessionReport,
};
