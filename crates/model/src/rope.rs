//! Rotary position embeddings (RoPE).
//!
//! The paper clusters keys *after* RoPE has been applied (Fig. 6 shows the
//! semantic-clustering hook placed after the QKV projection and RoPE
//! modules), so the simulator applies RoPE exactly there too.

use serde::{Deserialize, Serialize};

/// Precomputed rotary embedding tables for a given head dimension.
///
/// # Examples
///
/// ```
/// use clusterkv_model::rope::Rope;
///
/// let rope = Rope::new(8, 10_000.0);
/// let mut v = vec![1.0_f32; 8];
/// rope.apply(&mut v, 0);
/// // Position 0 is the identity rotation.
/// assert!(v.iter().zip([1.0_f32; 8].iter()).all(|(a, b)| (a - b).abs() < 1e-6));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rope {
    head_dim: usize,
    inv_freq: Vec<f32>,
}

impl Rope {
    /// Build tables for vectors of `head_dim` dimensions with the given
    /// frequency base (10 000 for Llama-family models).
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is zero or odd.
    pub fn new(head_dim: usize, base: f32) -> Self {
        assert!(
            head_dim > 0 && head_dim.is_multiple_of(2),
            "head_dim must be positive and even"
        );
        let half = head_dim / 2;
        let inv_freq = (0..half)
            .map(|i| 1.0 / base.powf(2.0 * i as f32 / head_dim as f32))
            .collect();
        Self { head_dim, inv_freq }
    }

    /// Head dimension these tables were built for.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Rotate `v` in place for the given absolute position.
    ///
    /// Uses the "rotate-half" convention: dimension pairs `(i, i + d/2)` are
    /// rotated by angle `position * inv_freq[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != head_dim`.
    pub fn apply(&self, v: &mut [f32], position: usize) {
        assert_eq!(v.len(), self.head_dim, "rope: vector dim mismatch");
        let half = self.head_dim / 2;
        for i in 0..half {
            let angle = position as f32 * self.inv_freq[i];
            let (sin, cos) = angle.sin_cos();
            let a = v[i];
            let b = v[i + half];
            v[i] = a * cos - b * sin;
            v[i + half] = a * sin + b * cos;
        }
    }

    /// Convenience: return a rotated copy.
    pub fn rotated(&self, v: &[f32], position: usize) -> Vec<f32> {
        let mut out = v.to_vec();
        self.apply(&mut out, position);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterkv_tensor::vector::{dot, norm};
    use proptest::prelude::*;

    #[test]
    fn position_zero_is_identity() {
        let rope = Rope::new(16, 10_000.0);
        let v: Vec<f32> = (0..16).map(|i| i as f32).collect();
        assert_eq!(rope.rotated(&v, 0), v);
    }

    #[test]
    fn rotation_preserves_norm() {
        let rope = Rope::new(32, 10_000.0);
        let v: Vec<f32> = (0..32).map(|i| (i as f32 * 0.3).sin()).collect();
        for pos in [1, 17, 500, 4096] {
            let r = rope.rotated(&v, pos);
            assert!(
                (norm(&r) - norm(&v)).abs() < 1e-4,
                "norm changed at pos {pos}"
            );
        }
    }

    #[test]
    fn relative_position_property() {
        // RoPE's defining property: the dot product of a rotated query and
        // key depends only on their relative offset.
        let rope = Rope::new(8, 10_000.0);
        let q = vec![0.3, -0.7, 1.2, 0.1, -0.4, 0.9, 0.2, -1.1];
        let k = vec![0.5, 0.5, -0.5, 0.25, 1.0, -0.3, 0.6, 0.0];
        let d1 = dot(&rope.rotated(&q, 10), &rope.rotated(&k, 7));
        let d2 = dot(&rope.rotated(&q, 110), &rope.rotated(&k, 107));
        assert!((d1 - d2).abs() < 1e-3, "{d1} vs {d2}");
    }

    #[test]
    #[should_panic]
    fn odd_head_dim_panics() {
        Rope::new(7, 10_000.0);
    }

    #[test]
    #[should_panic]
    fn wrong_vector_length_panics() {
        let rope = Rope::new(8, 10_000.0);
        let mut v = vec![0.0; 4];
        rope.apply(&mut v, 3);
    }

    proptest! {
        #[test]
        fn rotation_is_an_isometry(
            v in proptest::collection::vec(-3.0f32..3.0, 16),
            pos in 0usize..10_000,
        ) {
            let rope = Rope::new(16, 10_000.0);
            let r = rope.rotated(&v, pos);
            prop_assert!((norm(&r) - norm(&v)).abs() < 1e-3);
        }
    }
}
