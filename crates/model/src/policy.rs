//! The token-selection policy interface.
//!
//! Every KV-cache compression method in this workspace — ClusterKV itself and
//! all baselines (Quest, InfiniGen, H2O, StreamingLLM, full attention) — is a
//! [`TokenSelector`]: an object attached to one attention head that observes
//! keys as they are produced and, at every decoding step, returns the token
//! indices whose KV participate in the approximated attention.

use clusterkv_kvcache::stats::{CacheStats, TransferStats};
use clusterkv_kvcache::types::Budget;
use clusterkv_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Identity of the head a selector instance is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HeadContext {
    /// Layer index.
    pub layer: usize,
    /// Head index within the layer.
    pub head: usize,
    /// Head dimensionality.
    pub head_dim: usize,
}

/// Per-step cost accounting reported by a selector, consumed by the
/// analytical latency model ([`crate::latency::LatencyModel`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyStats {
    /// Number of `d`-dimensional vectors scored against the query during
    /// selection (centroids for ClusterKV, page representations for Quest,
    /// all partial keys for InfiniGen, all keys for exact top-k).
    pub scored_vectors: u64,
    /// Cumulative host-to-device traffic caused by recalling KV.
    pub transfer: TransferStats,
    /// Hit/miss statistics of any on-GPU cache the policy maintains.
    pub cache: CacheStats,
}

impl PolicyStats {
    /// Merge another accounting record into this one.
    pub fn merge(&mut self, other: &PolicyStats) {
        self.scored_vectors += other.scored_vectors;
        self.transfer.merge(&other.transfer);
        self.cache.merge(&other.cache);
    }
}

/// A KV-cache token-selection policy attached to a single attention head.
///
/// The engine drives a selector through three phases:
///
/// 1. [`on_prefill`](TokenSelector::on_prefill) — once, with the post-RoPE
///    keys of the whole prompt.
/// 2. [`on_append`](TokenSelector::on_append) — once per generated token,
///    with the new key.
/// 3. [`select`](TokenSelector::select) — once per decoding step, returning
///    the indices `I_T` of the tokens to attend to.
///
/// Implementations must be deterministic for a fixed seed so experiments are
/// reproducible.
pub trait TokenSelector: Send {
    /// Short human-readable method name ("ClusterKV", "Quest", ...).
    fn name(&self) -> &str;

    /// Observe the keys of all prompt tokens (rows are token positions).
    fn on_prefill(&mut self, keys: &Matrix);

    /// Observe the key of a newly generated token at absolute position
    /// `position`.
    fn on_append(&mut self, position: usize, key: &[f32]);

    /// Return the indices of the tokens to attend to for the given query.
    ///
    /// `num_tokens` is the current context length (prompt + generated so
    /// far). The returned indices must be unique, in `0..num_tokens`, and at
    /// most `budget.tokens()` unless the policy is exempt from the budget
    /// (full attention). Order does not matter to the attention computation.
    fn select(&mut self, query: &[f32], num_tokens: usize, budget: Budget) -> Vec<usize>;

    /// Cumulative cost accounting (selection work, transfers, cache hits).
    fn stats(&self) -> PolicyStats {
        PolicyStats::default()
    }
}

/// Factory creating one selector per `(layer, head)`.
pub trait SelectorFactory: Send + Sync {
    /// Method name, used in experiment output.
    fn name(&self) -> &str;

    /// Create the selector for a given head.
    fn create(&self, ctx: HeadContext) -> Box<dyn TokenSelector>;
}

/// The trivial policy: attend to every previous token (no compression).
///
/// This is the "Full KV" configuration of the paper and also what the engine
/// uses for the first `dense_layers` layers of every method.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullAttentionSelector;

impl TokenSelector for FullAttentionSelector {
    fn name(&self) -> &str {
        "FullKV"
    }

    fn on_prefill(&mut self, _keys: &Matrix) {}

    fn on_append(&mut self, _position: usize, _key: &[f32]) {}

    fn select(&mut self, _query: &[f32], num_tokens: usize, _budget: Budget) -> Vec<usize> {
        (0..num_tokens).collect()
    }
}

/// Factory for [`FullAttentionSelector`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FullAttentionFactory;

impl SelectorFactory for FullAttentionFactory {
    fn name(&self) -> &str {
        "FullKV"
    }

    fn create(&self, _ctx: HeadContext) -> Box<dyn TokenSelector> {
        Box::new(FullAttentionSelector)
    }
}

/// Oracle policy: selects the exact top-`B` tokens by true attention weight.
///
/// Not a practical method (it scores every key, which is what compression is
/// trying to avoid) but it provides the `I_T^true` reference set used by the
/// recall-rate experiments (Fig. 11) and an upper bound for accuracy.
#[derive(Debug, Clone, Default)]
pub struct OracleTopKSelector {
    keys: Matrix,
    scored: u64,
}

impl OracleTopKSelector {
    /// New oracle selector for vectors of the given dimensionality.
    pub fn new(head_dim: usize) -> Self {
        Self {
            keys: Matrix::zeros(0, head_dim),
            scored: 0,
        }
    }
}

impl TokenSelector for OracleTopKSelector {
    fn name(&self) -> &str {
        "OracleTopK"
    }

    fn on_prefill(&mut self, keys: &Matrix) {
        for row in keys.iter_rows() {
            self.keys.push_row(row).expect("prefill key dims consistent");
        }
    }

    fn on_append(&mut self, _position: usize, key: &[f32]) {
        self.keys.push_row(key).expect("append key dims consistent");
    }

    fn select(&mut self, query: &[f32], num_tokens: usize, budget: Budget) -> Vec<usize> {
        let n = num_tokens.min(self.keys.rows());
        self.scored += n as u64;
        if budget.covers(n) {
            return (0..n).collect();
        }
        let scores: Vec<f32> = (0..n)
            .map(|i| clusterkv_tensor::vector::dot(self.keys.row(i), query))
            .collect();
        clusterkv_tensor::vector::top_k_indices(&scores, budget.tokens())
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            scored_vectors: self.scored,
            ..PolicyStats::default()
        }
    }
}

/// Factory for [`OracleTopKSelector`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleTopKFactory;

impl SelectorFactory for OracleTopKFactory {
    fn name(&self) -> &str {
        "OracleTopK"
    }

    fn create(&self, ctx: HeadContext) -> Box<dyn TokenSelector> {
        Box::new(OracleTopKSelector::new(ctx.head_dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_matrix(n: usize, dim: usize) -> Matrix {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..dim).map(|d| ((i * 31 + d * 7) % 13) as f32 - 6.0).collect())
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn full_attention_selects_everything() {
        let mut s = FullAttentionSelector;
        let sel = s.select(&[0.0; 4], 10, Budget::new(2));
        assert_eq!(sel, (0..10).collect::<Vec<_>>());
        assert_eq!(s.name(), "FullKV");
        assert_eq!(FullAttentionFactory.name(), "FullKV");
    }

    #[test]
    fn oracle_returns_true_top_k() {
        let mut s = OracleTopKSelector::new(2);
        let keys = Matrix::from_rows(vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 0.0],
            vec![-1.0, 0.0],
        ])
        .unwrap();
        s.on_prefill(&keys);
        let q = [1.0, 0.0];
        let sel = s.select(&q, 4, Budget::new(2));
        assert_eq!(sel.len(), 2);
        assert!(sel.contains(&2)); // score 5
        assert!(sel.contains(&0)); // score 1
    }

    #[test]
    fn oracle_respects_budget_and_appends() {
        let ctx = HeadContext { layer: 0, head: 0, head_dim: 4 };
        let mut s = OracleTopKFactory.create(ctx);
        s.on_prefill(&keys_matrix(20, 4));
        s.on_append(20, &[9.0, 9.0, 9.0, 9.0]);
        let sel = s.select(&[1.0, 1.0, 1.0, 1.0], 21, Budget::new(5));
        assert_eq!(sel.len(), 5);
        assert!(sel.contains(&20), "strongly aligned appended key must be selected");
        assert!(s.stats().scored_vectors >= 21);
    }

    #[test]
    fn oracle_with_budget_covering_context_returns_all() {
        let mut s = OracleTopKSelector::new(4);
        s.on_prefill(&keys_matrix(8, 4));
        let sel = s.select(&[1.0, 0.0, 0.0, 0.0], 8, Budget::new(64));
        assert_eq!(sel, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn policy_stats_merge_accumulates() {
        let mut a = PolicyStats {
            scored_vectors: 5,
            ..Default::default()
        };
        let b = PolicyStats {
            scored_vectors: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.scored_vectors, 12);
    }

    #[test]
    fn selectors_are_object_safe_and_send() {
        fn assert_send<T: Send>(_: &T) {}
        let boxed: Box<dyn TokenSelector> = Box::new(FullAttentionSelector);
        assert_send(&boxed);
    }
}
