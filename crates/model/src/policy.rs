//! The token-selection policy interface.
//!
//! Every KV-cache compression method in this workspace — ClusterKV itself and
//! all baselines (Quest, InfiniGen, H2O, StreamingLLM, full attention) — is a
//! [`TokenSelector`]: an object attached to one attention head that observes
//! keys as they are produced and, at every decoding step, plans which token
//! indices participate in the approximated attention.
//!
//! The interface is request/plan shaped so it composes with batched serving
//! ([`crate::serve::ServeEngine`]): the engine hands the selector a
//! [`SelectionRequest`] and receives a [`SelectionPlan`] that carries both
//! the token indices **and** the cost accounting of that single call. Stats
//! are values flowing through the decode loop — selectors do not accumulate
//! hidden counters the engine must scrape afterwards.

use clusterkv_kvcache::stats::{CacheStats, TransferStats};
use clusterkv_kvcache::types::Budget;
use clusterkv_tensor::Matrix;
use serde::{Deserialize, Serialize};

pub use clusterkv_kvcache::cluster_cache::PageRequest;
pub use clusterkv_kvcache::prefix::SharedPrefixState;

/// Identity of the head a selector instance is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HeadContext {
    /// Layer index.
    pub layer: usize,
    /// Head index within the layer.
    pub head: usize,
    /// Head dimensionality.
    pub head_dim: usize,
}

/// Per-call cost accounting reported inside a [`SelectionPlan`], consumed by
/// the analytical latency model ([`crate::latency::LatencyModel`]) and
/// aggregated per session by the serving engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyStats {
    /// Number of `d`-dimensional vectors scored against the query during
    /// selection (centroids for ClusterKV, page representations for Quest,
    /// all partial keys for InfiniGen, all keys for exact top-k).
    pub scored_vectors: u64,
    /// Host-to-device traffic caused by recalling KV.
    pub transfer: TransferStats,
    /// Hit/miss counts of any on-GPU cache the policy maintains.
    pub cache: CacheStats,
}

impl PolicyStats {
    /// Merge another accounting record into this one.
    pub fn merge(&mut self, other: &PolicyStats) {
        self.scored_vectors += other.scored_vectors;
        self.transfer.merge(&other.transfer);
        self.cache.merge(&other.cache);
    }

    /// Charge the residency outcome of one head-step cluster-cache access:
    /// token hits/misses into the cache counters, plus one transfer
    /// operation for the recalled bytes when anything missed. Used by every
    /// owner of a session cache (the serving engine, the episode harness) so
    /// the charging rules cannot diverge.
    pub fn charge_recall(&mut self, outcome: &clusterkv_kvcache::cluster_cache::StepOutcome) {
        self.cache.record_hits(outcome.hit_tokens);
        self.cache.record_misses(outcome.missed_tokens);
        if outcome.missed_tokens > 0 {
            self.transfer
                .record(outcome.missed_tokens, outcome.bytes_recalled);
        }
    }
}

/// A key-production event observed by a selector.
///
/// Folds the former `on_prefill` / `on_append` callbacks into one explicit
/// event stream: the engine (or harness) feeds every selector the same
/// sequence of events it would see attached to a real attention head.
///
/// Prompt keys arrive in one of two equivalent shapes:
///
/// * **Monolithic** — a single [`Prefill`](ObserveEvent::Prefill) event with
///   every prompt key (what the single-head harness emits).
/// * **Chunked** — a contiguous run of
///   [`PrefillChunk`](ObserveEvent::PrefillChunk) events starting at
///   position 0 followed by exactly one
///   [`PrefillDone`](ObserveEvent::PrefillDone) (what the serving engine
///   emits, so a scheduler can interleave the chunks of one session's
///   prompt with other sessions' decode steps).
///
/// Implementations **must** leave the selector in a byte-identical state
/// whichever shape delivered the same keys: naturally incremental policies
/// (Quest's page metadata, exact top-k, H2O, StreamingLLM) process each
/// chunk as it arrives, while policies whose prefill pass is global
/// (ClusterKV's semantic clustering, InfiniGen's key-subspace SVD) buffer
/// the chunks and reconcile on `PrefillDone` by running the same pass a
/// monolithic `Prefill` would have run. The chunked-prefill parity suite in
/// `tests/serving.rs` enforces this for every shipped policy.
#[derive(Debug, Clone, Copy)]
pub enum ObserveEvent<'a> {
    /// The post-RoPE keys of the whole prompt, observed once after prefill
    /// (rows are token positions). This is where semantic clustering runs in
    /// ClusterKV (Fig. 5, step 1). Equivalent to one
    /// [`PrefillChunk`](ObserveEvent::PrefillChunk) at `start == 0` followed
    /// by [`PrefillDone`](ObserveEvent::PrefillDone).
    Prefill {
        /// Prompt keys, one row per token position.
        keys: &'a Matrix,
    },
    /// One contiguous chunk of prompt keys, observed as soon as the chunk's
    /// tokens have been forwarded. Chunks of one prompt arrive in order and
    /// without gaps (`start` equals the number of prompt keys observed so
    /// far).
    PrefillChunk {
        /// Absolute position of the chunk's first token.
        start: usize,
        /// The chunk's post-RoPE keys, one row per token position.
        keys: &'a Matrix,
    },
    /// The prompt is complete: no further [`PrefillChunk`]s will arrive.
    /// Policies that buffered chunks run their global prefill pass here.
    ///
    /// [`PrefillChunk`]: ObserveEvent::PrefillChunk
    PrefillDone {
        /// Total prompt length (the sum of all chunk lengths).
        total_tokens: usize,
    },
    /// The key of a newly generated token, observed once per decoding step.
    Append {
        /// Absolute position of the new token.
        position: usize,
        /// Post-RoPE key of the new token.
        key: &'a [f32],
    },
}

/// One selection request: everything a selector needs to plan the token set
/// for a single decoding step of a single head.
#[derive(Debug, Clone, Copy)]
pub struct SelectionRequest<'a> {
    /// The post-RoPE query vector of the current step.
    pub query: &'a [f32],
    /// Current context length (prompt + generated so far).
    pub num_tokens: usize,
    /// Token budget `B` the plan must respect.
    pub budget: Budget,
}

impl<'a> SelectionRequest<'a> {
    /// Build a request.
    pub fn new(query: &'a [f32], num_tokens: usize, budget: Budget) -> Self {
        Self {
            query,
            num_tokens,
            budget,
        }
    }
}

/// One page of a recall-compressed plan: the cache-level [`PageRequest`]
/// plus the page's member token positions, which the engine needs to
/// substitute the compressed (merged + dequantized) KV for exactly those
/// tokens during attention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedPageRequest {
    /// The page id and token count, as the cluster cache sees it.
    pub request: PageRequest,
    /// Absolute token positions belonging to the page, ascending.
    pub members: Vec<usize>,
}

impl CompressedPageRequest {
    /// Build a compressed page request from a page id and its members.
    pub fn new(page: usize, members: Vec<usize>) -> Self {
        Self {
            request: PageRequest::new(page, members.len()),
            members,
        }
    }
}

/// How the KV selected by a plan is materialised on the GPU (DESIGN.md §3,
/// §9).
///
/// With recall-exact residency ([`Resident`](KvResidency::Resident) /
/// [`Paged`](KvResidency::Paged)), residency affects accounting and modeled
/// latency only — never which tokens are attended. The serving stack's
/// parity suite enforces that token streams are byte-identical whatever the
/// cache configuration. [`Compressed`](KvResidency::Compressed) residency is
/// the deliberate exception: paged KV is attended through its compressed
/// representation, trading bounded accuracy for memory. Selectors only emit
/// it under a lossy
/// [`CompressionConfig`](clusterkv_kvcache::CompressionConfig), so lossless
/// configurations keep the byte-parity guarantee.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum KvResidency {
    /// All selected KV is permanently GPU resident: full attention, and
    /// eviction-style policies (StreamingLLM, H2O) whose retained working
    /// set never leaves the GPU, so nothing is ever recalled over PCIe.
    #[default]
    Resident,
    /// The selected KV is paged at the policy's own granularity (clusters
    /// for ClusterKV, positional pages for Quest, single tokens for
    /// InfiniGen) and must be looked up in the session's
    /// [`ClusterCache`](clusterkv_kvcache::cluster_cache::ClusterCache);
    /// misses are recalled from CPU memory. Recall is exact.
    Paged(Vec<PageRequest>),
    /// The selected KV is paged *and* recalled through the compressed tier:
    /// member tokens of each page are attended via their SLERP-merged,
    /// quantize-round-tripped representation (DESIGN.md §9). Tokens outside
    /// every page (sinks, pending tokens, the token being generated) stay
    /// exact.
    Compressed(Vec<CompressedPageRequest>),
}

impl KvResidency {
    /// The cache-level page requests of a paged or compressed plan; `None`
    /// for resident plans.
    pub fn page_requests(&self) -> Option<Vec<PageRequest>> {
        match self {
            KvResidency::Resident => None,
            KvResidency::Paged(pages) => Some(pages.clone()),
            KvResidency::Compressed(pages) => Some(pages.iter().map(|p| p.request).collect()),
        }
    }
}

/// The outcome of one [`TokenSelector::plan`] call: the token indices to
/// attend to plus the cost accounting of exactly this call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectionPlan {
    /// Token indices to attend to. Unique, each in `0..num_tokens`, at most
    /// `budget.tokens()` unless the policy is exempt from the budget (full
    /// attention). Order does not matter to the attention computation.
    ///
    /// Note: during decoding the engine additionally forces the token being
    /// generated into the attended set (its KV was just produced on the GPU
    /// and is not subject to selection), so the attention of a decode step
    /// may cover `budget.tokens() + 1` tokens when the plan omits the
    /// current position.
    pub indices: Vec<usize>,
    /// Selection work reported by the policy for this call only. The
    /// residency outcome (cache hits, transfers) is filled in by whoever
    /// owns the session's cluster cache — the serving engine or the episode
    /// harness — before the stats are aggregated.
    pub stats: PolicyStats,
    /// How the selected KV is materialised on the GPU.
    pub residency: KvResidency,
}

impl SelectionPlan {
    /// Plan attending to the given indices, with zeroed stats and trivially
    /// resident KV.
    pub fn new(indices: Vec<usize>) -> Self {
        Self {
            indices,
            stats: PolicyStats::default(),
            residency: KvResidency::Resident,
        }
    }

    /// Plan attending to the whole context (`0..num_tokens`), with zeroed
    /// stats — what every policy returns when the budget covers the context.
    pub fn full(num_tokens: usize) -> Self {
        Self::new((0..num_tokens).collect())
    }

    /// Attach per-call stats.
    pub fn with_stats(mut self, stats: PolicyStats) -> Self {
        self.stats = stats;
        self
    }

    /// Mark the selected KV as paged through the session's cluster cache at
    /// the given page decomposition.
    pub fn with_pages(mut self, pages: Vec<PageRequest>) -> Self {
        self.residency = KvResidency::Paged(pages);
        self
    }

    /// Mark the selected KV as paged *and* recalled through the compressed
    /// tier (DESIGN.md §9): each page carries its member token positions so
    /// the attention kernel can substitute the compressed representation for
    /// exactly those tokens.
    pub fn with_compressed_pages(mut self, pages: Vec<CompressedPageRequest>) -> Self {
        self.residency = KvResidency::Compressed(pages);
        self
    }

    /// Number of selected tokens.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether nothing was selected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// A KV-cache token-selection policy attached to a single attention head.
///
/// The engine drives a selector through two entry points:
///
/// 1. [`observe`](TokenSelector::observe) — the prompt keys (either one
///    [`ObserveEvent::Prefill`], or [`ObserveEvent::PrefillChunk`]s followed
///    by [`ObserveEvent::PrefillDone`] when prefill is chunked; both shapes
///    must leave byte-identical state), then once per generated token with
///    [`ObserveEvent::Append`].
/// 2. [`plan`](TokenSelector::plan) — once per decoding step, returning the
///    indices `I_T` of the tokens to attend to together with the per-call
///    [`PolicyStats`].
///
/// Implementations must be deterministic for a fixed seed so experiments are
/// reproducible, and must keep independent state per instance so sessions
/// can be served concurrently.
pub trait TokenSelector: Send {
    /// Short human-readable method name ("ClusterKV", "Quest", ...).
    fn name(&self) -> &str;

    /// Observe a key-production event (prompt keys or an appended key).
    fn observe(&mut self, event: ObserveEvent<'_>);

    /// Plan the token set for one decoding step.
    fn plan(&mut self, request: SelectionRequest<'_>) -> SelectionPlan;

    /// The full page decomposition of this selector's current state, used by
    /// the serving stack to warm the GPU cluster cache with pages whose KV
    /// was just produced on-device (prefill clustering, incremental decode
    /// clustering) while capacity allows. Policies whose KV never pages
    /// return [`KvResidency::Resident`] (the default).
    fn page_table(&self) -> KvResidency {
        KvResidency::Resident
    }

    /// Snapshot this selector's post-`PrefillDone` state for caching in the
    /// cross-session [`PrefixStore`] (e.g. ClusterKV's centroids and norm
    /// caches). Called by the engine immediately after `PrefillDone`, before
    /// any decode append. Return `None` (the default) if the policy has no
    /// shareable prefill state.
    ///
    /// The returned fingerprint must commit to every configuration input the
    /// state depends on besides the observed token prefix, so
    /// [`adopt_prefill_state`] only accepts state this selector would have
    /// computed itself.
    ///
    /// [`PrefixStore`]: clusterkv_kvcache::PrefixStore
    /// [`adopt_prefill_state`]: TokenSelector::adopt_prefill_state
    fn export_prefill_state(&self) -> Option<SharedPrefixState> {
        None
    }

    /// Nominate pages likely to be demanded at the *next* decode step, for
    /// speculative staging (DESIGN.md §10). The serving engine calls this
    /// after [`plan`](TokenSelector::plan) within the same step, passing the
    /// same request; `lookahead_tokens` widens the budget the nomination may
    /// assume (scoring stays as cheap as the plan's own centroid pass — the
    /// greedy-fill superset property makes the widened selection a superset
    /// of the step's, so the extra pages are exactly the marginal
    /// candidates).
    ///
    /// Implementations **must not** mutate any state that a later
    /// [`plan`](TokenSelector::plan) or
    /// [`observe`](TokenSelector::observe) depends on: prefetch changes
    /// *when* bytes move, never what attends. The default declines to
    /// speculate.
    fn prefetch_hint(
        &mut self,
        _request: SelectionRequest<'_>,
        _lookahead_tokens: usize,
    ) -> Vec<PageRequest> {
        Vec::new()
    }

    /// Adopt a cached prefill snapshot instead of running the global
    /// `PrefillDone` pass, discarding any buffered chunk keys. Returns `true`
    /// if the state was adopted (the engine then skips `PrefillDone` for this
    /// head); `false` (the default) to decline — e.g. on a fingerprint
    /// mismatch — in which case `PrefillDone` runs normally.
    ///
    /// Because the cached state was exported after an identical token prefix
    /// under an identical configuration and the prefill pass is
    /// deterministic, adoption must leave the selector byte-identical to
    /// having run `PrefillDone` itself (the prefix parity suite in
    /// `tests/serving.rs` enforces this).
    fn adopt_prefill_state(&mut self, _state: &SharedPrefixState, _total_tokens: usize) -> bool {
        false
    }
}

/// Factory creating one selector per `(layer, head)`.
pub trait SelectorFactory: Send + Sync {
    /// Method name, used in experiment output.
    fn name(&self) -> &str;

    /// Create the selector for a given head.
    fn create(&self, ctx: HeadContext) -> Box<dyn TokenSelector>;
}

/// The trivial policy: attend to every previous token (no compression).
///
/// This is the "Full KV" configuration of the paper and also what the engine
/// uses for the first `dense_layers` layers of every method.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullAttentionSelector;

impl TokenSelector for FullAttentionSelector {
    fn name(&self) -> &str {
        "FullKV"
    }

    fn observe(&mut self, _event: ObserveEvent<'_>) {}

    fn plan(&mut self, request: SelectionRequest<'_>) -> SelectionPlan {
        SelectionPlan::full(request.num_tokens)
    }
}

/// Factory for [`FullAttentionSelector`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FullAttentionFactory;

impl SelectorFactory for FullAttentionFactory {
    fn name(&self) -> &str {
        "FullKV"
    }

    fn create(&self, _ctx: HeadContext) -> Box<dyn TokenSelector> {
        Box::new(FullAttentionSelector)
    }
}

/// Oracle policy: selects the exact top-`B` tokens by true attention weight.
///
/// Not a practical method (it scores every key, which is what compression is
/// trying to avoid) but it provides the `I_T^true` reference set used by the
/// recall-rate experiments (Fig. 11) and an upper bound for accuracy.
#[derive(Debug, Clone, Default)]
pub struct OracleTopKSelector {
    keys: Matrix,
}

impl OracleTopKSelector {
    /// New oracle selector for vectors of the given dimensionality.
    pub fn new(head_dim: usize) -> Self {
        Self {
            keys: Matrix::zeros(0, head_dim),
        }
    }
}

impl TokenSelector for OracleTopKSelector {
    fn name(&self) -> &str {
        "OracleTopK"
    }

    fn observe(&mut self, event: ObserveEvent<'_>) {
        match event {
            // Exact top-k is naturally incremental: monolithic and chunked
            // prefill both just append rows, so no reconcile step is needed.
            ObserveEvent::Prefill { keys } | ObserveEvent::PrefillChunk { keys, .. } => {
                for row in keys.iter_rows() {
                    self.keys
                        .push_row(row)
                        .expect("prefill key dims consistent");
                }
            }
            ObserveEvent::PrefillDone { total_tokens } => {
                debug_assert_eq!(
                    total_tokens,
                    self.keys.rows(),
                    "chunks must cover the prompt"
                );
            }
            ObserveEvent::Append { key, .. } => {
                self.keys.push_row(key).expect("append key dims consistent");
            }
        }
    }

    fn plan(&mut self, request: SelectionRequest<'_>) -> SelectionPlan {
        let n = request.num_tokens.min(self.keys.rows());
        if request.budget.covers(n) {
            return SelectionPlan::full(n);
        }
        let scores: Vec<f32> = (0..n)
            .map(|i| clusterkv_tensor::vector::dot(self.keys.row(i), request.query))
            .collect();
        let indices = clusterkv_tensor::vector::top_k_indices(&scores, request.budget.tokens());
        SelectionPlan::new(indices).with_stats(PolicyStats {
            scored_vectors: n as u64,
            ..PolicyStats::default()
        })
    }
}

/// Factory for [`OracleTopKSelector`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleTopKFactory;

impl SelectorFactory for OracleTopKFactory {
    fn name(&self) -> &str {
        "OracleTopK"
    }

    fn create(&self, ctx: HeadContext) -> Box<dyn TokenSelector> {
        Box::new(OracleTopKSelector::new(ctx.head_dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_matrix(n: usize, dim: usize) -> Matrix {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| ((i * 31 + d * 7) % 13) as f32 - 6.0)
                    .collect()
            })
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn compressed_residency_exposes_inner_page_requests() {
        let pages = vec![
            CompressedPageRequest::new(3, vec![0, 1, 5]),
            CompressedPageRequest::new(7, vec![9]),
        ];
        let plan = SelectionPlan::new(vec![0, 1, 5, 9]).with_compressed_pages(pages);
        let KvResidency::Compressed(ref reqs) = plan.residency else {
            panic!("expected compressed residency");
        };
        assert_eq!(reqs[0].request, PageRequest::new(3, 3));
        assert_eq!(reqs[0].members, vec![0, 1, 5]);
        assert_eq!(
            plan.residency.page_requests(),
            Some(vec![PageRequest::new(3, 3), PageRequest::new(7, 1)])
        );
        assert_eq!(KvResidency::Resident.page_requests(), None);
        assert_eq!(
            KvResidency::Paged(vec![PageRequest::new(1, 2)]).page_requests(),
            Some(vec![PageRequest::new(1, 2)])
        );
    }

    #[test]
    fn full_attention_selects_everything() {
        let mut s = FullAttentionSelector;
        let plan = s.plan(SelectionRequest::new(&[0.0; 4], 10, Budget::new(2)));
        assert_eq!(plan.indices, (0..10).collect::<Vec<_>>());
        assert_eq!(plan.stats, PolicyStats::default());
        assert_eq!(s.name(), "FullKV");
        assert_eq!(FullAttentionFactory.name(), "FullKV");
    }

    #[test]
    fn oracle_returns_true_top_k() {
        let mut s = OracleTopKSelector::new(2);
        let keys = Matrix::from_rows(vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 0.0],
            vec![-1.0, 0.0],
        ])
        .unwrap();
        s.observe(ObserveEvent::Prefill { keys: &keys });
        let q = [1.0, 0.0];
        let plan = s.plan(SelectionRequest::new(&q, 4, Budget::new(2)));
        assert_eq!(plan.len(), 2);
        assert!(plan.indices.contains(&2)); // score 5
        assert!(plan.indices.contains(&0)); // score 1
    }

    #[test]
    fn oracle_respects_budget_and_appends() {
        let ctx = HeadContext {
            layer: 0,
            head: 0,
            head_dim: 4,
        };
        let mut s = OracleTopKFactory.create(ctx);
        s.observe(ObserveEvent::Prefill {
            keys: &keys_matrix(20, 4),
        });
        s.observe(ObserveEvent::Append {
            position: 20,
            key: &[9.0, 9.0, 9.0, 9.0],
        });
        let plan = s.plan(SelectionRequest::new(
            &[1.0, 1.0, 1.0, 1.0],
            21,
            Budget::new(5),
        ));
        assert_eq!(plan.len(), 5);
        assert!(
            plan.indices.contains(&20),
            "strongly aligned appended key must be selected"
        );
        assert_eq!(plan.stats.scored_vectors, 21, "per-call scoring work");
    }

    #[test]
    fn oracle_with_budget_covering_context_returns_all() {
        let mut s = OracleTopKSelector::new(4);
        s.observe(ObserveEvent::Prefill {
            keys: &keys_matrix(8, 4),
        });
        let plan = s.plan(SelectionRequest::new(
            &[1.0, 0.0, 0.0, 0.0],
            8,
            Budget::new(64),
        ));
        assert_eq!(plan.indices, (0..8).collect::<Vec<_>>());
        assert_eq!(
            plan.stats.scored_vectors, 0,
            "covered context is not scored"
        );
    }

    #[test]
    fn oracle_chunked_prefill_matches_monolithic() {
        let full = keys_matrix(21, 4);
        let mut mono = OracleTopKSelector::new(4);
        mono.observe(ObserveEvent::Prefill { keys: &full });
        let mut chunked = OracleTopKSelector::new(4);
        let mut start = 0;
        for len in [1usize, 7, 13] {
            let chunk =
                Matrix::from_rows((start..start + len).map(|i| full.row(i).to_vec()).collect())
                    .unwrap();
            chunked.observe(ObserveEvent::PrefillChunk {
                start,
                keys: &chunk,
            });
            start += len;
        }
        chunked.observe(ObserveEvent::PrefillDone { total_tokens: 21 });
        let q = [1.0, -0.5, 0.25, 2.0];
        let a = mono.plan(SelectionRequest::new(&q, 21, Budget::new(5)));
        let b = chunked.plan(SelectionRequest::new(&q, 21, Budget::new(5)));
        assert_eq!(a, b, "chunked prefill must reproduce monolithic state");
    }

    #[test]
    fn policy_stats_merge_accumulates() {
        let mut a = PolicyStats {
            scored_vectors: 5,
            ..Default::default()
        };
        let b = PolicyStats {
            scored_vectors: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.scored_vectors, 12);
    }

    #[test]
    fn plans_are_values_not_hidden_state() {
        // Two consecutive plans report independent per-call stats; the
        // caller, not the selector, owns aggregation.
        let mut s = OracleTopKSelector::new(4);
        s.observe(ObserveEvent::Prefill {
            keys: &keys_matrix(10, 4),
        });
        let first = s.plan(SelectionRequest::new(
            &[1.0, 0.0, 0.0, 0.0],
            10,
            Budget::new(3),
        ));
        let second = s.plan(SelectionRequest::new(
            &[1.0, 0.0, 0.0, 0.0],
            10,
            Budget::new(3),
        ));
        assert_eq!(first.stats.scored_vectors, 10);
        assert_eq!(second.stats.scored_vectors, 10);
        let mut total = PolicyStats::default();
        total.merge(&first.stats);
        total.merge(&second.stats);
        assert_eq!(total.scored_vectors, 20);
    }

    #[test]
    fn selection_plan_helpers() {
        let plan = SelectionPlan::full(4);
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        assert!(SelectionPlan::new(Vec::new()).is_empty());
    }

    #[test]
    fn selectors_are_object_safe_and_send() {
        fn assert_send<T: Send>(_: &T) {}
        let boxed: Box<dyn TokenSelector> = Box::new(FullAttentionSelector);
        assert_send(&boxed);
    }
}
