//! Single-sequence adapter over the serving engine.
//!
//! [`InferenceEngine`] keeps the original one-prompt/one-stream API
//! (`prefill` → `decode_step` → `generate`) as a thin wrapper around a
//! [`ServeEngine`] holding exactly one session. New code should target
//! [`ServeEngine`] directly — it exposes the same per-token semantics plus
//! multi-session serving via `create_session` / `decode_batch` / `release`.

use crate::config::ModelConfig;
use crate::policy::{PolicyStats, SelectorFactory};
use crate::serve::{ServeEngine, SessionId};
use crate::trace::AttentionTrace;
use crate::weights::ModelWeights;
use clusterkv_kvcache::types::Budget;
use clusterkv_kvcache::KvStore;

pub use crate::serve::{DecodeOutput, EngineError};

/// A decoder-only transformer serving a single sequence with per-head
/// KV-selection policies (adapter over [`ServeEngine`]).
pub struct InferenceEngine {
    serve: ServeEngine,
    session: SessionId,
}

impl InferenceEngine {
    /// Build an engine from a configuration, weights and a policy factory.
    /// The factory is consulted for every head of every non-dense layer;
    /// dense layers always run full attention.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] if the configuration fails
    /// [`ModelConfig::validate`].
    pub fn new(
        config: ModelConfig,
        weights: ModelWeights,
        factory: &dyn SelectorFactory,
        budget: Budget,
    ) -> Result<Self, EngineError> {
        let mut serve = ServeEngine::builder(config)
            .weights(weights)
            .budget(budget)
            .build()?;
        let session = serve.create_session_with(factory)?;
        Ok(Self { serve, session })
    }

    /// Convenience constructor that generates synthetic weights from `seed`.
    ///
    /// # Errors
    ///
    /// Same as [`InferenceEngine::new`].
    pub fn with_synthetic_weights(
        config: ModelConfig,
        seed: u64,
        factory: &dyn SelectorFactory,
        budget: Budget,
    ) -> Result<Self, EngineError> {
        let weights = ModelWeights::synthetic(&config, seed);
        Self::new(config, weights, factory, budget)
    }

    /// Model configuration in use.
    pub fn config(&self) -> &ModelConfig {
        self.serve.config()
    }

    /// Current context length (prompt + generated tokens).
    pub fn context_len(&self) -> usize {
        self.serve
            .context_len(self.session)
            .expect("adapter session is always resident")
    }

    /// KV cache budget used for selection.
    pub fn budget(&self) -> Budget {
        self.serve.budget()
    }

    /// The id of the adapter's single session.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Borrow the underlying serving engine.
    pub fn serve_engine(&self) -> &ServeEngine {
        &self.serve
    }

    /// Unwrap into the underlying serving engine and the session id, e.g. to
    /// keep decoding this sequence alongside newly created sessions.
    pub fn into_serve_engine(self) -> (ServeEngine, SessionId) {
        (self.serve, self.session)
    }

    /// Enable tracing of a specific `(layer, head)` pair. Must be called
    /// before decoding; tracing records exact attention weights, which is
    /// expensive but only for the traced heads.
    pub fn enable_trace(&mut self, layer: usize, head: usize) {
        self.serve
            .enable_trace(self.session, layer, head)
            .expect("adapter session is always resident");
    }

    /// Access a recorded trace.
    pub fn trace(&self, layer: usize, head: usize) -> Option<&AttentionTrace> {
        self.serve.trace(self.session, layer, head)
    }

    /// Access the KV store of a `(layer, kv_head)` pair (for tests and
    /// experiments).
    pub fn kv_store(&self, layer: usize, kv_head: usize) -> &KvStore {
        self.serve
            .kv_store(self.session, layer, kv_head)
            .expect("adapter session is always resident")
    }

    /// Policy statistics accumulated across every head of the session.
    pub fn policy_stats(&self) -> PolicyStats {
        self.serve
            .session_stats(self.session)
            .expect("adapter session is always resident")
    }

    /// Process the whole prompt with full causal attention, then hand each
    /// head's prefill keys to its selector. Returns the final hidden state of
    /// the last prompt token.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-vocabulary tokens, context overflow or an
    /// empty prompt.
    pub fn prefill(&mut self, prompt: &[usize]) -> Result<Vec<f32>, EngineError> {
        self.serve.prefill(self.session, prompt)
    }

    /// Run one decoding step for `token` (typically the previously generated
    /// token) and return the logits / greedy next token.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NotPrefilled`] if called before
    /// [`prefill`](Self::prefill), and propagates vocabulary / context
    /// errors.
    pub fn decode_step(&mut self, token: usize) -> Result<DecodeOutput, EngineError> {
        self.serve.decode_step(self.session, token)
    }

    /// Greedily generate `steps` tokens after the prompt, returning the
    /// generated token ids.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`prefill`](Self::prefill) or
    /// [`decode_step`](Self::decode_step).
    pub fn generate(&mut self, prompt: &[usize], steps: usize) -> Result<Vec<usize>, EngineError> {
        self.serve.generate(self.session, prompt, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FullAttentionFactory, OracleTopKFactory};

    fn tiny_engine(factory: &dyn SelectorFactory, budget: usize) -> InferenceEngine {
        InferenceEngine::with_synthetic_weights(
            ModelConfig::tiny(),
            7,
            factory,
            Budget::new(budget),
        )
        .unwrap()
    }

    #[test]
    fn prefill_populates_kv_stores() {
        let mut eng = tiny_engine(&FullAttentionFactory, 64);
        eng.prefill(&[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(eng.context_len(), 5);
        for layer in 0..eng.config().num_layers {
            for kv_head in 0..eng.config().num_kv_heads {
                assert_eq!(eng.kv_store(layer, kv_head).len(), 5);
            }
        }
    }

    #[test]
    fn decode_before_prefill_errors() {
        let mut eng = tiny_engine(&FullAttentionFactory, 64);
        assert_eq!(eng.decode_step(1).unwrap_err(), EngineError::NotPrefilled);
    }

    #[test]
    fn empty_prompt_errors() {
        let mut eng = tiny_engine(&FullAttentionFactory, 64);
        assert!(eng.prefill(&[]).is_err());
    }

    #[test]
    fn out_of_vocab_token_errors() {
        let mut eng = tiny_engine(&FullAttentionFactory, 64);
        let err = eng.prefill(&[9999]).unwrap_err();
        assert!(matches!(err, EngineError::TokenOutOfVocab { .. }));
        assert!(err.to_string().contains("9999"));
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = tiny_engine(&FullAttentionFactory, 64);
        let mut b = tiny_engine(&FullAttentionFactory, 64);
        let ga = a.generate(&[3, 14, 15, 9, 26], 6).unwrap();
        let gb = b.generate(&[3, 14, 15, 9, 26], 6).unwrap();
        assert_eq!(ga, gb);
        assert_eq!(ga.len(), 6);
        assert!(ga.iter().all(|&t| t < a.config().vocab_size));
    }

    #[test]
    fn oracle_with_large_budget_matches_full_attention() {
        // When the budget covers the whole context, top-k selection selects
        // everything and generation must match full attention exactly.
        let mut full = tiny_engine(&FullAttentionFactory, 512);
        let mut oracle = tiny_engine(&OracleTopKFactory, 512);
        let prompt = vec![5, 9, 13, 17, 21, 25];
        assert_eq!(
            full.generate(&prompt, 5).unwrap(),
            oracle.generate(&prompt, 5).unwrap()
        );
    }

    #[test]
    fn trace_records_selected_and_full_weights() {
        let mut eng = tiny_engine(&OracleTopKFactory, 3);
        eng.enable_trace(1, 0);
        eng.prefill(&[2, 4, 6, 8, 10, 12]).unwrap();
        eng.decode_step(1).unwrap();
        eng.decode_step(1).unwrap();
        let trace = eng.trace(1, 0).unwrap();
        assert_eq!(trace.len(), 2);
        // At the first decode step the context has the 6 prompt tokens plus
        // the token being generated (which always attends to itself).
        assert_eq!(trace.steps[0].full_weights.len(), 7);
        assert!(trace.steps[0].selected.contains(&6));
        assert!(trace.steps[0].selected.len() <= 4); // budget 3 + current token
    }

    #[test]
    fn dense_layers_ignore_budget() {
        let mut cfg = ModelConfig::tiny();
        cfg.dense_layers = 1;
        let weights = ModelWeights::synthetic(&cfg, 7);
        let mut eng =
            InferenceEngine::new(cfg, weights, &OracleTopKFactory, Budget::new(2)).unwrap();
        eng.enable_trace(0, 0); // dense layer
        eng.enable_trace(1, 0); // selective layer
        eng.prefill(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        eng.decode_step(1).unwrap();
        // The dense layer attends to the full context (9 tokens including
        // the current one) while the selective layer respects the budget of
        // 2 tokens plus the always-attended current token.
        assert_eq!(eng.trace(0, 0).unwrap().steps[0].selected.len(), 9);
        assert_eq!(eng.trace(1, 0).unwrap().steps[0].selected.len(), 3);
    }

    #[test]
    fn context_overflow_is_detected() {
        let mut cfg = ModelConfig::tiny();
        cfg.max_context = 4;
        let weights = ModelWeights::synthetic(&cfg, 1);
        let mut eng =
            InferenceEngine::new(cfg, weights, &FullAttentionFactory, Budget::new(16)).unwrap();
        let err = eng.prefill(&[1, 2, 3, 4, 5]).unwrap_err();
        assert!(matches!(err, EngineError::ContextOverflow { .. }));
    }

    #[test]
    fn policy_stats_aggregate_over_heads() {
        let mut eng = tiny_engine(&OracleTopKFactory, 4);
        eng.prefill(&[1, 2, 3, 4, 5, 6]).unwrap();
        eng.decode_step(2).unwrap();
        let stats = eng.policy_stats();
        assert!(stats.scored_vectors > 0);
    }

    #[test]
    fn adapter_exposes_its_serve_engine() {
        let eng = tiny_engine(&FullAttentionFactory, 64);
        let session = eng.session();
        assert_eq!(eng.serve_engine().session_ids(), vec![session]);
        let (mut serve, session) = eng.into_serve_engine();
        // The unwrapped engine keeps serving the adapter's sequence and can
        // take on more sessions.
        serve.prefill(session, &[1, 2, 3]).unwrap();
        let extra = serve.create_session_with(&FullAttentionFactory).unwrap();
        serve.prefill(extra, &[4, 5, 6]).unwrap();
        let outs = serve.decode_batch(&[session, extra]).unwrap();
        assert_eq!(outs.len(), 2);
    }
}
