//! The inference engine: prefill and decode loops with pluggable KV
//! selection.
//!
//! The engine executes a decoder-only transformer token by token. During
//! prefill every head attends to the full (causal) context and the resulting
//! keys are handed to the head's [`TokenSelector`] via `on_prefill`. During
//! decoding each non-dense layer asks its selectors for the token indices to
//! attend to, mirroring the system flow of the paper (Fig. 5).

use crate::attention::{attend_selected, full_attention_weights};
use crate::config::ModelConfig;
use crate::policy::{FullAttentionSelector, HeadContext, PolicyStats, SelectorFactory, TokenSelector};
use crate::rope::Rope;
use crate::trace::{AttentionTrace, TraceStep};
use crate::weights::ModelWeights;
use clusterkv_kvcache::types::Budget;
use clusterkv_kvcache::KvStore;
use clusterkv_tensor::ops::{rms_norm, silu};
use clusterkv_tensor::vector::argmax;
use clusterkv_tensor::Matrix;
use std::collections::HashMap;

/// Errors produced by the inference engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The model configuration failed validation.
    InvalidConfig(String),
    /// A token id was outside the vocabulary.
    TokenOutOfVocab {
        /// The offending token id.
        token: usize,
        /// The vocabulary size.
        vocab: usize,
    },
    /// The context window was exceeded.
    ContextOverflow {
        /// Requested context length.
        requested: usize,
        /// Maximum supported context length.
        max: usize,
    },
    /// Decoding was attempted before prefill.
    NotPrefilled,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidConfig(msg) => write!(f, "invalid model config: {msg}"),
            EngineError::TokenOutOfVocab { token, vocab } => {
                write!(f, "token {token} outside vocabulary of size {vocab}")
            }
            EngineError::ContextOverflow { requested, max } => {
                write!(f, "context of {requested} tokens exceeds maximum {max}")
            }
            EngineError::NotPrefilled => write!(f, "decode_step called before prefill"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Output of one decoding step.
#[derive(Debug, Clone)]
pub struct DecodeOutput {
    /// Greedily chosen next token id.
    pub next_token: usize,
    /// Logits over the vocabulary.
    pub logits: Vec<f32>,
    /// Final hidden state of the step.
    pub hidden: Vec<f32>,
}

/// A decoder-only transformer with per-head KV-selection policies.
pub struct InferenceEngine {
    config: ModelConfig,
    weights: ModelWeights,
    rope: Rope,
    budget: Budget,
    /// KV stores indexed by `[layer][kv_head]`.
    kv: Vec<Vec<KvStore>>,
    /// Selectors indexed by `[layer][query_head]`; dense layers hold
    /// [`FullAttentionSelector`]s.
    selectors: Vec<Vec<Box<dyn TokenSelector>>>,
    /// Heads to trace: map from `(layer, head)` to the trace being built.
    traces: HashMap<(usize, usize), AttentionTrace>,
    num_tokens: usize,
    prefilled: bool,
}

impl InferenceEngine {
    /// Build an engine from a configuration, synthetic weights and a policy
    /// factory. The factory is consulted for every head of every non-dense
    /// layer; dense layers always run full attention.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] if the configuration fails
    /// [`ModelConfig::validate`].
    pub fn new(
        config: ModelConfig,
        weights: ModelWeights,
        factory: &dyn SelectorFactory,
        budget: Budget,
    ) -> Result<Self, EngineError> {
        config.validate().map_err(EngineError::InvalidConfig)?;
        let rope = Rope::new(config.head_dim, 10_000.0);
        let kv = (0..config.num_layers)
            .map(|_| (0..config.num_kv_heads).map(|_| KvStore::new(config.head_dim)).collect())
            .collect();
        let selectors = (0..config.num_layers)
            .map(|layer| {
                (0..config.num_heads)
                    .map(|head| {
                        if layer < config.dense_layers {
                            Box::new(FullAttentionSelector) as Box<dyn TokenSelector>
                        } else {
                            factory.create(HeadContext {
                                layer,
                                head,
                                head_dim: config.head_dim,
                            })
                        }
                    })
                    .collect()
            })
            .collect();
        Ok(Self {
            config,
            weights,
            rope,
            budget,
            kv,
            selectors,
            traces: HashMap::new(),
            num_tokens: 0,
            prefilled: false,
        })
    }

    /// Convenience constructor that generates synthetic weights from `seed`.
    ///
    /// # Errors
    ///
    /// Same as [`InferenceEngine::new`].
    pub fn with_synthetic_weights(
        config: ModelConfig,
        seed: u64,
        factory: &dyn SelectorFactory,
        budget: Budget,
    ) -> Result<Self, EngineError> {
        let weights = ModelWeights::synthetic(&config, seed);
        Self::new(config, weights, factory, budget)
    }

    /// Model configuration in use.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Current context length (prompt + generated tokens).
    pub fn context_len(&self) -> usize {
        self.num_tokens
    }

    /// KV cache budget used for selection.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Enable tracing of a specific `(layer, head)` pair. Must be called
    /// before decoding; tracing records exact attention weights, which is
    /// expensive but only for the traced heads.
    pub fn enable_trace(&mut self, layer: usize, head: usize) {
        self.traces.insert((layer, head), AttentionTrace::new(layer, head));
    }

    /// Access a recorded trace.
    pub fn trace(&self, layer: usize, head: usize) -> Option<&AttentionTrace> {
        self.traces.get(&(layer, head))
    }

    /// Access the KV store of a `(layer, kv_head)` pair (for tests and
    /// experiments).
    pub fn kv_store(&self, layer: usize, kv_head: usize) -> &KvStore {
        &self.kv[layer][kv_head]
    }

    /// Aggregate policy statistics across every head.
    pub fn policy_stats(&self) -> PolicyStats {
        let mut total = PolicyStats::default();
        for layer in &self.selectors {
            for sel in layer {
                total.merge(&sel.stats());
            }
        }
        total
    }

    fn embed(&self, token: usize) -> Result<Vec<f32>, EngineError> {
        if token >= self.config.vocab_size {
            return Err(EngineError::TokenOutOfVocab {
                token,
                vocab: self.config.vocab_size,
            });
        }
        Ok(self.weights.embedding.row(token).to_vec())
    }

    fn kv_head_of(&self, query_head: usize) -> usize {
        query_head / (self.config.num_heads / self.config.num_kv_heads)
    }

    /// Project a hidden vector through the per-head slice of a projection
    /// matrix `w` (whose rows are output channels).
    fn project_head(w: &Matrix, hidden: &[f32], head: usize, head_dim: usize) -> Vec<f32> {
        (0..head_dim)
            .map(|d| clusterkv_tensor::vector::dot(w.row(head * head_dim + d), hidden))
            .collect()
    }

    /// Run one token through the transformer. `use_selection` is false during
    /// prefill (full causal attention) and true during decoding.
    fn forward_token(&mut self, token: usize, use_selection: bool) -> Result<Vec<f32>, EngineError> {
        let position = self.num_tokens;
        if position >= self.config.max_context {
            return Err(EngineError::ContextOverflow {
                requested: position + 1,
                max: self.config.max_context,
            });
        }
        let mut x = self.embed(token)?;
        let head_dim = self.config.head_dim;
        let num_heads = self.config.num_heads;
        let num_kv_heads = self.config.num_kv_heads;

        for layer in 0..self.config.num_layers {
            let lw = &self.weights.layers[layer];
            let h = rms_norm(&x, &lw.attn_norm, 1e-6);

            // KV projections for this layer (one per KV head), RoPE on keys.
            for kv_head in 0..num_kv_heads {
                let mut k = Self::project_head(&lw.wk, &h, kv_head, head_dim);
                let v = Self::project_head(&lw.wv, &h, kv_head, head_dim);
                self.rope.apply(&mut k, position);
                self.kv[layer][kv_head].append(&k, &v);
            }

            // Attention per query head.
            let mut attn_concat = vec![0.0f32; num_heads * head_dim];
            for head in 0..num_heads {
                let mut q = Self::project_head(&lw.wq, &h, head, head_dim);
                self.rope.apply(&mut q, position);
                let kv_head = self.kv_head_of(head);
                let store = &self.kv[layer][kv_head];
                let n = store.len();

                let selected: Vec<usize> = if use_selection {
                    let mut sel = self.selectors[layer][head].select(&q, n, self.budget);
                    // The token being generated always attends to itself: its
                    // KV was just produced on the GPU and is not subject to
                    // selection (policies may not even have observed it yet).
                    if !sel.contains(&position) {
                        sel.push(position);
                    }
                    sel
                } else {
                    (0..n).collect()
                };
                let out = attend_selected(store, &q, &selected);

                if use_selection {
                    if let Some(trace) = self.traces.get_mut(&(layer, head)) {
                        trace.push(TraceStep {
                            position,
                            full_weights: full_attention_weights(store, &q),
                            selected: selected.clone(),
                        });
                    }
                }
                attn_concat[head * head_dim..(head + 1) * head_dim].copy_from_slice(&out.output);
            }

            // Output projection and residual.
            let attn_out: Vec<f32> = (0..self.config.hidden_dim())
                .map(|d| clusterkv_tensor::vector::dot(lw.wo.row(d), &attn_concat))
                .collect();
            for (xi, ai) in x.iter_mut().zip(&attn_out) {
                *xi += ai;
            }

            // FFN with SiLU gating and residual.
            let h2 = rms_norm(&x, &lw.ffn_norm, 1e-6);
            let gate: Vec<f32> = (0..self.config.ffn_dim)
                .map(|d| silu(clusterkv_tensor::vector::dot(lw.w_gate.row(d), &h2)))
                .collect();
            let up: Vec<f32> = (0..self.config.ffn_dim)
                .map(|d| clusterkv_tensor::vector::dot(lw.w_up.row(d), &h2))
                .collect();
            let gated: Vec<f32> = gate.iter().zip(&up).map(|(g, u)| g * u).collect();
            for d in 0..self.config.hidden_dim() {
                x[d] += clusterkv_tensor::vector::dot(lw.w_down.row(d), &gated);
            }
        }

        self.num_tokens += 1;
        Ok(rms_norm(&x, &self.weights.final_norm, 1e-6))
    }

    /// Process the whole prompt with full causal attention, then hand each
    /// head's prefill keys to its selector. Returns the final hidden state of
    /// the last prompt token.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-vocabulary tokens, context overflow or an
    /// empty prompt.
    pub fn prefill(&mut self, prompt: &[usize]) -> Result<Vec<f32>, EngineError> {
        if prompt.is_empty() {
            return Err(EngineError::InvalidConfig("prompt must not be empty".into()));
        }
        let mut last = Vec::new();
        for &token in prompt {
            last = self.forward_token(token, false)?;
        }
        // Notify selectors of the prefill keys (per query head, using the
        // keys of the associated KV head) — this is where semantic
        // clustering runs in ClusterKV (Fig. 5, step 1).
        for layer in self.config.dense_layers..self.config.num_layers {
            for head in 0..self.config.num_heads {
                let kv_head = self.kv_head_of(head);
                let keys = self.kv[layer][kv_head].keys().clone();
                self.selectors[layer][head].on_prefill(&keys);
            }
        }
        self.prefilled = true;
        Ok(last)
    }

    /// Run one decoding step for `token` (typically the previously generated
    /// token) and return the logits / greedy next token.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NotPrefilled`] if called before
    /// [`prefill`](Self::prefill), and propagates vocabulary / context
    /// errors.
    pub fn decode_step(&mut self, token: usize) -> Result<DecodeOutput, EngineError> {
        if !self.prefilled {
            return Err(EngineError::NotPrefilled);
        }
        let position = self.num_tokens;
        let hidden = self.forward_token(token, true)?;

        // Notify selectors of the new keys appended at `position`.
        for layer in self.config.dense_layers..self.config.num_layers {
            for head in 0..self.config.num_heads {
                let kv_head = self.kv_head_of(head);
                let key = self.kv[layer][kv_head].key(position).to_vec();
                self.selectors[layer][head].on_append(position, &key);
            }
        }

        // Tied-embedding logits.
        let logits: Vec<f32> = (0..self.config.vocab_size)
            .map(|t| clusterkv_tensor::vector::dot(self.weights.embedding.row(t), &hidden))
            .collect();
        let next_token = argmax(&logits).unwrap_or(0);
        Ok(DecodeOutput {
            next_token,
            logits,
            hidden,
        })
    }

    /// Greedily generate `steps` tokens after the prompt, returning the
    /// generated token ids.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`prefill`](Self::prefill) or
    /// [`decode_step`](Self::decode_step).
    pub fn generate(&mut self, prompt: &[usize], steps: usize) -> Result<Vec<usize>, EngineError> {
        self.prefill(prompt)?;
        let mut out = Vec::with_capacity(steps);
        let mut token = *prompt.last().expect("prompt checked non-empty");
        for _ in 0..steps {
            let step = self.decode_step(token)?;
            token = step.next_token;
            out.push(token);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FullAttentionFactory, OracleTopKFactory};

    fn tiny_engine(factory: &dyn SelectorFactory, budget: usize) -> InferenceEngine {
        InferenceEngine::with_synthetic_weights(
            ModelConfig::tiny(),
            7,
            factory,
            Budget::new(budget),
        )
        .unwrap()
    }

    #[test]
    fn prefill_populates_kv_stores() {
        let mut eng = tiny_engine(&FullAttentionFactory, 64);
        eng.prefill(&[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(eng.context_len(), 5);
        for layer in 0..eng.config().num_layers {
            for kv_head in 0..eng.config().num_kv_heads {
                assert_eq!(eng.kv_store(layer, kv_head).len(), 5);
            }
        }
    }

    #[test]
    fn decode_before_prefill_errors() {
        let mut eng = tiny_engine(&FullAttentionFactory, 64);
        assert_eq!(eng.decode_step(1).unwrap_err(), EngineError::NotPrefilled);
    }

    #[test]
    fn empty_prompt_errors() {
        let mut eng = tiny_engine(&FullAttentionFactory, 64);
        assert!(eng.prefill(&[]).is_err());
    }

    #[test]
    fn out_of_vocab_token_errors() {
        let mut eng = tiny_engine(&FullAttentionFactory, 64);
        let err = eng.prefill(&[9999]).unwrap_err();
        assert!(matches!(err, EngineError::TokenOutOfVocab { .. }));
        assert!(err.to_string().contains("9999"));
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = tiny_engine(&FullAttentionFactory, 64);
        let mut b = tiny_engine(&FullAttentionFactory, 64);
        let ga = a.generate(&[3, 14, 15, 9, 26], 6).unwrap();
        let gb = b.generate(&[3, 14, 15, 9, 26], 6).unwrap();
        assert_eq!(ga, gb);
        assert_eq!(ga.len(), 6);
        assert!(ga.iter().all(|&t| t < a.config().vocab_size));
    }

    #[test]
    fn oracle_with_large_budget_matches_full_attention() {
        // When the budget covers the whole context, top-k selection selects
        // everything and generation must match full attention exactly.
        let mut full = tiny_engine(&FullAttentionFactory, 512);
        let mut oracle = tiny_engine(&OracleTopKFactory, 512);
        let prompt = vec![5, 9, 13, 17, 21, 25];
        assert_eq!(
            full.generate(&prompt, 5).unwrap(),
            oracle.generate(&prompt, 5).unwrap()
        );
    }

    #[test]
    fn trace_records_selected_and_full_weights() {
        let mut eng = tiny_engine(&OracleTopKFactory, 3);
        eng.enable_trace(1, 0);
        eng.prefill(&[2, 4, 6, 8, 10, 12]).unwrap();
        eng.decode_step(1).unwrap();
        eng.decode_step(1).unwrap();
        let trace = eng.trace(1, 0).unwrap();
        assert_eq!(trace.len(), 2);
        // At the first decode step the context has the 6 prompt tokens plus
        // the token being generated (which always attends to itself).
        assert_eq!(trace.steps[0].full_weights.len(), 7);
        assert!(trace.steps[0].selected.contains(&6));
        assert!(trace.steps[0].selected.len() <= 4); // budget 3 + current token
    }

    #[test]
    fn dense_layers_ignore_budget() {
        let mut cfg = ModelConfig::tiny();
        cfg.dense_layers = 1;
        let weights = ModelWeights::synthetic(&cfg, 7);
        let mut eng =
            InferenceEngine::new(cfg, weights, &OracleTopKFactory, Budget::new(2)).unwrap();
        eng.enable_trace(0, 0); // dense layer
        eng.enable_trace(1, 0); // selective layer
        eng.prefill(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        eng.decode_step(1).unwrap();
        // The dense layer attends to the full context (9 tokens including
        // the current one) while the selective layer respects the budget of
        // 2 tokens plus the always-attended current token.
        assert_eq!(eng.trace(0, 0).unwrap().steps[0].selected.len(), 9);
        assert_eq!(eng.trace(1, 0).unwrap().steps[0].selected.len(), 3);
    }

    #[test]
    fn context_overflow_is_detected() {
        let mut cfg = ModelConfig::tiny();
        cfg.max_context = 4;
        let weights = ModelWeights::synthetic(&cfg, 1);
        let mut eng =
            InferenceEngine::new(cfg, weights, &FullAttentionFactory, Budget::new(16)).unwrap();
        let err = eng.prefill(&[1, 2, 3, 4, 5]).unwrap_err();
        assert!(matches!(err, EngineError::ContextOverflow { .. }));
    }

    #[test]
    fn policy_stats_aggregate_over_heads() {
        let mut eng = tiny_engine(&OracleTopKFactory, 4);
        eng.prefill(&[1, 2, 3, 4, 5, 6]).unwrap();
        eng.decode_step(2).unwrap();
        let stats = eng.policy_stats();
        assert!(stats.scored_vectors > 0);
    }
}
