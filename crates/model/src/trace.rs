//! Recording of attention behaviour during decoding.
//!
//! Traces capture, for chosen heads, the *full* attention weights at every
//! decoding step together with the indices the active selection policy chose.
//! They power the motivation study of Fig. 3a (token importance drifts across
//! steps) and the recall-rate metric of Fig. 11 (how many of the true top-`B`
//! tokens the policy recalled).

use serde::{Deserialize, Serialize};

/// One decoding step of a traced head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceStep {
    /// Absolute position of the token being generated.
    pub position: usize,
    /// Exact attention weights over all previous tokens (length = position).
    pub full_weights: Vec<f32>,
    /// Token indices the policy selected for this step.
    pub selected: Vec<usize>,
}

impl TraceStep {
    /// Importance ranking of every token: `ranking[i]` is the rank (0 = most
    /// important) of token `i` under the full attention weights.
    pub fn importance_ranking(&self) -> Vec<usize> {
        let order = clusterkv_tensor::vector::argsort_descending(&self.full_weights);
        let mut ranking = vec![0usize; self.full_weights.len()];
        for (rank, &token) in order.iter().enumerate() {
            ranking[token] = rank;
        }
        ranking
    }

    /// Indices of the true top-`k` tokens by attention weight.
    pub fn true_top_k(&self, k: usize) -> Vec<usize> {
        clusterkv_tensor::vector::top_k_indices(&self.full_weights, k)
    }

    /// Recall of the selected set against the true top-`k` set:
    /// `|selected ∩ top_k| / k` (the paper's recall-rate definition with
    /// `|I_T| = |I_T^true| = B`).
    pub fn recall_at(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let truth = self.true_top_k(k);
        let selected: std::collections::BTreeSet<usize> = self.selected.iter().copied().collect();
        let hit = truth.iter().filter(|t| selected.contains(t)).count();
        hit as f64 / truth.len() as f64
    }
}

/// Trace of a single attention head across decoding steps.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AttentionTrace {
    /// Layer of the traced head.
    pub layer: usize,
    /// Head index of the traced head.
    pub head: usize,
    /// Recorded steps, in decoding order.
    pub steps: Vec<TraceStep>,
}

impl AttentionTrace {
    /// Create an empty trace for the given head.
    pub fn new(layer: usize, head: usize) -> Self {
        Self {
            layer,
            head,
            steps: Vec::new(),
        }
    }

    /// Append a step record.
    pub fn push(&mut self, step: TraceStep) {
        self.steps.push(step);
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Importance-rank trajectory of a single token across all recorded
    /// steps (Fig. 3a plots these trajectories for a few tokens). Steps where
    /// the token did not yet exist are skipped.
    pub fn ranking_trajectory(&self, token: usize) -> Vec<(usize, usize)> {
        self.steps
            .iter()
            .filter(|s| token < s.full_weights.len())
            .map(|s| (s.position, s.importance_ranking()[token]))
            .collect()
    }

    /// Mean recall over all steps at budget `k`.
    pub fn mean_recall_at(&self, k: usize) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.recall_at(k)).sum::<f64>() / self.steps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(weights: Vec<f32>, selected: Vec<usize>) -> TraceStep {
        TraceStep {
            position: weights.len(),
            full_weights: weights,
            selected,
        }
    }

    #[test]
    fn importance_ranking_orders_by_weight() {
        let s = step(vec![0.1, 0.6, 0.3], vec![]);
        assert_eq!(s.importance_ranking(), vec![2, 0, 1]);
        assert_eq!(s.true_top_k(2), vec![1, 2]);
    }

    #[test]
    fn recall_counts_intersection() {
        let s = step(vec![0.4, 0.3, 0.2, 0.1], vec![0, 2]);
        // true top-2 = {0, 1}; selected = {0, 2} => recall 1/2.
        assert!((s.recall_at(2) - 0.5).abs() < 1e-9);
        assert_eq!(s.recall_at(0), 0.0);
        // Full selection always has recall 1.
        let s2 = step(vec![0.4, 0.3, 0.2, 0.1], vec![0, 1, 2, 3]);
        assert!((s2.recall_at(3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trajectory_skips_steps_before_token_existed() {
        let mut trace = AttentionTrace::new(0, 1);
        trace.push(step(vec![0.5, 0.5], vec![]));
        trace.push(step(vec![0.2, 0.3, 0.5], vec![]));
        let traj = trace.ranking_trajectory(2);
        assert_eq!(traj.len(), 1);
        assert_eq!(traj[0], (3, 0)); // token 2 is most important at step 2
        assert_eq!(trace.ranking_trajectory(0).len(), 2);
    }

    #[test]
    fn mean_recall_averages_steps() {
        let mut trace = AttentionTrace::new(0, 0);
        assert_eq!(trace.mean_recall_at(2), 0.0);
        trace.push(step(vec![0.9, 0.05, 0.05], vec![0, 1]));
        trace.push(step(vec![0.1, 0.1, 0.8], vec![0, 1]));
        // Step 1: top-2 = {0,1}, selected {0,1} => 1.0
        // Step 2: top-2 = {2,0} (or {2,1}) => selected hits 1 of 2 => 0.5
        let m = trace.mean_recall_at(2);
        assert!((m - 0.75).abs() < 1e-9, "mean recall {m}");
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
    }
}
