//! Analytical latency and throughput model.
//!
//! Reproduces the efficiency experiments of the paper (Fig. 12, Fig. 13 and
//! the prefill-overhead analysis of §V-C) without a GPU. The model follows a
//! roofline formulation on top of [`DeviceModel`]:
//!
//! * **Prefill** is compute-bound: `2 · params · L` FLOPs for the projections
//!   plus the quadratic attention term.
//! * **Decoding** is memory-bound: every step streams the model weights and
//!   the *attended* portion of the KV cache from GPU memory, pays the
//!   selection cost of the active policy (scoring centroids, page metadata or
//!   partial keys), and pays PCIe transfer for any KV that has to be recalled
//!   from CPU memory.
//!
//! Policies are described to the model with a [`StepCost`] — a small,
//! policy-agnostic descriptor — so the same pricing applies uniformly to
//! ClusterKV and every baseline.

use crate::config::ModelConfig;
use clusterkv_kvcache::device::{DeviceModel, Seconds};
use clusterkv_kvcache::types::Bytes;
use serde::{Deserialize, Serialize};

/// Per-decoding-step cost descriptor of a selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepCost {
    /// Number of `head_dim`-dimensional vectors scored against the query per
    /// selective-layer head (centroids for ClusterKV, pages for Quest,
    /// partial keys for InfiniGen, previous tokens for exact top-k).
    pub scored_vectors_per_head: f64,
    /// Tokens whose K/V are read for attention per selective-layer head
    /// (the budget `B`, or the full context for dense layers / Full KV).
    pub attended_tokens: f64,
    /// Tokens fetched from CPU memory over PCIe per selective-layer head per
    /// step (cache misses for ClusterKV; zero for policies whose KV stays in
    /// GPU memory). Priced at the exact f16 byte cost per token.
    pub transferred_tokens_per_head: f64,
    /// Bytes fetched over PCIe for recall-compressed pages this step,
    /// totalled across every selective-layer head (DESIGN.md §9). Tracked
    /// in bytes, not tokens: the cluster cache reports the exact quantized
    /// byte count of each compressed recall, so no per-head per-token
    /// reconstruction is needed — or possible, since pages at different
    /// quantization widths move different bytes per token.
    pub transferred_compressed_bytes: f64,
    /// Bytes moved by speculative *staged* transfers this step, totalled
    /// across every selective-layer head (DESIGN.md §10). Staged transfers
    /// run asynchronously and overlap compute, so the decode step is priced
    /// `max(compute, staged) + demand` rather than a pure sum. `0.0` (the
    /// default when prefetch is off) reduces the clock bit-for-bit to the
    /// pure-sum form.
    pub staged_transfer_bytes: f64,
    /// Bytes re-transmitted by faulted demand transfers this step, totalled
    /// across every selective-layer head (DESIGN.md §11). Each retry moves
    /// the same bytes again and is priced as demand transfer — retries
    /// change *when* and *for how long*, never what attends. `0.0` (the
    /// default when fault injection is off) keeps the clock bit-identical
    /// to the fault-free form (`transfer_time(0) = 0` exactly).
    pub retried_transfer_bytes: f64,
    /// Exponential-backoff wait charged by retried transfers this step, in
    /// seconds on the modeled clock (DESIGN.md §11). `0.0` when fault
    /// injection is off.
    pub retry_backoff_seconds: f64,
}

impl StepCost {
    /// Cost of full-KV attention with the cache resident in GPU memory.
    pub fn full_kv(context_len: usize) -> Self {
        Self {
            scored_vectors_per_head: 0.0,
            attended_tokens: context_len as f64,
            transferred_tokens_per_head: 0.0,
            transferred_compressed_bytes: 0.0,
            staged_transfer_bytes: 0.0,
            retried_transfer_bytes: 0.0,
            retry_backoff_seconds: 0.0,
        }
    }

    /// Map the totals one decode step actually accumulated across every
    /// selective-layer head (vectors scored, tokens attended, tokens
    /// recalled on cluster-cache misses) onto the per-head descriptor the
    /// pricing formulas expect. This is how the serving engine charges PCIe
    /// recall for real misses instead of a uniform assumed rate.
    ///
    /// Residency (and therefore `transferred`) is tracked at query-head
    /// granularity, so the per-KV-head division reconstructs the same total
    /// bytes the cache recorded.
    pub fn from_step_totals(
        config: &ModelConfig,
        scored: u64,
        attended: u64,
        transferred: u64,
        compressed_bytes: u64,
        staged_bytes: u64,
    ) -> Self {
        let selective = (config.num_layers - config.dense_layers) as f64;
        if selective == 0.0 {
            return Self {
                scored_vectors_per_head: 0.0,
                attended_tokens: 0.0,
                transferred_tokens_per_head: 0.0,
                transferred_compressed_bytes: 0.0,
                staged_transfer_bytes: 0.0,
                retried_transfer_bytes: 0.0,
                retry_backoff_seconds: 0.0,
            };
        }
        Self {
            scored_vectors_per_head: scored as f64 / (selective * config.num_heads as f64),
            attended_tokens: attended as f64 / (selective * config.num_heads as f64),
            transferred_tokens_per_head: transferred as f64
                / (selective * config.num_kv_heads as f64),
            // Already step-level totals in exact bytes — no per-head
            // reconstruction round-trip.
            transferred_compressed_bytes: compressed_bytes as f64,
            staged_transfer_bytes: staged_bytes as f64,
            retried_transfer_bytes: 0.0,
            retry_backoff_seconds: 0.0,
        }
    }

    /// Charge retried-transfer traffic and its backoff wait to this step
    /// (DESIGN.md §11). Builder-style so existing call sites stay untouched
    /// when fault injection is off.
    pub fn with_retries(mut self, retried_bytes: u64, backoff_seconds: f64) -> Self {
        self.retried_transfer_bytes = retried_bytes as f64;
        self.retry_backoff_seconds = backoff_seconds;
        self
    }
}

/// One decode step under the overlap-aware roofline clock (DESIGN.md §10),
/// split into its three terms: on-GPU compute, staged (asynchronous,
/// overlapped) PCIe transfer, and demand (synchronous) PCIe transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodeStepBreakdown {
    /// On-GPU compute: weight streaming + attention KV reads + selection.
    pub gpu: Seconds,
    /// PCIe time of staged transfers, overlapped with this step's compute.
    pub staged: Seconds,
    /// PCIe time of demand transfers (synchronous recall on misses).
    pub demand: Seconds,
    /// Step time `max(gpu, staged) + demand`: staged transfers hide behind
    /// compute (or vice versa), demand recalls stay on the critical path.
    pub total: Seconds,
}

impl DecodeStepBreakdown {
    /// Transfer time hidden behind compute by the overlap — what a pure-sum
    /// clock would have added on top: `min(gpu, staged)`.
    pub fn hidden(&self) -> Seconds {
        Seconds(self.gpu.get().min(self.staged.get()))
    }
}

/// Prefill latency split into base model time and clustering overhead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefillBreakdown {
    /// Prefill time of the model itself.
    pub base: Seconds,
    /// Semantic-clustering time added by ClusterKV (zero for baselines).
    pub clustering: Seconds,
    /// Total prefill time. Clustering is launched asynchronously and
    /// overlapped with attention/FFN of the current layer and the QKV
    /// projection of the next (Fig. 6), so only the non-overlapped fraction
    /// is added to the critical path.
    pub total: Seconds,
}

impl PrefillBreakdown {
    /// Clustering overhead as a fraction of base prefill time.
    pub fn clustering_fraction(&self) -> f64 {
        if self.base.get() == 0.0 {
            0.0
        } else {
            self.clustering.get() / self.base.get()
        }
    }
}

/// End-to-end inference latency summary for one (prompt, decode) setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceBreakdown {
    /// Prefill breakdown.
    pub prefill: PrefillBreakdown,
    /// Total decoding time across all generated tokens.
    pub decode: Seconds,
    /// End-to-end latency (prefill + decode).
    pub total: Seconds,
    /// Decoding throughput in tokens per second.
    pub decode_throughput: f64,
}

/// Fraction of the clustering work that cannot be hidden behind other
/// kernels (the paper reports clustering at 6–8 % of prefill after overlap).
const CLUSTERING_EXPOSED_FRACTION: f64 = 0.6;

/// Analytical latency model for a model configuration on a device.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    config: ModelConfig,
    device: DeviceModel,
}

impl LatencyModel {
    /// Create a latency model.
    pub fn new(config: ModelConfig, device: DeviceModel) -> Self {
        Self { config, device }
    }

    /// Model configuration being priced.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Device parameters being used.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Prefill latency for a prompt of `prompt_len` tokens (compute bound,
    /// plus one full pass over the weights).
    pub fn prefill(&self, prompt_len: usize) -> Seconds {
        let params = self.config.approx_params() as f64;
        let proj_flops = 2.0 * params * prompt_len as f64;
        // Causal attention: ~2 * layers * heads * head_dim * L^2 / 2 MACs
        // for QK^T plus the same for weights*V => 2x.
        let l = prompt_len as f64;
        let attn_flops = 2.0
            * self.config.num_layers as f64
            * self.config.num_heads as f64
            * self.config.head_dim as f64
            * l
            * l;
        let weight_bytes = Bytes::of_f16(self.config.approx_params() as usize);
        self.device
            .roofline_time(weight_bytes, proj_flops + attn_flops)
    }

    /// Raw (un-overlapped) cost of semantic clustering after prefill:
    /// `iterations · C0 · L · d` multiply-accumulates per KV head per layer
    /// (the paper's Concern 1, §III-D).
    pub fn clustering_cost(
        &self,
        prompt_len: usize,
        clusters: usize,
        iterations: usize,
    ) -> Seconds {
        let flops = 2.0
            * self.config.num_layers as f64
            * self.config.num_kv_heads as f64
            * iterations as f64
            * clusters as f64
            * prompt_len as f64
            * self.config.head_dim as f64;
        let key_bytes = Bytes::of_f16(
            self.config.num_layers
                * self.config.num_kv_heads
                * prompt_len
                * self.config.head_dim
                * iterations,
        );
        self.device.roofline_time(key_bytes, flops)
    }

    /// Prefill breakdown including (optionally) clustering overhead.
    pub fn prefill_breakdown(
        &self,
        prompt_len: usize,
        clustering: Option<(usize, usize)>,
    ) -> PrefillBreakdown {
        let base = self.prefill(prompt_len);
        let clustering = match clustering {
            Some((clusters, iterations)) => self.clustering_cost(prompt_len, clusters, iterations),
            None => Seconds::zero(),
        };
        let total = base + clustering * CLUSTERING_EXPOSED_FRACTION;
        PrefillBreakdown {
            base,
            clustering,
            total,
        }
    }

    /// Latency of a single decoding step with `context_len` tokens of
    /// context under the given policy cost descriptor.
    pub fn decode_step(&self, context_len: usize, cost: &StepCost) -> Seconds {
        self.decode_step_breakdown(context_len, cost).total
    }

    /// [`decode_step`](Self::decode_step) split into its overlap-clock
    /// terms. With `staged_transfer_bytes == 0` the staged term is exactly
    /// zero and `total` is bit-identical to the pure-sum clock
    /// `gpu + demand` (`max(gpu, 0) = gpu` under IEEE-754 for the
    /// non-negative roofline times).
    pub fn decode_step_breakdown(
        &self,
        context_len: usize,
        cost: &StepCost,
    ) -> DecodeStepBreakdown {
        let cfg = &self.config;
        let dense = cfg.dense_layers as f64;
        let selective = (cfg.num_layers - cfg.dense_layers) as f64;
        let kv_bytes_per_token_per_layer = (2 * 2 * cfg.num_kv_heads * cfg.head_dim) as f64;

        // Dense projections / FFN: stream the model weights once per step.
        let weight_bytes = Bytes(2 * cfg.approx_params());
        let proj_flops = 2.0 * cfg.approx_params() as f64;
        let weight_time = self.device.roofline_time(weight_bytes, proj_flops);

        // Attention over the KV cache: dense layers read the whole context,
        // selective layers read only the attended (budgeted) tokens. These
        // reads go through the attention kernel and are priced at its lower
        // effective bandwidth.
        let dense_kv_bytes = dense * context_len as f64 * kv_bytes_per_token_per_layer;
        let selective_kv_bytes = selective * cost.attended_tokens * kv_bytes_per_token_per_layer;
        let kv_time = self
            .device
            .attention_read_time(Bytes((dense_kv_bytes + selective_kv_bytes) as u64));

        // Selection: score centroids / page representations / partial keys
        // against the query (one pass per head of every selective layer).
        let selection_bytes = selective
            * cfg.num_heads as f64
            * cost.scored_vectors_per_head
            * cfg.head_dim as f64
            * 2.0;
        let select_flops = 2.0
            * selective
            * cfg.num_heads as f64
            * cost.scored_vectors_per_head
            * cfg.head_dim as f64;
        let selection_time = self
            .device
            .roofline_time(Bytes(selection_bytes as u64), select_flops);

        let gpu_time = weight_time + kv_time + selection_time;

        // PCIe transfer of recalled KV (per selective layer, per KV head),
        // plus compressed-page recalls at their exact quantized byte count.
        // These are *demand* transfers: the step blocks on them.
        let transfer_bytes = selective
            * cfg.num_kv_heads as f64
            * cost.transferred_tokens_per_head
            * (2 * 2 * cfg.head_dim) as f64
            + cost.transferred_compressed_bytes;
        // Retried transfers re-move their bytes on demand and then wait out
        // the exponential backoff; both land on the critical path. With no
        // faults both terms are exactly zero (`transfer_time(0) = 0`,
        // `Seconds(0.0)`), so adding them preserves bit-identity.
        let demand = self.device.transfer_time(Bytes(transfer_bytes as u64))
            + self
                .device
                .transfer_time(Bytes(cost.retried_transfer_bytes as u64))
            + Seconds(cost.retry_backoff_seconds);

        // Staged transfers run asynchronously on the copy engine and
        // overlap this step's compute: only the excess beyond the compute
        // time is exposed (DESIGN.md §10).
        let staged = self
            .device
            .transfer_time(Bytes(cost.staged_transfer_bytes as u64));

        DecodeStepBreakdown {
            gpu: gpu_time,
            staged,
            demand,
            total: Seconds(gpu_time.get().max(staged.get())) + demand,
        }
    }

    /// End-to-end latency for `prompt_len` prompt tokens followed by
    /// `decode_len` generated tokens, where `cost_at(step_context_len)`
    /// describes the policy's per-step cost at a given context length.
    pub fn run<F>(
        &self,
        prompt_len: usize,
        decode_len: usize,
        clustering: Option<(usize, usize)>,
        mut cost_at: F,
    ) -> InferenceBreakdown
    where
        F: FnMut(usize) -> StepCost,
    {
        let prefill = self.prefill_breakdown(prompt_len, clustering);
        let mut decode = Seconds::zero();
        for step in 0..decode_len {
            let context_len = prompt_len + step;
            decode += self.decode_step(context_len, &cost_at(context_len));
        }
        let total = prefill.total + decode;
        let decode_throughput = if decode.get() > 0.0 {
            decode_len as f64 / decode.get()
        } else {
            0.0
        };
        InferenceBreakdown {
            prefill,
            decode,
            total,
            decode_throughput,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelPreset;

    fn llama_model() -> LatencyModel {
        LatencyModel::new(ModelPreset::Llama31_8b.config(), DeviceModel::ada6000())
    }

    #[test]
    fn decode_step_is_cheaper_with_smaller_budget() {
        let m = llama_model();
        let full = m.decode_step(32_000, &StepCost::full_kv(32_000));
        let b1024 = m.decode_step(
            32_000,
            &StepCost {
                scored_vectors_per_head: 400.0,
                attended_tokens: 1024.0,
                transferred_tokens_per_head: 300.0,
                transferred_compressed_bytes: 0.0,
                staged_transfer_bytes: 0.0,
                retried_transfer_bytes: 0.0,
                retry_backoff_seconds: 0.0,
            },
        );
        assert!(
            b1024 < full,
            "budgeted step {b1024} should beat full {full}"
        );
    }

    #[test]
    fn full_kv_decode_scales_with_context() {
        let m = llama_model();
        let t8k = m.decode_step(8_000, &StepCost::full_kv(8_000));
        let t32k = m.decode_step(32_000, &StepCost::full_kv(32_000));
        // KV reads grow 4x; weights stay constant, so the step grows
        // substantially but sub-linearly.
        assert!(t32k.get() > 1.5 * t8k.get(), "{} vs {}", t32k, t8k);
        assert!(t32k.get() < 4.0 * t8k.get());
    }

    #[test]
    fn budgeted_decode_is_nearly_flat_in_context() {
        let m = llama_model();
        let cost = StepCost {
            scored_vectors_per_head: 400.0,
            attended_tokens: 1024.0,
            transferred_tokens_per_head: 300.0,
            transferred_compressed_bytes: 0.0,
            staged_transfer_bytes: 0.0,
            retried_transfer_bytes: 0.0,
            retry_backoff_seconds: 0.0,
        };
        let t8k = m.decode_step(8_000, &cost);
        let t32k = m.decode_step(32_000, &cost);
        // Only the dense layers scale with context, so growth is modest.
        assert!(t32k.get() < 1.6 * t8k.get());
    }

    #[test]
    fn prefill_grows_with_prompt_length() {
        let m = llama_model();
        assert!(m.prefill(32_000) > m.prefill(8_000));
    }

    #[test]
    fn clustering_overhead_is_single_digit_percent_of_prefill() {
        // The paper reports clustering at 6-8% of prefill for a 32k prompt
        // with C0 = L/80 clusters.
        let m = llama_model();
        let bd = m.prefill_breakdown(32_000, Some((400, 10)));
        let frac = bd.clustering_fraction();
        assert!(frac > 0.005 && frac < 0.20, "clustering fraction {frac}");
        assert!(bd.total.get() >= bd.base.get());
    }

    #[test]
    fn speedup_at_32k_context_is_around_2x() {
        // Headline claim: up to 2x latency speedup at P=32k, D=1024 with a
        // 1024-token budget. The analytical model should land in a broadly
        // similar range (1.3x..4x) — the shape check, not the exact number.
        let m = llama_model();
        let p = 32_000;
        let d = 1024;
        let full = m.run(p, d, None, StepCost::full_kv);
        let clusterkv = m.run(p, d, Some((p / 80, 10)), |ctx| StepCost {
            scored_vectors_per_head: (ctx / 80) as f64,
            attended_tokens: 1024.0,
            transferred_tokens_per_head: 0.37 * 1024.0,
            transferred_compressed_bytes: 0.0,
            staged_transfer_bytes: 0.0,
            retried_transfer_bytes: 0.0,
            retry_backoff_seconds: 0.0,
        });
        let speedup = full.total.get() / clusterkv.total.get();
        assert!(speedup > 1.3 && speedup < 4.0, "speedup {speedup}");
        assert!(clusterkv.decode_throughput > full.decode_throughput);
    }

    #[test]
    fn run_accumulates_prefill_and_decode() {
        let m = llama_model();
        let r = m.run(1000, 10, None, StepCost::full_kv);
        assert!(r.total.get() > r.prefill.total.get());
        assert!(r.total.get() > r.decode.get());
        assert!(r.decode_throughput > 0.0);
    }

    #[test]
    fn step_cost_from_totals_reconstructs_per_head_values() {
        // tiny(): 2 layers, 2 heads, 2 kv heads, 0 dense layers => 4
        // selective query heads and 4 selective kv heads.
        let cfg = crate::config::ModelConfig::tiny();
        let cost = StepCost::from_step_totals(&cfg, 400, 96, 48, 640, 320);
        assert!((cost.scored_vectors_per_head - 100.0).abs() < 1e-12);
        assert!((cost.attended_tokens - 24.0).abs() < 1e-12);
        assert!((cost.transferred_tokens_per_head - 12.0).abs() < 1e-12);
        assert_eq!(cost.transferred_compressed_bytes, 640.0);
        assert_eq!(cost.staged_transfer_bytes, 320.0);
        // All layers dense: nothing selective to price.
        let mut dense = cfg;
        dense.dense_layers = dense.num_layers;
        let zero = StepCost::from_step_totals(&dense, 0, 0, 0, 0, 0);
        assert_eq!(zero.attended_tokens, 0.0);
        assert_eq!(zero.transferred_tokens_per_head, 0.0);
        assert_eq!(zero.transferred_compressed_bytes, 0.0);
        assert_eq!(zero.staged_transfer_bytes, 0.0);
    }

    #[test]
    fn overlap_clock_reduces_to_pure_sum_when_nothing_is_staged() {
        // Gate (c) of exp_prefetch: with no staged bytes the new clock must
        // be *bit-identical* to the pre-overlap pure sum `gpu + demand`.
        let m = llama_model();
        let cost = StepCost {
            scored_vectors_per_head: 400.0,
            attended_tokens: 1024.0,
            transferred_tokens_per_head: 300.0,
            transferred_compressed_bytes: 128.0,
            staged_transfer_bytes: 0.0,
            retried_transfer_bytes: 0.0,
            retry_backoff_seconds: 0.0,
        };
        let bd = m.decode_step_breakdown(32_000, &cost);
        assert_eq!(bd.staged, Seconds::zero());
        assert_eq!(
            bd.total.get().to_bits(),
            (bd.gpu + bd.demand).get().to_bits(),
            "disabled overlap clock must be bit-identical to the pure sum"
        );
        assert_eq!(bd.hidden(), Seconds::zero());
        assert_eq!(m.decode_step(32_000, &cost), bd.total);
    }

    #[test]
    fn staged_transfers_hide_behind_compute() {
        let m = llama_model();
        let base = StepCost {
            scored_vectors_per_head: 400.0,
            attended_tokens: 1024.0,
            transferred_tokens_per_head: 300.0,
            transferred_compressed_bytes: 0.0,
            staged_transfer_bytes: 0.0,
            retried_transfer_bytes: 0.0,
            retry_backoff_seconds: 0.0,
        };
        // A small staged transfer finishes well inside the compute window:
        // the step costs exactly what it did without staging, and the whole
        // staged time is hidden.
        let small = StepCost {
            staged_transfer_bytes: 4096.0,
            ..base
        };
        let bd0 = m.decode_step_breakdown(32_000, &base);
        let bd = m.decode_step_breakdown(32_000, &small);
        assert!(bd.staged.get() > 0.0 && bd.staged < bd.gpu);
        assert_eq!(bd.total, bd0.total, "hidden transfer is free");
        assert_eq!(bd.hidden(), bd.staged);
        // A staged transfer far larger than compute becomes the bottleneck:
        // the step stretches to max(gpu, staged) + demand, never the sum.
        let huge = StepCost {
            staged_transfer_bytes: 1e12,
            ..base
        };
        let big = m.decode_step_breakdown(32_000, &huge);
        assert!(big.staged > big.gpu);
        assert_eq!(big.total, big.staged + big.demand);
        assert!(big.total < big.gpu + big.staged + big.demand);
        assert_eq!(big.hidden(), big.gpu);
    }

    #[test]
    fn compressed_transfer_is_cheaper_than_exact_for_the_same_tokens() {
        // 300 tokens/head recalled exactly vs the same traffic recalled at
        // int8 (half the bytes): the compressed step must be strictly
        // faster, and both strictly slower than no recall at all.
        let m = llama_model();
        let cfg = m.config();
        let selective = (cfg.num_layers - cfg.dense_layers) as f64;
        let exact_bytes = selective * cfg.num_kv_heads as f64 * 300.0 * (4 * cfg.head_dim) as f64;
        let base = StepCost {
            scored_vectors_per_head: 400.0,
            attended_tokens: 1024.0,
            transferred_tokens_per_head: 0.0,
            transferred_compressed_bytes: 0.0,
            staged_transfer_bytes: 0.0,
            retried_transfer_bytes: 0.0,
            retry_backoff_seconds: 0.0,
        };
        let exact = StepCost {
            transferred_tokens_per_head: 300.0,
            ..base
        };
        let compressed = StepCost {
            transferred_compressed_bytes: exact_bytes / 2.0,
            ..base
        };
        let t_none = m.decode_step(32_000, &base);
        let t_exact = m.decode_step(32_000, &exact);
        let t_compressed = m.decode_step(32_000, &compressed);
        assert!(t_compressed < t_exact, "{t_compressed} vs {t_exact}");
        assert!(t_none < t_compressed);
        // Same byte count through either field prices identically.
        let equivalent = StepCost {
            transferred_compressed_bytes: exact_bytes,
            ..base
        };
        assert_eq!(m.decode_step(32_000, &equivalent), t_exact);
    }

    #[test]
    fn zero_decode_run_has_zero_throughput() {
        let m = llama_model();
        let r = m.run(1000, 0, None, StepCost::full_kv);
        assert_eq!(r.decode_throughput, 0.0);
        assert_eq!(r.decode, Seconds::zero());
    }
}
