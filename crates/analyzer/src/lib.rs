//! `clusterkv-analyzer` — an in-repo static invariant checker.
//!
//! The workspace's correctness story rests on invariants the compiler cannot
//! see: byte-identical token streams at any thread count, a zero-allocation
//! warm decode loop, NaN-total score ranking, and a modeled clock that never
//! reads wall time. The runtime test suites prove these on the paths they
//! exercise; this crate proves the *absence of the anti-patterns* everywhere
//! else, statically, on every CI run.
//!
//! It is registry-free by construction (same philosophy as `crates/shims`):
//! a hand-rolled lexer ([`lexer`]), a token-pattern rule engine ([`rules`]),
//! and a policy compiled in as constants ([`config`]). Run it as
//!
//! ```text
//! cargo run -p clusterkv-analyzer -- [--deny] [--json] [ROOT]
//! ```
//!
//! `--deny` exits non-zero on any finding (the CI mode); `--json` emits a
//! machine-readable report. See DESIGN.md §7 for the rule catalog and how to
//! add a rule.

pub mod config;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::{Policy, SKIP_DIR_NAMES};
use rules::{analyze_source, Diagnostic, RULES};

/// Outcome of analyzing a tree: every diagnostic plus scan statistics.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (path, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Collect every `.rs` file under `root`, depth-first in sorted order (the
/// report must not depend on directory-entry order), skipping
/// [`SKIP_DIR_NAMES`] directories. Returns `(absolute, workspace-relative)`
/// pairs; relative paths use `/` separators.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        // Reverse-sort so the stack pops in ascending order.
        entries.sort();
        entries.reverse();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIR_NAMES.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((path, rel));
            }
        }
    }
    // The stack-based walk interleaves files and subdirectories; a final
    // sort by relative path makes the report order canonical.
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

/// Analyze every `.rs` file under `root` with `policy`.
pub fn analyze_workspace(policy: &Policy, root: &Path) -> io::Result<Report> {
    let files = workspace_files(root)?;
    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    for (abs, rel) in files {
        let src = fs::read_to_string(&abs)?;
        diagnostics.extend(analyze_source(policy, &rel, &src));
    }
    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(Report {
        diagnostics,
        files_scanned,
    })
}

/// Human-readable report: one `path:line:col: [rule] message` per finding.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            d.path, d.line, d.col, d.rule, d.message
        ));
    }
    out.push_str(&format!(
        "{} file(s) scanned, {} violation(s), {} rule(s) active\n",
        report.files_scanned,
        report.diagnostics.len(),
        RULES.len()
    ));
    out
}

/// Machine-readable report. Hand-rolled JSON, matching the repo's existing
/// practice in `clusterkv-metrics` (no serde backend in the offline shims).
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"rules\": [");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"summary\": \"{}\"}}",
            escape_json(r.name),
            escape_json(r.summary)
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"violation_count\": {},\n",
        report.diagnostics.len()
    ));
    out.push_str("  \"violations\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\"}}",
            escape_json(d.rule),
            escape_json(&d.path),
            d.line,
            d.col,
            escape_json(&d.message)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_report_shape_is_stable() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                rule: rules::NO_WALL_CLOCK,
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                col: 7,
                message: "msg".into(),
            }],
            files_scanned: 1,
        };
        let json = render_json(&report);
        assert!(json.contains("\"violation_count\": 1"));
        assert!(json.contains("\"rule\": \"no-wall-clock\""));
        assert!(json.contains("\"line\": 3"));
        // Every shipped rule is described even when it found nothing.
        for r in RULES {
            assert!(json.contains(r.name));
        }
    }

    #[test]
    fn text_report_uses_file_line_col_format() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                rule: rules::UNSAFE_GATE,
                path: "tests/x.rs".into(),
                line: 9,
                col: 1,
                message: "m".into(),
            }],
            files_scanned: 2,
        };
        let text = render_text(&report);
        assert!(text.contains("tests/x.rs:9:1: [unsafe-gate] m"));
        assert!(text.contains("2 file(s) scanned, 1 violation(s)"));
    }
}
