//! The rule engine: repo invariants as deny-by-default lints.
//!
//! Each rule is a small pattern match over the lexed token stream of one
//! file (comments and string literals are never matched — see
//! [`crate::lexer`]), scoped by three kinds of region information the engine
//! reconstructs lexically:
//!
//! - **`#[cfg(test)]` regions** — brace-balanced bodies following a
//!   `cfg(test)` attribute (`not(test)` is recognised and excluded). Rules
//!   that only guard *production* determinism skip these.
//! - **hot-path regions** — the brace-balanced body of the first `fn`
//!   following a `// analyzer: hot-path` comment. The no-alloc rule applies
//!   only here.
//! - **allow escapes** — `// analyzer:allow(rule, reason)` on the same line
//!   as the finding or on the line(s) immediately above it suppresses that
//!   one rule at that one site. Escapes are greppable and reviewed.
//!
//! The catalog (see DESIGN.md §7 for the rationale of each):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `float-total-order` | scores are ranked with a total order, NaN-safe |
//! | `no-hashmap-iteration-order` | reports/traces/token streams never
//! |   | depend on hash iteration order |
//! | `no-wall-clock` | simulation time is modeled, never sampled |
//! | `no-alloc-in-kernels` | warm kernel hot loops do not allocate |
//! | `unsafe-gate` | `unsafe` needs an allowlist entry and a SAFETY note |
//! | `no-panic-in-recovery` | recovery paths degrade, they never panic |
//!
//! Like hot-path regions, **recovery regions** are the brace-balanced body
//! of the first `fn` following a `// analyzer: recovery-path` comment; the
//! no-panic rule applies only there.

use crate::config::{Policy, SAFETY_COMMENT_WINDOW};
use crate::lexer::{lex, Token, TokenKind};

/// Rule: float ranking must use a total order.
pub const FLOAT_TOTAL_ORDER: &str = "float-total-order";
/// Rule: no HashMap/HashSet in deterministic production code.
pub const NO_HASHMAP_ITERATION_ORDER: &str = "no-hashmap-iteration-order";
/// Rule: wall clocks only in benches and the criterion shim.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule: no allocation in `analyzer: hot-path` regions.
pub const NO_ALLOC_IN_KERNELS: &str = "no-alloc-in-kernels";
/// Rule: `unsafe` requires allowlist + SAFETY comment.
pub const UNSAFE_GATE: &str = "unsafe-gate";
/// Rule: no `unwrap`/`expect`/`panic!` in `analyzer: recovery-path` regions.
pub const NO_PANIC_IN_RECOVERY: &str = "no-panic-in-recovery";

/// Static description of one rule, for `--json` output and docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
}

/// Every shipped rule, in stable order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: FLOAT_TOTAL_ORDER,
        summary: "float scores must be ranked with a total order (total_cmp / argsort helpers), \
                  never partial_cmp",
    },
    RuleInfo {
        name: NO_HASHMAP_ITERATION_ORDER,
        summary: "no HashMap/HashSet in non-test code: iteration order is nondeterministic; \
                  use BTreeMap/BTreeSet or sort explicitly",
    },
    RuleInfo {
        name: NO_WALL_CLOCK,
        summary: "Instant/SystemTime only under crates/bench and crates/shims/criterion; \
                  modeled time goes through Seconds",
    },
    RuleInfo {
        name: NO_ALLOC_IN_KERNELS,
        summary: "no allocating calls inside `analyzer: hot-path` fn bodies (the static \
                  complement of tests/zero_alloc.rs)",
    },
    RuleInfo {
        name: UNSAFE_GATE,
        summary: "unsafe blocks need a // SAFETY: comment and an analyzer allowlist entry",
    },
    RuleInfo {
        name: NO_PANIC_IN_RECOVERY,
        summary: "no unwrap/expect/panic! inside `analyzer: recovery-path` fn bodies: fault \
                  handling must degrade (Result / default), never abort the simulation",
    },
];

/// One finding, pointing at a token in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

/// Line regions (inclusive) reconstructed from the token stream.
#[derive(Debug, Default)]
struct Regions {
    /// Bodies of `#[cfg(test)]` items.
    test: Vec<(usize, usize)>,
    /// Bodies of `// analyzer: hot-path` fns.
    hot: Vec<(usize, usize)>,
    /// Bodies of `// analyzer: recovery-path` fns.
    recovery: Vec<(usize, usize)>,
    /// Lines at which a given rule is suppressed: `(rule, line)`.
    allows: Vec<(String, usize)>,
    /// Lines carrying a `SAFETY:` comment.
    safety: Vec<usize>,
}

impl Regions {
    fn in_test(&self, line: usize) -> bool {
        self.test.iter().any(|&(a, b)| line >= a && line <= b)
    }

    fn in_hot(&self, line: usize) -> bool {
        self.hot.iter().any(|&(a, b)| line >= a && line <= b)
    }

    fn in_recovery(&self, line: usize) -> bool {
        self.recovery.iter().any(|&(a, b)| line >= a && line <= b)
    }

    fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|(r, l)| r == rule && *l == line)
    }

    fn has_safety_above(&self, line: usize) -> bool {
        self.safety
            .iter()
            .any(|&l| l <= line && line - l <= SAFETY_COMMENT_WINDOW)
    }
}

/// Analyze one file's source under `policy`. `rel_path` is the
/// workspace-relative path with `/` separators (it drives the per-path
/// policy: blessed files, allowed dirs, test dirs).
pub fn analyze_source(policy: &Policy, rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let tokens = lex(src);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !matches!(
                tokens[i].kind,
                TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let regions = build_regions(&tokens, &code);

    let mut diags = Vec::new();
    rule_float_total_order(policy, rel_path, &tokens, &code, &mut diags);
    rule_no_hashmap(policy, rel_path, &tokens, &code, &regions, &mut diags);
    rule_no_wall_clock(policy, rel_path, &tokens, &code, &mut diags);
    rule_no_alloc_in_kernels(rel_path, &tokens, &code, &regions, &mut diags);
    rule_unsafe_gate(policy, rel_path, &tokens, &code, &regions, &mut diags);
    rule_no_panic_in_recovery(rel_path, &tokens, &code, &regions, &mut diags);

    diags.retain(|d| !regions.allowed(d.rule, d.line));
    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    diags
}

// ---------------------------------------------------------------- regions

fn build_regions(tokens: &[Token], code: &[usize]) -> Regions {
    let mut regions = Regions::default();

    // Comment-driven regions: hot-path markers, allow escapes, SAFETY notes.
    for (i, t) in tokens.iter().enumerate() {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = &t.text;
        if text.contains("analyzer:hot-path") || text.contains("analyzer: hot-path") {
            if let Some(range) = next_fn_body_lines(tokens, i + 1) {
                regions.hot.push(range);
            }
        }
        if text.contains("analyzer:recovery-path") || text.contains("analyzer: recovery-path") {
            if let Some(range) = next_fn_body_lines(tokens, i + 1) {
                regions.recovery.push(range);
            }
        }
        if let Some(rule) = parse_allow(text) {
            regions.allows.push((rule.clone(), t.line));
            // An allow on its own line also covers the next code line.
            if let Some(&ci) = code.iter().find(|&&ci| tokens[ci].line > t.line) {
                regions.allows.push((rule, tokens[ci].line));
            }
        }
        if text.contains("SAFETY:") {
            regions.safety.push(t.line);
        }
    }

    // `#[cfg(test)]` regions over code tokens.
    let mut k = 0;
    while k + 1 < code.len() {
        if is_punct(tokens, code, k, "#") && is_punct(tokens, code, k + 1, "[") {
            let attr_start_line = tokens[code[k]].line;
            if let Some((end_k, is_test_attr)) = scan_attribute(tokens, code, k + 1) {
                if is_test_attr {
                    if let Some(close_line) = item_end_line(tokens, code, end_k + 1) {
                        regions.test.push((attr_start_line, close_line));
                    }
                }
                k = end_k + 1;
                continue;
            }
        }
        k += 1;
    }

    regions
}

/// Parse `analyzer:allow(rule[, reason])` out of a comment, returning the
/// rule name.
fn parse_allow(comment: &str) -> Option<String> {
    let idx = comment.find("analyzer:allow(")?;
    let rest = &comment[idx + "analyzer:allow(".len()..];
    let end = rest.find([',', ')'])?;
    let rule = rest[..end].trim();
    if rule.is_empty() {
        None
    } else {
        Some(rule.to_string())
    }
}

fn is_punct(tokens: &[Token], code: &[usize], k: usize, s: &str) -> bool {
    code.get(k)
        .map(|&i| tokens[i].kind == TokenKind::Punct && tokens[i].text == s)
        .unwrap_or(false)
}

fn ident_at<'t>(tokens: &'t [Token], code: &[usize], k: usize) -> Option<&'t str> {
    code.get(k).and_then(|&i| {
        if tokens[i].kind == TokenKind::Ident {
            Some(tokens[i].text.as_str())
        } else {
            None
        }
    })
}

/// Scan an attribute starting at the `[` code index. Returns the code index
/// of the matching `]` and whether the attribute is a `cfg` that *enables*
/// `test` (i.e. `test` appears outside any `not(…)`).
fn scan_attribute(tokens: &[Token], code: &[usize], open_k: usize) -> Option<(usize, bool)> {
    let mut depth = 0usize;
    let mut is_cfg = false;
    let mut test_enabled = false;
    // Stack of predicate names for paren groups: `not`, `all`, `any`, `cfg`.
    let mut preds: Vec<String> = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut k = open_k;
    loop {
        let &i = code.get(k)?;
        let t = &tokens[i];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "[") => depth += 1,
            (TokenKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    return Some((k, is_cfg && test_enabled));
                }
            }
            (TokenKind::Punct, "(") => {
                preds.push(last_ident.take().unwrap_or_default());
            }
            (TokenKind::Punct, ")") => {
                preds.pop();
            }
            (TokenKind::Ident, name) => {
                if name == "cfg" {
                    is_cfg = true;
                }
                if name == "test" && !preds.iter().any(|p| p == "not") {
                    test_enabled = true;
                }
                last_ident = Some(name.to_string());
            }
            _ => {}
        }
        k += 1;
    }
}

/// From code index `start` (just past an attribute's `]`), find where the
/// annotated item ends: skip any further attributes, then the first `;`
/// ends a braceless item, or the first `{` opens a body that is
/// brace-matched to its close. Returns the end line.
fn item_end_line(tokens: &[Token], code: &[usize], start: usize) -> Option<usize> {
    let mut k = start;
    // Skip stacked attributes.
    while is_punct(tokens, code, k, "#") && is_punct(tokens, code, k + 1, "[") {
        let (end_k, _) = scan_attribute(tokens, code, k + 1)?;
        k = end_k + 1;
    }
    // Find `;` (braceless item) or `{` (body).
    loop {
        let &i = code.get(k)?;
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            if t.text == ";" {
                return Some(t.line);
            }
            if t.text == "{" {
                return brace_close_line(tokens, code, k);
            }
        }
        k += 1;
    }
}

/// Given the code index of a `{`, return the line of its matching `}`.
fn brace_close_line(tokens: &[Token], code: &[usize], open_k: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = open_k;
    loop {
        let &i = code.get(k)?;
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            if t.text == "{" {
                depth += 1;
            } else if t.text == "}" {
                depth -= 1;
                if depth == 0 {
                    return Some(t.line);
                }
            }
        }
        k += 1;
    }
}

/// From *token* index `from`, find the next `fn` keyword and the line span
/// of its brace-balanced body.
fn next_fn_body_lines(tokens: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && t.text == "fn" {
            // First `{` after the fn keyword opens the body.
            let mut j = i + 1;
            while j < tokens.len() {
                let u = &tokens[j];
                if u.kind == TokenKind::Punct && u.text == "{" {
                    let mut depth = 0usize;
                    let open_line = u.line;
                    let mut k = j;
                    while k < tokens.len() {
                        let v = &tokens[k];
                        if v.kind == TokenKind::Punct {
                            if v.text == "{" {
                                depth += 1;
                            } else if v.text == "}" {
                                depth -= 1;
                                if depth == 0 {
                                    return Some((open_line, v.line));
                                }
                            }
                        }
                        k += 1;
                    }
                    return None;
                }
                if u.kind == TokenKind::Punct && u.text == ";" {
                    // `fn` signature without body (trait decl) — no region.
                    return None;
                }
                j += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

// ------------------------------------------------------------------ rules

fn rule_float_total_order(
    policy: &Policy,
    rel_path: &str,
    tokens: &[Token],
    code: &[usize],
    diags: &mut Vec<Diagnostic>,
) {
    if policy.is_float_order_blessed(rel_path) {
        return;
    }
    for &i in code {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && t.text == "partial_cmp" {
            diags.push(diag(
                FLOAT_TOTAL_ORDER,
                rel_path,
                t,
                "`partial_cmp` is not a total order (NaN breaks ranking); use \
                 `f32::total_cmp` or the `clusterkv_tensor::vector` argsort helpers",
            ));
        }
    }
}

fn rule_no_hashmap(
    policy: &Policy,
    rel_path: &str,
    tokens: &[Token],
    code: &[usize],
    regions: &Regions,
    diags: &mut Vec<Diagnostic>,
) {
    if policy.is_test_path(rel_path) {
        return;
    }
    for &i in code {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !regions.in_test(t.line)
        {
            diags.push(diag(
                NO_HASHMAP_ITERATION_ORDER,
                rel_path,
                t,
                "hash-table iteration order is nondeterministic and leaks into token \
                 streams, reports, and traces; use BTreeMap/BTreeSet or sort explicitly",
            ));
        }
    }
}

fn rule_no_wall_clock(
    policy: &Policy,
    rel_path: &str,
    tokens: &[Token],
    code: &[usize],
    diags: &mut Vec<Diagnostic>,
) {
    if policy.is_wall_clock_allowed(rel_path) {
        return;
    }
    for &i in code {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            diags.push(diag(
                NO_WALL_CLOCK,
                rel_path,
                t,
                "wall clocks are allowed only under crates/bench and \
                 crates/shims/criterion; modeled time goes through `Seconds`",
            ));
        }
    }
}

/// Identifiers that allocate when they appear in a hot region. These are
/// method/function *names*; the lexer cannot type receivers, so the rule is
/// deliberately name-based — a hot region must simply not use these names.
const ALLOC_METHOD_NAMES: &[&str] = &[
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "with_capacity",
];
/// Macro names that allocate (`name!`).
const ALLOC_MACRO_NAMES: &[&str] = &["vec", "format"];
/// Types whose `::new` / `::from` constructors allocate.
const ALLOC_TYPE_NAMES: &[&str] = &["Vec", "Box", "String", "BTreeMap", "BTreeSet"];

fn rule_no_alloc_in_kernels(
    rel_path: &str,
    tokens: &[Token],
    code: &[usize],
    regions: &Regions,
    diags: &mut Vec<Diagnostic>,
) {
    for (k, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || !regions.in_hot(t.line) {
            continue;
        }
        let name = t.text.as_str();
        if ALLOC_METHOD_NAMES.contains(&name) {
            diags.push(diag(
                NO_ALLOC_IN_KERNELS,
                rel_path,
                t,
                "allocating call inside an `analyzer: hot-path` region; reuse the \
                 caller's Workspace buffers (clear/reserve/extend) instead",
            ));
            continue;
        }
        if ALLOC_MACRO_NAMES.contains(&name) && is_punct(tokens, code, k + 1, "!") {
            diags.push(diag(
                NO_ALLOC_IN_KERNELS,
                rel_path,
                t,
                "allocating macro inside an `analyzer: hot-path` region",
            ));
            continue;
        }
        if ALLOC_TYPE_NAMES.contains(&name)
            && is_punct(tokens, code, k + 1, ":")
            && is_punct(tokens, code, k + 2, ":")
            && matches!(ident_at(tokens, code, k + 3), Some("new") | Some("from"))
        {
            diags.push(diag(
                NO_ALLOC_IN_KERNELS,
                rel_path,
                t,
                "container construction inside an `analyzer: hot-path` region; \
                 take the buffer as a parameter instead",
            ));
        }
    }
}

fn rule_unsafe_gate(
    policy: &Policy,
    rel_path: &str,
    tokens: &[Token],
    code: &[usize],
    regions: &Regions,
    diags: &mut Vec<Diagnostic>,
) {
    for &i in code {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        if !policy.is_unsafe_allowlisted(rel_path) {
            diags.push(diag(
                UNSAFE_GATE,
                rel_path,
                t,
                "`unsafe` is denied workspace-wide; if genuinely required, add the \
                 file to UNSAFE_ALLOWLIST and a // SAFETY: comment above the block",
            ));
        } else if !regions.has_safety_above(t.line) {
            diags.push(diag(
                UNSAFE_GATE,
                rel_path,
                t,
                "allowlisted `unsafe` is missing a // SAFETY: comment on the lines \
                 immediately above",
            ));
        }
    }
}

/// Names that abort instead of degrading when they appear in a recovery
/// region. Like the no-alloc rule this is name-based: the lexer cannot type
/// receivers, so a recovery body simply must not use these names.
const PANIC_METHOD_NAMES: &[&str] = &["unwrap", "expect"];
/// Macro names that abort (`name!`).
const PANIC_MACRO_NAMES: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn rule_no_panic_in_recovery(
    rel_path: &str,
    tokens: &[Token],
    code: &[usize],
    regions: &Regions,
    diags: &mut Vec<Diagnostic>,
) {
    for (k, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || !regions.in_recovery(t.line) {
            continue;
        }
        let name = t.text.as_str();
        if PANIC_METHOD_NAMES.contains(&name) {
            diags.push(diag(
                NO_PANIC_IN_RECOVERY,
                rel_path,
                t,
                "panicking call inside an `analyzer: recovery-path` region; fault \
                 handling must degrade (propagate a Result or substitute a default), \
                 never abort the simulation",
            ));
            continue;
        }
        if PANIC_MACRO_NAMES.contains(&name) && is_punct(tokens, code, k + 1, "!") {
            diags.push(diag(
                NO_PANIC_IN_RECOVERY,
                rel_path,
                t,
                "panicking macro inside an `analyzer: recovery-path` region",
            ));
        }
    }
}

fn diag(rule: &'static str, path: &str, t: &Token, message: &str) -> Diagnostic {
    Diagnostic {
        rule,
        path: path.to_string(),
        line: t.line,
        col: t.col,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        analyze_source(&Policy::repo(), path, src)
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn partial_cmp_in_code_is_flagged_with_position() {
        let src = "fn rank(v: &mut [f32]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let diags = run("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&diags), vec![FLOAT_TOTAL_ORDER]);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn partial_cmp_in_comment_or_string_is_ignored() {
        let src = "// partial_cmp is banned\nfn f() { let s = \"partial_cmp\"; let _ = s; }\n";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn blessed_file_may_use_partial_cmp() {
        let src = "fn cmp(a: f32, b: f32) { let _ = a.partial_cmp(&b); }\n";
        assert!(run("crates/tensor/src/vector.rs", src).is_empty());
    }

    #[test]
    fn hashmap_in_production_code_is_flagged() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); let _ = m; }\n";
        let diags = run("crates/model/src/serve.rs", src);
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| d.rule == NO_HASHMAP_ITERATION_ORDER));
    }

    #[test]
    fn hashmap_under_cfg_test_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    #[test]\n    fn t() { let _ = HashSet::<u8>::new(); }\n}\n";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod prod {\n    use std::collections::HashMap;\n}\n";
        let diags = run("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&diags), vec![NO_HASHMAP_ITERATION_ORDER]);
    }

    #[test]
    fn hashset_in_tests_dir_is_exempt() {
        let src = "use std::collections::HashSet;\n";
        assert!(run("crates/x/tests/props.rs", src).is_empty());
        assert!(run("tests/serving.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_outside_bench_is_flagged_even_in_tests() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
        let diags = run("crates/sched/src/lib.rs", src);
        assert_eq!(rules_of(&diags), vec![NO_WALL_CLOCK]);
    }

    #[test]
    fn wall_clock_in_bench_is_allowed() {
        let src = "fn t() { let _ = std::time::Instant::now(); }\n";
        assert!(run("crates/bench/src/bin/exp.rs", src).is_empty());
        assert!(run("crates/shims/criterion/src/lib.rs", src).is_empty());
    }

    #[test]
    fn alloc_names_outside_hot_regions_are_fine() {
        let src = "fn build() -> Vec<u32> { (0..4).collect() }\n";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn alloc_in_hot_path_fn_is_flagged() {
        let src = "// analyzer: hot-path\nfn kernel(out: &mut Vec<f32>) {\n    let v = vec![0.0f32; 4];\n    let w: Vec<f32> = v.iter().map(|x| x + 1.0).collect();\n    out.extend(w.iter().map(|x| x.clone()));\n}\n";
        let diags = run("crates/x/src/lib.rs", src);
        assert_eq!(
            rules_of(&diags),
            vec![
                NO_ALLOC_IN_KERNELS,
                NO_ALLOC_IN_KERNELS,
                NO_ALLOC_IN_KERNELS
            ]
        );
    }

    #[test]
    fn hot_region_covers_only_the_annotated_fn() {
        let src = "// analyzer: hot-path\nfn hot(out: &mut Vec<f32>) { out.clear(); out.reserve(4); }\nfn cold() -> Vec<u32> { (0..4).collect() }\n";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hot_region_skips_attributes_before_fn() {
        let src = "// analyzer: hot-path\n#[inline(always)]\npub fn hot(x: &[f32]) -> f32 { x.to_vec(); 0.0 }\n";
        let diags = run("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&diags), vec![NO_ALLOC_IN_KERNELS]);
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let diags = run("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&diags), vec![UNSAFE_GATE]);
    }

    #[test]
    fn allowlisted_unsafe_needs_safety_comment() {
        let bad = "fn f() { unsafe { dangerous() } }\n";
        let good = "fn f() {\n    // SAFETY: the layout is valid by construction.\n    unsafe { dangerous() }\n}\n";
        assert_eq!(
            rules_of(&run("tests/zero_alloc.rs", bad)),
            vec![UNSAFE_GATE]
        );
        assert!(run("tests/zero_alloc.rs", good).is_empty());
    }

    #[test]
    fn allow_escape_suppresses_only_that_rule_on_that_line() {
        let src = "fn f(v: &mut [f32]) {\n    // analyzer:allow(float-total-order, legacy comparator kept for a test)\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let diags = run("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&diags), vec![FLOAT_TOTAL_ORDER]);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn trailing_allow_on_the_same_line_works() {
        let src = "fn f() { let _ = std::time::Instant::now(); } // analyzer:allow(no-wall-clock, demo)\n";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allow_for_a_different_rule_does_not_suppress() {
        let src = "// analyzer:allow(no-wall-clock, wrong rule)\nfn f(v: &mut [f32]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let diags = run("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&diags), vec![FLOAT_TOTAL_ORDER]);
    }

    #[test]
    fn panic_in_recovery_fn_is_flagged() {
        let src = "// analyzer: recovery-path\nfn restore(x: Option<u32>) -> u32 {\n    let v = x.unwrap();\n    if v > 9 { panic!(\"bad\") }\n    v\n}\n";
        let diags = run("crates/x/src/lib.rs", src);
        assert_eq!(
            rules_of(&diags),
            vec![NO_PANIC_IN_RECOVERY, NO_PANIC_IN_RECOVERY]
        );
    }

    #[test]
    fn recovery_region_covers_only_the_annotated_fn() {
        let src = "// analyzer: recovery-path\nfn restore(x: Option<u32>) -> u32 { x.unwrap_or(0) }\nfn elsewhere(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_flag_in_recovery() {
        let src = "// analyzer: recovery-path\nfn restore(x: Option<u32>) -> u32 {\n    x.unwrap_or_else(|| 0).max(x.unwrap_or_default())\n}\n";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn diagnostics_are_sorted_by_position() {
        let src = "use std::collections::HashMap;\nfn f(v: &mut [f32]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let diags = run("crates/x/src/lib.rs", src);
        assert_eq!(
            rules_of(&diags),
            vec![NO_HASHMAP_ITERATION_ORDER, FLOAT_TOTAL_ORDER]
        );
    }
}
