//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p clusterkv-analyzer -- [--deny] [--json] [ROOT]
//! ```
//!
//! With no `ROOT`, the current directory (the workspace root under `cargo
//! run`) is analyzed. `--deny` makes any finding a non-zero exit — the mode
//! CI runs in. `--json` switches the report to the machine-readable form.

use std::path::PathBuf;
use std::process::ExitCode;

use clusterkv_analyzer::config::Policy;
use clusterkv_analyzer::{analyze_workspace, render_json, render_text};

const USAGE: &str = "usage: clusterkv-analyzer [--deny] [--json] [ROOT]\n\
    \n\
    --deny   exit non-zero if any violation is found (CI mode)\n\
    --json   emit a machine-readable JSON report\n\
    ROOT     directory to analyze (default: current directory)\n";

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => {
                if root.is_some() {
                    eprintln!("multiple ROOT arguments\n{USAGE}");
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(path));
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let report = match analyze_workspace(&Policy::repo(), &root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "clusterkv-analyzer: failed to analyze {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_text(&report));
    }

    if deny && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
