//! Analyzer policy: the `analyzer.toml` that isn't.
//!
//! The workspace is offline (no TOML parser to pull in) and the policy is
//! small, so configuration lives here as Rust constants compiled into the
//! binary — same philosophy as `crates/shims`: make the dependency's *shape*
//! explicit instead of importing it. Changing policy is a reviewed code
//! change, which is exactly what you want for lint escapes.
//!
//! All paths below are workspace-relative with `/` separators, as produced
//! by [`crate::workspace_files`].

/// Directory *names* never descended into anywhere in the tree.
///
/// `fixtures` is skipped so the analyzer's own must-flag corpus
/// (`crates/analyzer/fixtures/`) doesn't fail the workspace run it exists
/// to test.
pub const SKIP_DIR_NAMES: &[&str] = &["target", ".git", "fixtures"];

/// Path prefixes whose files count as test code: every rule that exempts
/// `#[cfg(test)]` regions also exempts these files wholesale.
pub const TEST_PATH_MARKERS: &[&str] = &["tests/", "benches/"];

/// Files blessed to rank floats with `partial_cmp`: the total-order helpers
/// themselves. Everything else must go through
/// `clusterkv_tensor::vector::{argsort_descending, top_k_indices}` or
/// `f32::total_cmp`.
pub const FLOAT_ORDER_BLESSED: &[&str] = &["crates/tensor/src/vector.rs"];

/// Path prefixes allowed to read wall clocks (`Instant`, `SystemTime`).
/// Everything else models time as `clusterkv_sched::Seconds`.
pub const WALL_CLOCK_ALLOWED: &[&str] = &["crates/bench/", "crates/shims/criterion/"];

/// Files allowed to contain `unsafe` at all. Each block still needs a
/// `// SAFETY:` comment immediately above it; files not listed here get a
/// diagnostic for every `unsafe` token.
pub const UNSAFE_ALLOWLIST: &[&str] = &["tests/zero_alloc.rs"];

/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit
/// (attributes or the `impl`/`fn` header line may intervene).
pub const SAFETY_COMMENT_WINDOW: usize = 3;

/// The policy a single analysis run executes under. [`Policy::repo`] is the
/// workspace's committed configuration; tests build custom policies to prove
/// rule mechanics (e.g. the unsafe allowlist) against fixture files.
#[derive(Debug, Clone)]
pub struct Policy {
    pub float_order_blessed: Vec<String>,
    pub wall_clock_allowed: Vec<String>,
    pub unsafe_allowlist: Vec<String>,
    pub test_path_markers: Vec<String>,
}

impl Policy {
    /// The committed workspace policy.
    pub fn repo() -> Self {
        Policy {
            float_order_blessed: to_owned(FLOAT_ORDER_BLESSED),
            wall_clock_allowed: to_owned(WALL_CLOCK_ALLOWED),
            unsafe_allowlist: to_owned(UNSAFE_ALLOWLIST),
            test_path_markers: to_owned(TEST_PATH_MARKERS),
        }
    }

    /// Is `rel_path` test code by location (as opposed to `#[cfg(test)]`
    /// region, which is decided per-token by the rule engine)?
    pub fn is_test_path(&self, rel_path: &str) -> bool {
        self.test_path_markers
            .iter()
            .any(|m| rel_path.starts_with(m.as_str()) || rel_path.contains(&format!("/{m}")))
    }

    pub fn is_float_order_blessed(&self, rel_path: &str) -> bool {
        self.float_order_blessed.iter().any(|p| p == rel_path)
    }

    pub fn is_wall_clock_allowed(&self, rel_path: &str) -> bool {
        self.wall_clock_allowed
            .iter()
            .any(|p| rel_path.starts_with(p.as_str()))
    }

    pub fn is_unsafe_allowlisted(&self, rel_path: &str) -> bool {
        self.unsafe_allowlist.iter().any(|p| p == rel_path)
    }
}

fn to_owned(xs: &[&str]) -> Vec<String> {
    xs.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_policy_matches_the_constants() {
        let p = Policy::repo();
        assert!(p.is_float_order_blessed("crates/tensor/src/vector.rs"));
        assert!(!p.is_float_order_blessed("crates/tensor/src/svd.rs"));
        assert!(p.is_wall_clock_allowed("crates/bench/src/bin/exp_scaling.rs"));
        assert!(p.is_wall_clock_allowed("crates/shims/criterion/src/lib.rs"));
        assert!(!p.is_wall_clock_allowed("crates/sched/src/lib.rs"));
        assert!(p.is_unsafe_allowlisted("tests/zero_alloc.rs"));
        assert!(!p.is_unsafe_allowlisted("crates/tensor/src/kernels.rs"));
    }

    #[test]
    fn test_paths_cover_root_and_nested_test_dirs() {
        let p = Policy::repo();
        assert!(p.is_test_path("tests/serving.rs"));
        assert!(p.is_test_path("crates/kvcache/tests/properties.rs"));
        assert!(p.is_test_path("crates/tensor/benches/kernels.rs"));
        assert!(!p.is_test_path("crates/tensor/src/kernels.rs"));
        assert!(!p.is_test_path("crates/model/src/serve.rs"));
    }
}
