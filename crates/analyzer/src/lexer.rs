//! A hand-rolled Rust token scanner.
//!
//! The analyzer has the same offline constraint as the rest of the workspace
//! (no registry access, so no `syn`/`proc-macro2`): it ships its own lexer.
//! The scanner is deliberately *lexical*, not syntactic — it only needs to
//! answer "is this occurrence of `partial_cmp` code, or a string, or a
//! comment?", so it classifies the source into a flat token stream and leaves
//! grammar to the rule engine's small, local pattern matches.
//!
//! What it gets right (because the rules depend on it):
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments;
//! - string, raw string (`r"…"`, `r#"…"#`), byte string, char and lifetime
//!   literals — so a rule never fires on a forbidden name that appears
//!   inside quotes (e.g. in the analyzer's own rule tables);
//! - 1-based line/column positions for every token, for `file:line`
//!   diagnostics.
//!
//! Everything else (numeric literal grammar, operator gluing) is kept
//! single-character simple: rules match identifier/punct *sequences*, so
//! `::` is two `:` tokens and that is fine.

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `partial_cmp`, `HashMap`, …).
    Ident,
    /// A single punctuation/operator character (`{`, `:`, `#`, …).
    Punct,
    /// String / raw string / byte string / char / numeric literal.
    Literal,
    /// `// …` comment, text includes the `//` prefix.
    LineComment,
    /// `/* … */` comment (nesting-aware), text includes the delimiters.
    BlockComment,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in chars) of the token's first character.
    pub col: usize,
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Scanner {
    fn new(src: &str) -> Self {
        Scanner {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a flat token stream. Never fails: unrecognised bytes are
/// emitted as single-character `Punct` tokens, and unterminated literals or
/// comments simply run to end-of-file.
pub fn lex(src: &str) -> Vec<Token> {
    let mut s = Scanner::new(src);
    let mut out = Vec::new();

    while let Some(c) = s.peek() {
        let (line, col) = (s.line, s.col);
        if c.is_whitespace() {
            s.bump();
            continue;
        }

        // Comments.
        if c == '/' && s.peek_at(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = s.peek() {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                s.bump();
            }
            out.push(Token {
                kind: TokenKind::LineComment,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '/' && s.peek_at(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            while let Some(ch) = s.peek() {
                if ch == '/' && s.peek_at(1) == Some('*') {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    s.bump();
                    s.bump();
                } else if ch == '*' && s.peek_at(1) == Some('/') {
                    depth = depth.saturating_sub(1);
                    text.push('*');
                    text.push('/');
                    s.bump();
                    s.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(ch);
                    s.bump();
                }
            }
            out.push(Token {
                kind: TokenKind::BlockComment,
                text,
                line,
                col,
            });
            continue;
        }

        // Identifiers — with lookahead for string prefixes (r"", r#""#,
        // b"", br"", b'').
        if is_ident_start(c) {
            if let Some(tok) = try_prefixed_literal(&mut s, line, col) {
                out.push(tok);
                continue;
            }
            let mut text = String::new();
            while let Some(ch) = s.peek() {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                s.bump();
            }
            out.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }

        // Plain string literal.
        if c == '"' {
            let text = lex_quoted(&mut s);
            out.push(Token {
                kind: TokenKind::Literal,
                text,
                line,
                col,
            });
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            // `'a` followed by something that is not a closing quote is a
            // lifetime; `'x'` / `'\n'` are char literals.
            let one = s.peek_at(1);
            let two = s.peek_at(2);
            let is_lifetime = matches!(one, Some(ch) if is_ident_start(ch)) && two != Some('\'');
            if is_lifetime {
                let mut text = String::from('\'');
                s.bump();
                while let Some(ch) = s.peek() {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    s.bump();
                }
                out.push(Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line,
                    col,
                });
            } else {
                let mut text = String::from('\'');
                s.bump();
                while let Some(ch) = s.peek() {
                    if ch == '\\' {
                        text.push(ch);
                        s.bump();
                        if let Some(esc) = s.bump() {
                            text.push(esc);
                        }
                        continue;
                    }
                    text.push(ch);
                    s.bump();
                    if ch == '\'' || ch == '\n' {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Literal,
                    text,
                    line,
                    col,
                });
            }
            continue;
        }

        // Numeric literal (loose: consumes alphanumerics/underscores, which
        // covers 0x1F, 1_000u64; `1.5` lexes as Literal Punct Literal).
        if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(ch) = s.peek() {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                s.bump();
            }
            out.push(Token {
                kind: TokenKind::Literal,
                text,
                line,
                col,
            });
            continue;
        }

        // Anything else: one punct character.
        s.bump();
        out.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }

    out
}

/// If the scanner sits on a string-prefix identifier (`r`, `b`, `br`, `rb`)
/// immediately followed by a (possibly raw) string or byte-char literal,
/// consume the whole literal and return it; otherwise consume nothing.
fn try_prefixed_literal(s: &mut Scanner, line: usize, col: usize) -> Option<Token> {
    let c = s.peek()?;
    if c != 'r' && c != 'b' {
        return None;
    }
    // Work out the prefix shape without consuming.
    let mut idx = 1;
    if (c == 'b' && s.peek_at(idx) == Some('r')) || (c == 'r' && s.peek_at(idx) == Some('b')) {
        idx += 1;
    }
    let mut hashes = 0usize;
    while s.peek_at(idx + hashes) == Some('#') {
        hashes += 1;
    }
    let raw = c == 'r' || s.peek_at(1) == Some('r');
    let next = s.peek_at(idx + hashes);
    let is_string = next == Some('"') && (hashes == 0 || raw);
    let is_byte_char = c == 'b' && idx == 1 && hashes == 0 && next == Some('\'');
    if !is_string && !is_byte_char {
        return None;
    }

    let mut text = String::new();
    for _ in 0..(idx + hashes + 1) {
        if let Some(ch) = s.bump() {
            text.push(ch);
        }
    }
    if is_byte_char {
        while let Some(ch) = s.peek() {
            if ch == '\\' {
                text.push(ch);
                s.bump();
                if let Some(esc) = s.bump() {
                    text.push(esc);
                }
                continue;
            }
            text.push(ch);
            s.bump();
            if ch == '\'' {
                break;
            }
        }
    } else if raw {
        // Raw string: ends at `"` followed by `hashes` hash marks; no
        // escapes.
        'outer: while let Some(ch) = s.peek() {
            if ch == '"' {
                let mut ok = true;
                for h in 0..hashes {
                    if s.peek_at(1 + h) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..(1 + hashes) {
                        if let Some(done) = s.bump() {
                            text.push(done);
                        }
                    }
                    break 'outer;
                }
            }
            text.push(ch);
            s.bump();
        }
    } else {
        // Cooked (byte) string with escapes; the opening quote was already
        // consumed above.
        while let Some(ch) = s.peek() {
            if ch == '\\' {
                text.push(ch);
                s.bump();
                if let Some(esc) = s.bump() {
                    text.push(esc);
                }
                continue;
            }
            text.push(ch);
            s.bump();
            if ch == '"' {
                break;
            }
        }
    }
    Some(Token {
        kind: TokenKind::Literal,
        text,
        line,
        col,
    })
}

/// Consume a cooked string literal starting at the current `"`.
fn lex_quoted(s: &mut Scanner) -> String {
    let mut text = String::new();
    text.push('"');
    s.bump();
    while let Some(ch) = s.peek() {
        if ch == '\\' {
            text.push(ch);
            s.bump();
            if let Some(esc) = s.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(ch);
        s.bump();
        if ch == '"' {
            break;
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn main() {}");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "fn".into()),
                (TokenKind::Ident, "main".into()),
                (TokenKind::Punct, "(".into()),
                (TokenKind::Punct, ")".into()),
                (TokenKind::Punct, "{".into()),
                (TokenKind::Punct, "}".into()),
            ]
        );
    }

    #[test]
    fn forbidden_name_in_string_is_a_literal() {
        let toks = lex(r#"let s = "partial_cmp";"#);
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "partial_cmp"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text.contains("partial_cmp")));
    }

    #[test]
    fn forbidden_name_in_comment_is_a_comment() {
        let toks = lex("// partial_cmp is banned\nlet x = 1;");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "partial_cmp"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* a /* b */ c */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[1].text, "ident");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r##"let s = r#"quote " inside HashMap"#; next"##);
        assert!(!toks.iter().any(|t| t.text == "HashMap"));
        assert_eq!(toks.last().unwrap().text, "next");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = lex(r#"let a = b"Instant"; let c = b'x'; tail"#);
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "Instant"));
        assert_eq!(toks.last().unwrap().text, "tail");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'y'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'y'"));
    }

    #[test]
    fn char_escapes_do_not_break_the_stream() {
        let toks = lex(r"let q = '\''; let n = '\n'; after");
        assert_eq!(toks.last().unwrap().text, "after");
    }

    #[test]
    fn positions_are_one_based_and_line_aware() {
        let toks = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn string_escapes_keep_the_terminator_honest() {
        let toks = lex(r#"let s = "a\"b"; done"#);
        assert_eq!(toks.last().unwrap().text, "done");
    }

    #[test]
    fn identifier_starting_with_r_is_not_a_raw_string() {
        let toks = kinds("ranked_by(run)");
        assert_eq!(toks[0], (TokenKind::Ident, "ranked_by".into()));
    }
}
