//! Must-pass fixture: the same recovery path written to degrade — fallible
//! lookups substitute the recomputed value and report, never abort. Panics
//! outside the annotated fn are out of scope for the rule.

// analyzer: recovery-path
fn restore_page(stored: Option<u64>, recomputed: u64) -> (u64, bool) {
    let checksum = stored.unwrap_or(recomputed);
    let repaired = checksum != recomputed;
    (recomputed, repaired)
}

fn elsewhere(stored: Option<u64>) -> u64 {
    stored.unwrap()
}

fn main() {
    let _ = restore_page(Some(1), 1);
    let _ = elsewhere(Some(2));
}
