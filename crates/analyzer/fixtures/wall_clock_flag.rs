// Must-flag fixture: reading wall clocks outside crates/bench and the
// criterion shim. Expected: four no-wall-clock findings (two on the import,
// two in the body).

use std::time::{Instant, SystemTime};

pub fn measure() -> u64 {
    let start = Instant::now();
    let _epoch = SystemTime::now();
    start.elapsed().as_nanos() as u64
}
