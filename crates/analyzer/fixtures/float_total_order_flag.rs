// Must-flag fixture: ranking floats through `partial_cmp` outside the
// blessed helpers. Expected: one float-total-order finding on the sort line.

pub fn rank_scores(scores: &mut Vec<(f32, usize)>) {
    scores.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
}
