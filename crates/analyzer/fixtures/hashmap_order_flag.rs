// Must-flag fixture: hash containers in production code whose iteration
// order could leak into a report. Expected: three no-hashmap-iteration-order
// findings (import, field type, constructor).

use std::collections::HashMap;

pub struct Report {
    pub counts: HashMap<String, u64>,
}

pub fn build() -> Report {
    Report {
        counts: HashMap::new(),
    }
}
