// Must-pass fixture: total-order ranking, with the forbidden name appearing
// only in a comment and a string literal (the lexer must not flag either).
// The right way is total_cmp — partial_cmp is banned in code.

pub fn rank_scores(scores: &mut Vec<(f32, usize)>) {
    scores.sort_by(|a, b| b.0.total_cmp(&a.0));
    let _doc = "see the float-total-order rule: partial_cmp is not total";
}
