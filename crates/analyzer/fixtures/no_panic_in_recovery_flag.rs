//! Must-flag fixture: a recovery path that aborts instead of degrading.

// analyzer: recovery-path
fn restore_page(stored: Option<u64>, recomputed: u64) -> u64 {
    let checksum = stored.unwrap();
    if checksum != recomputed {
        panic!("corrupt page");
    }
    stored.expect("checked above")
}

fn main() {
    let _ = restore_page(Some(1), 1);
}
