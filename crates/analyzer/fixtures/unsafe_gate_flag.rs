// Must-flag fixture: an unsafe block in a file that is not on the
// analyzer's allowlist. Expected: one unsafe-gate finding (even though a
// SAFETY comment is present — the allowlist entry is also required).

pub fn read_first(xs: &[u8]) -> u8 {
    // SAFETY: caller guarantees xs is non-empty.
    unsafe { *xs.get_unchecked(0) }
}
