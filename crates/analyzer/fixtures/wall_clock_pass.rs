// Must-pass fixture: time modeled as a plain f64 seconds value, advanced by
// the simulation — never sampled from the machine. Mentions of Instant stay
// inside comments and strings only.

pub struct Clock {
    now: f64,
}

impl Clock {
    pub fn advance(&mut self, dt: f64) {
        // Unlike Instant::now(), modeled time only moves when told to.
        self.now += dt;
        let _why = "deterministic replay needs modeled time, not Instant";
    }
}
