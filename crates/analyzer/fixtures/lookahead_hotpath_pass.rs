// Must-pass fixture: the same lookahead hint written the way
// `lookahead_clusters_ws` actually is — every score/rank/label buffer
// lives in a caller-owned workspace, cleared and refilled in place, so a
// steady-state decode step allocates nothing. The cold constructor below
// the hot region allocates freely.

pub struct HintWorkspace {
    pub scores: Vec<f32>,
    pub idx: Vec<usize>,
    pub labels: Vec<usize>,
}

// analyzer: hot-path
pub fn lookahead_hint(
    centroids: &[Vec<f32>],
    query: &[f32],
    budget: usize,
    ws: &mut HintWorkspace,
) -> usize {
    ws.scores.clear();
    ws.idx.clear();
    ws.labels.clear();
    for (i, centroid) in centroids.iter().enumerate() {
        ws.scores
            .push(centroid.iter().zip(query).map(|(c, q)| c * q).sum::<f32>());
        ws.idx.push(i);
    }
    let scores = &ws.scores;
    ws.idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    for &cluster in ws.idx.iter().take(budget) {
        ws.labels.push(cluster);
    }
    ws.labels.len()
}

pub fn cold_workspace(capacity: usize) -> HintWorkspace {
    HintWorkspace {
        scores: Vec::with_capacity(capacity),
        idx: Vec::with_capacity(capacity),
        labels: Vec::with_capacity(capacity),
    }
}
