// Must-flag fixture: the shape of the speculative-prefetch lookahead
// kernel (DESIGN.md §10) written the tempting-but-wrong way — scoring and
// ranking buffers allocated fresh on every decode step inside the hot
// region. Expected: three no-alloc-in-kernels findings (with_capacity,
// collect, to_vec).

// analyzer: hot-path
pub fn lookahead_hint(centroids: &[Vec<f32>], query: &[f32], budget: usize) -> Vec<usize> {
    let mut scores = Vec::with_capacity(centroids.len());
    for centroid in centroids {
        scores.push(centroid.iter().zip(query).map(|(c, q)| c * q).sum::<f32>());
    }
    let mut ranked: Vec<usize> = (0..scores.len()).collect();
    ranked.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    ranked[..budget.min(ranked.len())].to_vec()
}
