// Must-pass fixture: ordered containers in production code; hash containers
// confined to a #[cfg(test)] region, where scratch sets are fine.

use std::collections::BTreeMap;

pub struct Report {
    pub counts: BTreeMap<String, u64>,
}

pub fn build() -> Report {
    Report {
        counts: BTreeMap::new(),
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn scratch_sets_are_fine_in_tests() {
        let mut seen = HashSet::new();
        seen.insert(1u32);
        assert!(seen.contains(&1));
    }
}
