// Must-flag fixture under an allowlisting policy: the file is allowed to
// contain unsafe, but this block has no SAFETY comment above it.

pub fn read_first(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());

    unsafe { *xs.get_unchecked(0) }
}
