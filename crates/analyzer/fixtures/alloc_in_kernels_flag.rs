// Must-flag fixture: allocation inside an `analyzer: hot-path` region.
// Expected: three no-alloc-in-kernels findings (vec!, collect, clone).

// analyzer: hot-path
pub fn kernel(out: &mut Vec<f32>) {
    let scratch = vec![0.0f32; 8];
    let doubled: Vec<f32> = scratch.iter().map(|x| x * 2.0).collect();
    out.extend(doubled.iter().map(|x| x.clone()));
}
