// Escape-hatch fixture: the first use is suppressed by an explicit
// analyzer:allow with a reason; the second is not. Expected: exactly one
// float-total-order finding, on the last line of the function.

pub fn rank_scores(scores: &mut Vec<(f32, usize)>) {
    // analyzer:allow(float-total-order, demonstrating the escape hatch)
    scores.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    scores.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
}
