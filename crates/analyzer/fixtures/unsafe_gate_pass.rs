// Must-pass fixture *under a policy that allowlists this file*: every
// unsafe block carries a SAFETY comment immediately above it. Under the
// repo policy (which does not allowlist fixtures) the same file must flag.

pub fn read_first(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}
