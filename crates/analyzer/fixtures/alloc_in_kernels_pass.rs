// Must-pass fixture: a hot-path kernel that only reuses the caller's buffer
// (clear/reserve/push never reallocate once capacity is warm), next to a
// cold helper that allocates freely outside any hot region.

// analyzer: hot-path
pub fn kernel(input: &[f32], out: &mut Vec<f32>) {
    out.clear();
    out.reserve(input.len());
    for x in input {
        out.push(x * 2.0);
    }
}

pub fn cold_setup(n: usize) -> Vec<f32> {
    (0..n).map(|i| i as f32).collect()
}
