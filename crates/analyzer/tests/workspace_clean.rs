//! The analyzer's acceptance criterion, executable: the committed workspace
//! has **zero** violations under the repo policy. Running in `cargo test`
//! means a regression fails the tier-1 suite even before CI's dedicated
//! `--deny` step.

use std::path::PathBuf;

use clusterkv_analyzer::config::Policy;
use clusterkv_analyzer::{analyze_workspace, render_text};

#[test]
fn committed_workspace_has_zero_violations() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let report = analyze_workspace(&Policy::repo(), &root).expect("analysis runs");
    assert!(
        report.files_scanned > 50,
        "walker should see the whole workspace, saw {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace must be violation-free:\n{}",
        render_text(&report)
    );
}

#[test]
fn fixtures_are_not_part_of_the_workspace_walk() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let files = clusterkv_analyzer::workspace_files(&root).expect("walk runs");
    assert!(
        files.iter().all(|(_, rel)| !rel.contains("fixtures/")),
        "the must-flag corpus must be excluded from the workspace run"
    );
    // The walk is canonical: sorted by relative path.
    let rels: Vec<&String> = files.iter().map(|(_, r)| r).collect();
    let mut sorted = rels.clone();
    sorted.sort();
    assert_eq!(rels, sorted, "report order must be canonical");
}
