//! Fixture-corpus proof of every analyzer rule: each rule has at least one
//! must-flag and one must-pass snippet, plus an `analyzer:allow` escape
//! test. Fixtures live in `fixtures/` (skipped by the workspace walker, so
//! the corpus can contain violations without failing the workspace run —
//! `workspace_clean.rs` proves that separately).

use std::fs;
use std::path::PathBuf;

use clusterkv_analyzer::config::Policy;
use clusterkv_analyzer::rules::{
    analyze_source, Diagnostic, FLOAT_TOTAL_ORDER, NO_ALLOC_IN_KERNELS, NO_HASHMAP_ITERATION_ORDER,
    NO_PANIC_IN_RECOVERY, NO_WALL_CLOCK, UNSAFE_GATE,
};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

/// Analyze a fixture as if it lived at a production path in some crate.
fn run(name: &str) -> Vec<Diagnostic> {
    let rel = format!("crates/example/src/{name}");
    analyze_source(&Policy::repo(), &rel, &fixture(name))
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn float_total_order_flags_and_passes() {
    let flagged = run("float_total_order_flag.rs");
    assert_eq!(rules_of(&flagged), vec![FLOAT_TOTAL_ORDER]);
    assert_eq!(flagged[0].line, 5, "finding points at the sort line");
    assert!(run("float_total_order_pass.rs").is_empty());
}

#[test]
fn float_total_order_allow_escape_suppresses_one_site_only() {
    let diags = run("float_total_order_allow.rs");
    assert_eq!(rules_of(&diags), vec![FLOAT_TOTAL_ORDER]);
    assert_eq!(diags[0].line, 8, "only the unescaped second sort flags");
}

#[test]
fn hashmap_order_flags_and_passes() {
    let flagged = run("hashmap_order_flag.rs");
    assert_eq!(
        flagged.len(),
        3,
        "import, field type, constructor: {flagged:?}"
    );
    assert!(flagged.iter().all(|d| d.rule == NO_HASHMAP_ITERATION_ORDER));
    assert!(run("hashmap_order_pass.rs").is_empty());
}

#[test]
fn hashmap_order_is_exempt_in_test_paths() {
    // The same must-flag source is fine when it lives under tests/.
    let src = fixture("hashmap_order_flag.rs");
    let diags = analyze_source(&Policy::repo(), "crates/example/tests/report.rs", &src);
    assert!(diags.is_empty(), "tests may use hash containers: {diags:?}");
}

#[test]
fn wall_clock_flags_and_passes() {
    let flagged = run("wall_clock_flag.rs");
    assert_eq!(flagged.len(), 4, "import pair + body pair: {flagged:?}");
    assert!(flagged.iter().all(|d| d.rule == NO_WALL_CLOCK));
    assert!(run("wall_clock_pass.rs").is_empty());
}

#[test]
fn wall_clock_is_allowed_under_bench_paths() {
    let src = fixture("wall_clock_flag.rs");
    for rel in [
        "crates/bench/src/bin/exp.rs",
        "crates/shims/criterion/src/lib.rs",
    ] {
        let diags = analyze_source(&Policy::repo(), rel, &src);
        assert!(diags.is_empty(), "{rel} may read wall clocks: {diags:?}");
    }
}

#[test]
fn alloc_in_kernels_flags_and_passes() {
    let flagged = run("alloc_in_kernels_flag.rs");
    assert_eq!(flagged.len(), 3, "vec!, collect, clone: {flagged:?}");
    assert!(flagged.iter().all(|d| d.rule == NO_ALLOC_IN_KERNELS));
    assert!(run("alloc_in_kernels_pass.rs").is_empty());
}

#[test]
fn lookahead_hotpath_kernel_flags_and_passes() {
    // The prefetch lookahead kernel's no-alloc contract (DESIGN.md §10),
    // proven on fixtures shaped like the real `lookahead_clusters_ws`: the
    // per-step-allocating variant flags, the workspace-reusing variant —
    // cold constructor included — is clean.
    let flagged = run("lookahead_hotpath_flag.rs");
    assert_eq!(
        flagged.len(),
        3,
        "with_capacity, collect, to_vec: {flagged:?}"
    );
    assert!(flagged.iter().all(|d| d.rule == NO_ALLOC_IN_KERNELS));
    assert!(run("lookahead_hotpath_pass.rs").is_empty());
}

#[test]
fn no_panic_in_recovery_flags_and_passes() {
    let flagged = run("no_panic_in_recovery_flag.rs");
    assert_eq!(flagged.len(), 3, "unwrap, panic!, expect: {flagged:?}");
    assert!(flagged.iter().all(|d| d.rule == NO_PANIC_IN_RECOVERY));
    assert!(run("no_panic_in_recovery_pass.rs").is_empty());
}

#[test]
fn unsafe_gate_flags_without_allowlist_entry() {
    let flagged = run("unsafe_gate_flag.rs");
    assert_eq!(rules_of(&flagged), vec![UNSAFE_GATE]);
}

#[test]
fn unsafe_gate_passes_with_allowlist_and_safety_comment() {
    // A policy that allowlists the fixture path stands in for the repo
    // policy's tests/zero_alloc.rs entry.
    let mut policy = Policy::repo();
    policy
        .unsafe_allowlist
        .push("crates/example/src/unsafe_gate_pass.rs".to_string());
    let src = fixture("unsafe_gate_pass.rs");
    let diags = analyze_source(&policy, "crates/example/src/unsafe_gate_pass.rs", &src);
    assert!(diags.is_empty(), "allowlisted + SAFETY comment: {diags:?}");
    // Without the allowlist entry the very same file must flag.
    assert_eq!(rules_of(&run("unsafe_gate_pass.rs")), vec![UNSAFE_GATE]);
}

#[test]
fn unsafe_gate_flags_missing_safety_comment_even_when_allowlisted() {
    let mut policy = Policy::repo();
    policy
        .unsafe_allowlist
        .push("crates/example/src/unsafe_gate_missing_safety.rs".to_string());
    let src = fixture("unsafe_gate_missing_safety.rs");
    let diags = analyze_source(
        &policy,
        "crates/example/src/unsafe_gate_missing_safety.rs",
        &src,
    );
    assert_eq!(rules_of(&diags), vec![UNSAFE_GATE]);
    assert!(diags[0].message.contains("SAFETY"));
}

#[test]
fn every_shipped_rule_has_a_flagging_fixture() {
    // The acceptance criterion, executable: each rule in the catalog is
    // proven by at least one fixture the analyzer flags.
    let mut proven: Vec<&'static str> = Vec::new();
    for name in [
        "float_total_order_flag.rs",
        "hashmap_order_flag.rs",
        "wall_clock_flag.rs",
        "alloc_in_kernels_flag.rs",
        "unsafe_gate_flag.rs",
        "no_panic_in_recovery_flag.rs",
    ] {
        proven.extend(rules_of(&run(name)));
    }
    for rule in clusterkv_analyzer::rules::RULES {
        assert!(
            proven.contains(&rule.name),
            "rule {} has no flagging fixture",
            rule.name
        );
    }
}
