//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's tests use: the [`proptest!`] macro
//! with `arg in strategy` parameters and an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` attribute,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, half-open range
//! strategies over the primitive numeric types, and
//! [`collection::vec`](collection::vec()) (nestable).
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test's module path and name), so failures are reproducible. There is no
//! shrinking: a failing case reports the case number and the assertion
//! message.

/// Number of cases run per property when no config is given.
pub const DEFAULT_CASES: u32 = 64;

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
        }
    }
}

/// Deterministic RNG used to generate test cases (splitmix64 chain).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator from an arbitrary label (e.g. the test name) so
    /// every property gets its own reproducible stream.
    pub fn from_label(label: &str) -> Self {
        // FNV-1a over the label bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Strategies: value generators for test cases.
pub mod strategy {
    use super::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generate one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    /// Strategy producing a constant value (`proptest::strategy::Just`).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy over an element strategy and a length spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, TestRng};
}

/// Declare property tests. Each function runs `cases` times with fresh
/// random arguments; a failing assertion reports the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_label(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
    )*};
}

/// Property-test assertion; fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // Treat unmet assumptions as vacuously passing cases.
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = TestRng::from_label("x");
        let mut b = TestRng::from_label("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_label("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(n in 3usize..17, x in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vec_strategy_length_and_elements(
            v in collection::vec(0usize..5, 1..10),
            nested in collection::vec(collection::vec(-1.0f64..1.0, 3), 0..4),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assume!(nested.len() < 4);
            for inner in &nested {
                prop_assert_eq!(inner.len(), 3);
            }
        }
    }
}
