//! Offline stand-in for the `rayon` crate.
//!
//! `into_par_iter`/`par_iter` resolve to the corresponding *sequential*
//! iterators, so code written against the rayon prelude compiles and runs
//! unchanged — single-threaded. Results are identical because the workspace
//! only uses order-preserving adaptors (`map` + `collect`). Swapping in the
//! real rayon restores parallelism with no source changes.

/// Sequential drop-in for `rayon::prelude`.
pub mod prelude {
    /// Sequential stand-in for `rayon::prelude::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The underlying (sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type.
        type Item;
        /// "Parallel" iteration — sequential in this shim.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for `rayon::prelude::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The underlying (sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type (a reference).
        type Item: 'data;
        /// "Parallel" iteration over references — sequential in this shim.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_matches_sequential() {
        let doubled: Vec<usize> = (0..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 6);
    }
}
