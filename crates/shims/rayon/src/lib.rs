//! Offline stand-in for the `rayon` crate — genuinely multithreaded.
//!
//! Unlike the first-generation shim (which resolved `par_iter` to the
//! sequential iterator), this version executes parallel regions on real OS
//! threads: the input is split into contiguous chunks, one
//! [`std::thread::scope`] worker per chunk maps its slice, and the per-chunk
//! results are concatenated **in chunk order**. Because every item is mapped
//! by the same pure function and the output order is the input order, results
//! are byte-identical to a sequential run at any thread count — the property
//! the serving stack's thread-count parity suite enforces.
//!
//! Semantics the workspace relies on:
//!
//! * **`RAYON_NUM_THREADS`** is honored like the real rayon: it caps the
//!   worker count of every parallel region. `0`, unset or unparsable falls
//!   back to [`std::thread::available_parallelism`]. The variable is re-read
//!   at every region, so benches and tests can sweep thread counts within a
//!   single process.
//! * **Deterministic order.** Chunks are contiguous and joined in order;
//!   `collect` observes items exactly as a sequential `map` would.
//! * **Nested regions run inline.** A parallel region entered from inside a
//!   worker executes sequentially on that worker (the real rayon schedules
//!   nested work onto the same pool; spawning threads quadratically instead
//!   would oversubscribe). The outermost region — session fan-out in
//!   `ServeEngine::decode_batch` — therefore owns the hardware.
//! * **[`with_min_len`](ParIter::with_min_len)** bounds the split: every
//!   worker receives at least `min_len` items, so cheap per-item work (e.g.
//!   scoring a few dozen centroids) is not swamped by thread-spawn overhead.
//!
//! Only the API surface the workspace consumes is provided: the two
//! `IntoParallel*` traits of the prelude, `map`/`collect`/`for_each`/`sum`,
//! `with_min_len` and [`current_num_threads`]. Swapping in the real rayon
//! remains a manifest-only change.

use std::cell::Cell;

thread_local! {
    /// Whether the current thread is already executing inside a parallel
    /// region (worker or region-owning caller). Nested regions run inline.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Restores the region flag on drop so a panicking mapper cannot leave the
/// calling thread permanently marked as "inside a region".
struct RegionGuard {
    prev: bool,
}

impl RegionGuard {
    fn enter() -> Self {
        let prev = IN_PARALLEL_REGION.with(|f| f.replace(true));
        Self { prev }
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_PARALLEL_REGION.with(|f| f.set(prev));
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The thread cap of the next parallel region: `RAYON_NUM_THREADS` when set
/// to a positive integer, the machine's available parallelism otherwise.
///
/// Re-read on every call (the lookup is cheap next to spawning a thread), so
/// changing the variable mid-process — as the scaling bench and the parity
/// tests do — takes effect at the next region.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

/// Number of workers a region over `n` items with the given `min_len` uses.
fn plan_threads(n: usize, min_len: usize) -> usize {
    if n <= 1 || IN_PARALLEL_REGION.with(|f| f.get()) {
        return 1;
    }
    let by_work = if min_len <= 1 { n } else { n.div_ceil(min_len) };
    current_num_threads().min(by_work).max(1)
}

/// Split `items` into `chunks` contiguous pieces of near-equal length.
fn split_chunks<T>(items: Vec<T>, chunks: usize) -> Vec<Vec<T>> {
    let per_chunk = items.len().div_ceil(chunks).max(1);
    let mut out = Vec::with_capacity(chunks);
    let mut rest = items;
    while rest.len() > per_chunk {
        let tail = rest.split_off(per_chunk);
        out.push(std::mem::replace(&mut rest, tail));
    }
    out.push(rest);
    out
}

/// Map `f` over `items`, splitting across scoped threads, preserving order.
fn run_chunked<T, R, F>(items: Vec<T>, f: &F, min_len: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = plan_threads(n, min_len);
    if threads <= 1 {
        let _guard = RegionGuard::enter();
        return items.into_iter().map(f).collect();
    }
    let mut chunks = split_chunks(items, threads).into_iter();
    let first = chunks.next().expect("non-empty input has a first chunk");
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .map(|chunk| {
                scope.spawn(move || {
                    let _guard = RegionGuard::enter();
                    chunk.into_iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        // The calling thread works the first chunk instead of idling, which
        // also keeps the 1-thread and N-thread floating-point environments
        // identical (not that f32 arithmetic depends on the thread).
        {
            let _guard = RegionGuard::enter();
            out.extend(first.into_iter().map(f));
        }
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out
}

/// A materialised parallel iterator: the items of a region, pre-collected.
///
/// Produced by [`IntoParallelIterator::into_par_iter`] /
/// [`IntoParallelRefIterator::par_iter`]; consumed by [`map`](Self::map),
/// [`for_each`](Self::for_each), [`sum`](Self::sum) or
/// [`collect`](Self::collect).
#[derive(Debug)]
pub struct ParIter<T: Send> {
    items: Vec<T>,
    min_len: usize,
}

impl<T: Send> ParIter<T> {
    fn new(items: Vec<T>) -> Self {
        Self { items, min_len: 1 }
    }

    /// Guarantee every worker at least `min_len` items (rayon's
    /// `IndexedParallelIterator::with_min_len`): regions whose per-item work
    /// is small use this to stay sequential below a worthwhile size.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Map every item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
            min_len: self.min_len,
        }
    }

    /// Run `f` on every item in parallel (no results).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_chunked(self.items, &|item| f(item), self.min_len);
    }

    /// Sum the items (sequentially — the items already exist, so there is no
    /// parallel work left; the order of summation matches a sequential run).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Collect the items in order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel region: executes on [`collect`](Self::collect) /
/// [`for_each`](Self::for_each).
#[derive(Debug)]
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
    min_len: usize,
}

impl<T: Send, F> ParMap<T, F> {
    /// See [`ParIter::with_min_len`].
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Execute the region and collect the mapped items in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        run_chunked(self.items, &self.f, self.min_len)
            .into_iter()
            .collect()
    }

    /// Execute the region for its effects, discarding the mapped values.
    pub fn for_each<R>(self)
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        run_chunked(self.items, &self.f, self.min_len);
    }

    /// Execute the region and sum the mapped items in input order (the
    /// parallel part is the mapping; the reduction is sequential and
    /// therefore deterministic).
    pub fn sum<R, S>(self) -> S
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        S: std::iter::Sum<R>,
    {
        run_chunked(self.items, &self.f, self.min_len)
            .into_iter()
            .sum()
    }
}

/// Multithreaded drop-in for `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Stand-in for `rayon::prelude::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Open a parallel region over the items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter::new(self.into_iter().collect())
    }
}

/// Stand-in for `rayon::prelude::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a reference).
    type Item: Send + 'data;
    /// Open a parallel region over references to the items.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter::new(self.iter().collect())
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter::new(self.iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    /// Serialises tests that mutate `RAYON_NUM_THREADS` (process-global).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Restores (or removes) `RAYON_NUM_THREADS` on drop, so a panicking
    /// test body — `worker_panics_propagate` panics on purpose — cannot
    /// leak its thread count into concurrently queued tests.
    struct EnvRestore {
        prev: Option<String>,
    }

    impl Drop for EnvRestore {
        fn drop(&mut self) {
            match self.prev.take() {
                Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
                None => std::env::remove_var("RAYON_NUM_THREADS"),
            }
        }
    }

    fn with_threads<R>(n: usize, body: impl FnOnce() -> R) -> R {
        // A previous panicking holder poisons the mutex but leaves the data
        // (unit) intact — recover instead of cascading a PoisonError.
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _restore = EnvRestore {
            prev: std::env::var("RAYON_NUM_THREADS").ok(),
        };
        std::env::set_var("RAYON_NUM_THREADS", n.to_string());
        body()
    }

    fn worker_ids(n_items: usize, min_len: usize) -> HashSet<std::thread::ThreadId> {
        (0..n_items)
            .into_par_iter()
            .with_min_len(min_len)
            .map(|_| std::thread::current().id())
            .collect()
    }

    #[test]
    fn into_par_iter_matches_sequential() {
        let doubled: Vec<usize> = (0..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn order_is_preserved_at_every_thread_count() {
        let expected: Vec<usize> = (0..1000).map(|x| x * x).collect();
        for threads in [1, 2, 3, 4, 7] {
            let got: Vec<usize> = with_threads(threads, || {
                (0..1000usize).into_par_iter().map(|x| x * x).collect()
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn multiple_workers_actually_run() {
        let ids = with_threads(4, || worker_ids(64, 1));
        assert!(
            ids.len() >= 2,
            "4 configured threads over 64 items must use several workers, got {}",
            ids.len()
        );
    }

    #[test]
    fn one_thread_stays_on_the_caller() {
        let ids = with_threads(1, || worker_ids(64, 1));
        assert_eq!(ids.len(), 1);
        assert!(ids.contains(&std::thread::current().id()));
    }

    #[test]
    fn min_len_bounds_the_split() {
        // 10 items with min_len 100: a single chunk on the calling thread.
        let ids = with_threads(4, || worker_ids(10, 100));
        assert_eq!(ids.len(), 1);
        assert!(ids.contains(&std::thread::current().id()));
    }

    #[test]
    fn nested_regions_run_inline_on_the_worker() {
        let nested_counts: Vec<usize> = with_threads(4, || {
            (0..8usize)
                .into_par_iter()
                .map(|_| worker_ids(64, 1).len())
                .collect()
        });
        assert!(
            nested_counts.iter().all(|&c| c == 1),
            "nested regions must not spawn: {nested_counts:?}"
        );
        // After the region ends the same thread may parallelise again.
        let after = with_threads(4, || worker_ids(64, 1));
        assert!(after.len() >= 2);
    }

    #[test]
    fn for_each_visits_every_item() {
        let hits = std::sync::atomic::AtomicUsize::new(0);
        with_threads(3, || {
            (0..100usize).into_par_iter().for_each(|_| {
                hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 100);
    }

    #[test]
    fn mapped_sum_is_deterministic() {
        let expected: u64 = (0..500u64).map(|x| x * 3).sum();
        for threads in [1, 4] {
            let got: u64 =
                with_threads(threads, || (0..500u64).into_par_iter().map(|x| x * 3).sum());
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = vec![41u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                let _: Vec<usize> = (0..64usize)
                    .into_par_iter()
                    .map(|x| {
                        assert!(x != 63, "boom");
                        x
                    })
                    .collect();
            })
        });
        assert!(result.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn current_num_threads_reads_the_env() {
        let n = with_threads(7, super::current_num_threads);
        assert_eq!(n, 7);
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _restore = EnvRestore {
            prev: std::env::var("RAYON_NUM_THREADS").ok(),
        };
        std::env::set_var("RAYON_NUM_THREADS", "not-a-number");
        assert!(super::current_num_threads() >= 1);
        std::env::set_var("RAYON_NUM_THREADS", "0");
        assert!(super::current_num_threads() >= 1);
    }
}
