//! Offline stand-in for the `criterion` crate.
//!
//! Keeps benchmark sources compiling and runnable without network access.
//! Each `b.iter(..)` body is executed a small fixed number of times and the
//! mean wall-clock time is printed — no statistics, no reports. Swap in the
//! real criterion for publication-quality numbers.

use std::fmt::Display;
use std::time::Instant;

/// How many times the shim executes each benchmark body.
const SHIM_ITERS: u32 = 3;

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier, as in criterion.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing harness handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    last_mean_ns: f64,
}

impl Bencher {
    /// Run `routine` a fixed number of times, recording the mean duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..SHIM_ITERS {
            std::hint::black_box(routine());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / SHIM_ITERS as f64;
    }
}

fn report(label: &str, bencher: &Bencher) {
    println!(
        "bench {label:<40} {:>12.0} ns/iter (shim)",
        bencher.last_mean_ns
    );
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim ignores sample sizes.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a routine parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Benchmark a routine.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b);
        self
    }

    /// End the group (no-op).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, &b);
        self
    }
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Group benchmark functions under a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_the_routine() {
        let mut count = 0u32;
        let mut b = Bencher::default();
        b.iter(|| count += 1);
        assert_eq!(count, SHIM_ITERS);
    }

    #[test]
    fn groups_and_ids_format() {
        let id = BenchmarkId::new("select", 400);
        assert_eq!(id.to_string(), "select/400");
        let mut c = Criterion;
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("p", 1), &3usize, |b, &n| b.iter(|| n * 2));
        group.finish();
    }
}
