//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the one distribution the workspace samples from — [`Normal`] —
//! using the Box-Muller transform over the shim `rand` generator. Deterministic
//! for a fixed seed; no attempt is made to match the real crate's streams.

use rand::RngCore;

/// Error returned for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw a sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Gaussian distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

/// Float types [`Normal`] is defined over (mirrors `num_traits::Float` as
/// far as this shim needs).
pub trait Float: Copy {
    /// Whether the value is finite and, where relevant, non-negative checks
    /// can be applied.
    fn is_finite_value(self) -> bool;
    /// Whether the value is negative.
    fn is_negative_value(self) -> bool;
    /// Convert from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Convert to `f64`.
    fn to_f64(self) -> f64;
}

impl Float for f32 {
    fn is_finite_value(self) -> bool {
        self.is_finite()
    }
    fn is_negative_value(self) -> bool {
        self < 0.0
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Float for f64 {
    fn is_finite_value(self) -> bool {
        self.is_finite()
    }
    fn is_negative_value(self) -> bool {
        self < 0.0
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
}

impl<F: Float> Normal<F> {
    /// Create a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] if `std_dev` is negative or not finite.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if !std_dev.is_finite_value() || std_dev.is_negative_value() || !mean.is_finite_value() {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        // Box-Muller. The first uniform is mapped away from 0 so the
        // logarithm stays finite; the second sample of the pair is discarded
        // to keep the distribution stateless.
        let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let u2 = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let mag = (-2.0 * u1.ln()).sqrt();
        let z = mag * (2.0 * std::f64::consts::PI * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Normal::<f32>::new(0.0, -1.0).is_err());
        assert!(Normal::<f32>::new(0.0, f32::NAN).is_err());
        assert!(Normal::<f32>::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn moments_are_roughly_correct() {
        let normal = Normal::<f64>::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let normal = Normal::<f32>::new(0.0, 1.0).unwrap();
        let a: Vec<f32> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..8).map(|_| normal.sample(&mut rng)).collect()
        };
        let b: Vec<f32> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..8).map(|_| normal.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
