//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal shim that satisfies the only part of serde the codebase uses:
//! `#[derive(Serialize, Deserialize)]` annotations. The derives expand to
//! nothing — no trait impls are generated — which is sufficient because no
//! code path performs actual serde serialisation (the one former user,
//! `clusterkv-metrics`, hand-rolls its JSON). Swapping this shim for the real
//! crate is a one-line change in the workspace manifest.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
