//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen` and `Rng::gen_range` over
//! half-open ranges — backed by xoshiro256++ seeded through splitmix64.
//! The generator is deterministic for a fixed seed, which is all the
//! reproducibility guarantee the experiments rely on; it makes no attempt to
//! match the byte streams of the real `rand` crate.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw a uniform sample from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types samplable uniformly from a half-open range (`Rng::gen_range`).
pub trait SampleUniform: Sized {
    /// Draw a uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end - range.start) as u64;
                // Modulo bias is negligible for the spans used in tests and
                // irrelevant to determinism.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i64, i32, i16, i8, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let u = <$t as Standard>::sample_standard(rng);
                range.start + u * (range.end - range.start)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via splitmix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        rng.gen_range(5usize..5);
    }
}
