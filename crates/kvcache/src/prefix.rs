//! Cross-session KV prefix sharing: a workspace-global radix tree over token
//! ids whose nodes own refcounted, immutable shared KV pages plus cached
//! selector state (cluster centroids and norm caches).
//!
//! # Why sharing is sound
//!
//! The forward pass is deterministic and keys are rotated at their *absolute*
//! position (RoPE), so two sessions whose prompts agree on `[0, m)` produce
//! bitwise-identical keys, values, key norms — and therefore cluster
//! centroids — for those positions. The store exploits this: the first
//! session to prefill a prompt donates its rows as immutable shared pages;
//! later sessions copy matched rows out of the store instead of recomputing
//! the projections, and adopt the cached per-head clustering state instead of
//! re-running k-means. Sharing changes what is *computed*, never what
//! *attends*: token streams are byte-identical with the store on or off.
//!
//! # Structure
//!
//! A radix (compressed trie) over token ids. Each node covers a span of
//! consecutive prompt positions `[start, start + len)` and owns one
//! [`SharedKvPage`] per `(layer, kv_head)` holding exactly those rows. The
//! node where a full prompt ends may additionally cache per-`(layer, head)`
//! opaque selector state ([`SharedPrefixState`]) exported after that prompt's
//! `PrefillDone`.
//!
//! # Lifecycle
//!
//! - **Lookup** ([`PrefixStore::match_from`]) walks the tree token by token
//!   and reports which shared rows cover a requested range. The engine copies
//!   them into the session's private [`KvStore`]s — the copy *is* the
//!   copy-on-write boundary: shared pages are never mutated; everything past
//!   the first divergence (and every decode append) lands in private rows.
//! - **Insert** ([`PrefixStore::insert`]) runs at `finish_prefill`: the novel
//!   suffix of the prompt is copied out of the session's stores into new
//!   immutable nodes, splitting an existing node if the prompt diverges (or
//!   ends) mid-span.
//! - **Pinning** ([`PrefixStore::pin_prompt`] / [`unpin_prompt`]) counts the
//!   sessions whose admitted prompt traverses a node; `insert` pins the
//!   inserted path itself. `release` unpins; zero-refcount pages stay cached
//!   for temporal reuse and are freed lazily, least-recently-used first,
//!   once `shared_bytes` exceeds the configured capacity. Pinned nodes are
//!   never evicted, so the byte cap is a soft cap while sessions hold
//!   references.
//!
//! [`unpin_prompt`]: PrefixStore::unpin_prompt

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use clusterkv_faults::Fnv64;
use clusterkv_tensor::Matrix;

use crate::store::KvStore;
use crate::types::Bytes;

/// Root node id. The root covers the empty span and is never evicted.
const ROOT: usize = 0;

/// Immutable keys/values/norm-cache rows for one `(layer, kv_head)` slice of
/// a node's span. Row `i` holds prompt position `start + i` of the owning
/// node.
#[derive(Debug, Clone)]
pub struct SharedKvPage {
    /// Key rows (RoPE already applied at the absolute position).
    pub keys: Matrix,
    /// Value rows.
    pub values: Matrix,
    /// Cached squared key norms, aligned with rows.
    pub key_norms: Vec<f32>,
    /// FNV-1a 64 checksum over the row bits, sealed at donation time and
    /// verified before a session adopts the page (DESIGN.md §11).
    pub checksum: u64,
}

impl SharedKvPage {
    /// Build a page and seal its checksum over the payload.
    pub fn sealed(keys: Matrix, values: Matrix, key_norms: Vec<f32>) -> Self {
        let mut page = Self {
            keys,
            values,
            key_norms,
            checksum: 0,
        };
        page.checksum = page.compute_checksum();
        page
    }

    /// FNV-1a 64 over key rows, value rows and the norm cache (through the
    /// f32 bit patterns, so the checksum commits to the exact stored bits).
    pub fn compute_checksum(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.keys.rows() as u64);
        h.write_u64(self.keys.cols() as u64);
        h.write_f32s(self.keys.as_slice());
        h.write_f32s(self.values.as_slice());
        h.write_f32s(&self.key_norms);
        h.finish()
    }

    /// Whether the sealed checksum still matches the payload.
    pub fn verify(&self) -> bool {
        self.checksum == self.compute_checksum()
    }
}

/// Opaque per-head selector state cached at the node where a prompt ends
/// (for ClusterKV: the post-`PrefillDone` clustering — centroids, centroid
/// norms, cluster metadata). The `fingerprint` must commit to everything the
/// state depends on besides the token prefix (policy configuration including
/// the per-head seed, head dimension), so a selector only adopts state it
/// would have computed itself.
#[derive(Clone)]
pub struct SharedPrefixState {
    /// Configuration fingerprint guarding adoption.
    pub fingerprint: u64,
    /// Approximate size, charged against the store's byte cap.
    pub bytes: Bytes,
    /// The state itself; downcast by the owning selector type.
    pub state: Arc<dyn Any + Send + Sync>,
}

impl std::fmt::Debug for SharedPrefixState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPrefixState")
            .field("fingerprint", &self.fingerprint)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

/// Shape and capacity of a [`PrefixStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixStoreConfig {
    /// Soft cap on total shared bytes (pages + cached selector states).
    /// Zero-refcount nodes are evicted LRU-first once the cap is exceeded;
    /// pinned nodes may hold the store above the cap.
    pub capacity: Bytes,
    /// Number of transformer layers (pages per node = `layers * kv_heads`).
    pub layers: usize,
    /// Number of KV heads per layer.
    pub kv_heads: usize,
    /// Key/value vector dimension.
    pub head_dim: usize,
}

/// A contiguous run of shared rows matched inside one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchSegment {
    /// Node owning the rows.
    pub node: usize,
    /// Local row range `[lo, hi)` within the node's pages.
    pub rows: (usize, usize),
}

/// Counters describing the store's effectiveness and current footprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixStoreStats {
    /// Number of `match_from` walks.
    pub lookups: u64,
    /// Prompt positions served from shared pages across all lookups.
    pub hit_tokens: u64,
    /// Prompt positions a lookup could not cover.
    pub miss_tokens: u64,
    /// Nodes created by `insert`.
    pub inserted_nodes: u64,
    /// Nodes split by `insert`.
    pub splits: u64,
    /// Nodes evicted under the byte cap.
    pub evicted_nodes: u64,
    /// Current number of live nodes (excluding the root).
    pub nodes: usize,
    /// Current shared bytes (pages + cached selector states).
    pub shared_bytes: Bytes,
}

#[derive(Debug)]
struct Node {
    /// Token ids covered by this node's span.
    tokens: Vec<usize>,
    /// Absolute prompt position of `tokens[0]`.
    start: usize,
    /// One page per `(layer, kv_head)`, indexed `layer * kv_heads + kv_head`;
    /// empty for the root.
    pages: Vec<SharedKvPage>,
    /// Children keyed by the first token of their span.
    children: BTreeMap<usize, usize>,
    parent: usize,
    /// Number of live sessions whose pinned prompt traverses this node.
    refcount: usize,
    /// LRU stamp (monotone touch counter).
    stamp: u64,
    /// Selector state cached at a prompt-terminal node, keyed by
    /// `(absolute layer, query head)`.
    states: BTreeMap<(usize, usize), SharedPrefixState>,
}

impl Node {
    fn span_len(&self) -> usize {
        self.tokens.len()
    }

    fn page_bytes(&self) -> Bytes {
        let per_page = Bytes::of_f16(
            2 * self.span_len()
                * if self.pages.is_empty() {
                    0
                } else {
                    self.pages[0].keys.cols()
                },
        );
        Bytes(per_page.get() * self.pages.len() as u64)
    }

    fn state_bytes(&self) -> Bytes {
        self.states.values().map(|s| s.bytes).sum()
    }
}

/// Workspace-global store of shared, refcounted, immutable KV prefix pages.
#[derive(Debug)]
pub struct PrefixStore {
    config: PrefixStoreConfig,
    /// Node arena; freed slots are `None` and recycled through `free`.
    nodes: Vec<Option<Node>>,
    free: Vec<usize>,
    bytes: Bytes,
    clock: u64,
    stats: PrefixStoreStats,
}

impl PrefixStore {
    /// Create an empty store.
    ///
    /// # Panics
    ///
    /// Panics if any shape field of the config is zero.
    pub fn new(config: PrefixStoreConfig) -> Self {
        assert!(config.layers > 0, "layers must be positive");
        assert!(config.kv_heads > 0, "kv_heads must be positive");
        assert!(config.head_dim > 0, "head_dim must be positive");
        let root = Node {
            tokens: Vec::new(),
            start: 0,
            pages: Vec::new(),
            children: BTreeMap::new(),
            parent: ROOT,
            refcount: 0,
            stamp: 0,
            states: BTreeMap::new(),
        };
        Self {
            config,
            nodes: vec![Some(root)],
            free: Vec::new(),
            bytes: Bytes(0),
            clock: 0,
            stats: PrefixStoreStats::default(),
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> &PrefixStoreConfig {
        &self.config
    }

    /// Current shared bytes (pages plus cached selector states).
    pub fn shared_bytes(&self) -> Bytes {
        self.bytes
    }

    /// Snapshot of the store's counters.
    pub fn stats(&self) -> PrefixStoreStats {
        let mut s = self.stats;
        s.nodes = self.nodes.iter().flatten().count() - 1;
        s.shared_bytes = self.bytes;
        s
    }

    fn node(&self, id: usize) -> &Node {
        self.nodes[id].as_ref().expect("live node")
    }

    fn node_mut(&mut self, id: usize) -> &mut Node {
        self.nodes[id].as_mut().expect("live node")
    }

    fn page_index(&self, layer: usize, kv_head: usize) -> usize {
        debug_assert!(layer < self.config.layers && kv_head < self.config.kv_heads);
        layer * self.config.kv_heads + kv_head
    }

    /// Shared page of `node` for one `(layer, kv_head)`.
    ///
    /// # Panics
    ///
    /// Panics if the node is not live or is the root, or the indices are out
    /// of range.
    pub fn page(&self, node: usize, layer: usize, kv_head: usize) -> &SharedKvPage {
        let idx = self.page_index(layer, kv_head);
        &self.node(node).pages[idx]
    }

    /// Flip the sealed checksum of the page of `node` for one
    /// `(layer, kv_head)` — deterministic fault injection for the integrity
    /// suite. Only the checksum is damaged; the shared rows stay ground
    /// truth, so detection and repair move bytes and time, never what
    /// attends. Returns whether the node is live and holds that page.
    pub fn corrupt_page(&mut self, node: usize, layer: usize, kv_head: usize) -> bool {
        let idx = self.page_index(layer, kv_head);
        match self.nodes.get_mut(node).and_then(Option::as_mut) {
            Some(n) => match n.pages.get_mut(idx) {
                Some(page) => {
                    page.checksum ^= clusterkv_faults::CORRUPTION_MASK;
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// Verify one page's checksum. `None` when the node is not live or the
    /// page index is out of range.
    pub fn verify_page(&self, node: usize, layer: usize, kv_head: usize) -> Option<bool> {
        let idx = self.page_index(layer, kv_head);
        let n = self.nodes.get(node)?.as_ref()?;
        n.pages.get(idx).map(SharedKvPage::verify)
    }

    // analyzer: recovery-path
    /// Re-seal a page whose checksum failed verification by recomputing it
    /// from the pristine shared rows — modeling recompute-and-re-donate of
    /// the shared span. Returns the page's byte footprint (the re-donation
    /// traffic), or `None` when the node or page does not exist.
    pub fn repair_page(&mut self, node: usize, layer: usize, kv_head: usize) -> Option<Bytes> {
        let idx = self.page_index(layer, kv_head);
        let n = self.nodes.get_mut(node)?.as_mut()?;
        let page = n.pages.get_mut(idx)?;
        page.checksum = page.compute_checksum();
        Some(Bytes::of_f16(2 * page.keys.rows() * page.keys.cols()))
    }

    fn touch(&mut self, id: usize) {
        self.clock += 1;
        let clock = self.clock;
        self.node_mut(id).stamp = clock;
    }

    /// Longest prefix of `tokens` covered by *whole* nodes — the coverage
    /// that [`pin_prompt`] would protect. Read-only: no LRU touch, no stats.
    ///
    /// This is deliberately node-granular (it stops at the last complete node
    /// boundary) so admission control can reserve against a length that
    /// pinning then guarantees: pinned nodes cannot be evicted and token
    /// walks are insensitive to later splits, so the match can only grow.
    ///
    /// [`pin_prompt`]: PrefixStore::pin_prompt
    pub fn peek_match(&self, tokens: &[usize]) -> usize {
        let mut cur = ROOT;
        let mut pos = 0;
        while pos < tokens.len() {
            let Some(&child) = self.node(cur).children.get(&tokens[pos]) else {
                break;
            };
            let span = &self.node(child).tokens;
            if tokens.len() - pos >= span.len() && tokens[pos..pos + span.len()] == span[..] {
                pos += span.len();
                cur = child;
            } else {
                break;
            }
        }
        pos
    }

    /// Token-granular longest-match walk over `tokens`, returning the total
    /// matched length and the shared-row segments covering positions
    /// `[already, matched)`. Touches LRU stamps along the path and records
    /// hit/miss counters.
    ///
    /// `already` is the number of leading positions the caller has previously
    /// consumed (their segments are not re-reported). If the tree shrank in
    /// the meantime the walk may match fewer than `already` tokens; the
    /// result is then simply empty.
    pub fn match_from(&mut self, already: usize, tokens: &[usize]) -> (usize, Vec<MatchSegment>) {
        self.stats.lookups += 1;
        let mut segments = Vec::new();
        let mut cur = ROOT;
        let mut pos = 0;
        while pos < tokens.len() {
            let Some(&child) = self.node(cur).children.get(&tokens[pos]) else {
                break;
            };
            let span_len = self.node(child).span_len();
            let take = span_len.min(tokens.len() - pos);
            let matched_in_child = {
                let span = &self.node(child).tokens;
                let mut k = 0;
                while k < take && span[k] == tokens[pos + k] {
                    k += 1;
                }
                k
            };
            if matched_in_child > 0 {
                self.touch(child);
                let abs_lo = pos;
                let abs_hi = pos + matched_in_child;
                if abs_hi > already {
                    let local_lo = already.saturating_sub(abs_lo).min(matched_in_child);
                    segments.push(MatchSegment {
                        node: child,
                        rows: (local_lo, matched_in_child),
                    });
                }
            }
            pos += matched_in_child;
            if matched_in_child < span_len {
                break;
            }
            cur = child;
        }
        self.stats.hit_tokens += pos.saturating_sub(already) as u64;
        self.stats.miss_tokens += (tokens.len() - pos) as u64;
        (pos, segments)
    }

    /// Insert `tokens` (a full prompt) with its KV rows taken from the
    /// session's per-`[layer][kv_head]` stores (each holding exactly the
    /// prompt rows `0..tokens.len()`). Splits an existing node if the prompt
    /// diverges or ends mid-span, so afterwards the prompt ends exactly at a
    /// node boundary. Returns the terminal node id.
    ///
    /// Insert *pins* the prompt's full path on behalf of the caller (so the
    /// eviction pass it ends with can never free the freshly donated pages);
    /// pair every insert with an [`unpin_prompt`] of the full prompt at
    /// session release.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or the stores do not match the configured
    /// shape and length.
    ///
    /// [`unpin_prompt`]: PrefixStore::unpin_prompt
    pub fn insert(&mut self, tokens: &[usize], kv: &[Vec<KvStore>]) -> usize {
        assert!(!tokens.is_empty(), "cannot insert an empty prompt");
        assert_eq!(kv.len(), self.config.layers, "layer count mismatch");
        let mut cur = ROOT;
        let mut pos = 0;
        let terminal = loop {
            if pos == tokens.len() {
                break cur;
            }
            let next = self.node(cur).children.get(&tokens[pos]).copied();
            let Some(child) = next else {
                let leaf = self.new_leaf(cur, pos, &tokens[pos..], kv);
                break leaf;
            };
            let k = {
                let span = &self.node(child).tokens;
                let take = span.len().min(tokens.len() - pos);
                let mut k = 0;
                while k < take && span[k] == tokens[pos + k] {
                    k += 1;
                }
                k
            };
            self.touch(child);
            if k == self.node(child).span_len() {
                self.node_mut(child).refcount += 1;
                pos += k;
                cur = child;
                continue;
            }
            // The prompt ends or diverges mid-span: split so a boundary
            // exists at `pos + k`, then either terminate (prompt exhausted)
            // or fall through to create the divergent leaf next iteration.
            // The pin lands on the prefix half only — the suffix is not on
            // this prompt's path (`split` copies the pre-split refcount to
            // the suffix for the sessions that did pin through it).
            let prefix_half = self.split(child, k);
            self.node_mut(prefix_half).refcount += 1;
            pos += k;
            if pos == tokens.len() {
                break prefix_half;
            }
            cur = prefix_half;
        };
        self.enforce_capacity();
        terminal
    }

    /// Create a leaf under `parent` covering `span` at absolute start `pos`,
    /// copying rows `[pos, pos + span.len())` out of the session stores.
    fn new_leaf(
        &mut self,
        parent: usize,
        pos: usize,
        span: &[usize],
        kv: &[Vec<KvStore>],
    ) -> usize {
        let mut pages = Vec::with_capacity(self.config.layers * self.config.kv_heads);
        for layer_stores in kv.iter() {
            assert_eq!(
                layer_stores.len(),
                self.config.kv_heads,
                "kv head count mismatch"
            );
            for store in layer_stores {
                assert!(
                    store.len() >= pos + span.len(),
                    "session store shorter than the prompt being inserted"
                );
                pages.push(SharedKvPage::sealed(
                    store.keys().slice_rows(pos, pos + span.len()),
                    store.values().slice_rows(pos, pos + span.len()),
                    store.key_norms()[pos..pos + span.len()].to_vec(),
                ));
            }
        }
        self.clock += 1;
        let node = Node {
            tokens: span.to_vec(),
            start: pos,
            pages,
            children: BTreeMap::new(),
            parent,
            // Born pinned by the inserting session (see `insert`).
            refcount: 1,
            stamp: self.clock,
            states: BTreeMap::new(),
        };
        self.bytes += node.page_bytes();
        let id = self.alloc(node);
        self.node_mut(parent).children.insert(span[0], id);
        self.stats.inserted_nodes += 1;
        id
    }

    /// Split `id` at local offset `k` (0 < k < span length) into a prefix
    /// half (keeping the id) and a new suffix node. The suffix inherits the
    /// children, cached selector states, refcount, and LRU stamp; total
    /// bytes are conserved. Returns the prefix half's id (== `id`).
    fn split(&mut self, id: usize, k: usize) -> usize {
        let node = self.node(id);
        let len = node.span_len();
        assert!(k > 0 && k < len, "split offset must be interior");
        let suffix_tokens = node.tokens[k..].to_vec();
        let suffix_start = node.start + k;
        let parent_refcount = node.refcount;
        let parent_stamp = node.stamp;
        let suffix_pages: Vec<SharedKvPage> = node
            .pages
            .iter()
            .map(|p| {
                SharedKvPage::sealed(
                    p.keys.slice_rows(k, len),
                    p.values.slice_rows(k, len),
                    p.key_norms[k..].to_vec(),
                )
            })
            .collect();
        let node = self.node_mut(id);
        let moved_children = std::mem::take(&mut node.children);
        let moved_states = std::mem::take(&mut node.states);
        node.tokens.truncate(k);
        let trimmed: Vec<SharedKvPage> = node
            .pages
            .iter()
            .map(|p| {
                SharedKvPage::sealed(
                    p.keys.slice_rows(0, k),
                    p.values.slice_rows(0, k),
                    p.key_norms[..k].to_vec(),
                )
            })
            .collect();
        node.pages = trimmed;
        let suffix = Node {
            tokens: suffix_tokens,
            start: suffix_start,
            pages: suffix_pages,
            children: moved_children,
            parent: id,
            refcount: parent_refcount,
            stamp: parent_stamp,
            states: moved_states,
        };
        let first = suffix.tokens[0];
        let suffix_id = self.alloc(suffix);
        for (_, child) in self.node(suffix_id).children.clone() {
            self.node_mut(child).parent = suffix_id;
        }
        self.node_mut(id).children.insert(first, suffix_id);
        self.stats.splits += 1;
        id
    }

    fn alloc(&mut self, node: Node) -> usize {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = Some(node);
            id
        } else {
            self.nodes.push(Some(node));
            self.nodes.len() - 1
        }
    }

    /// Pin the longest whole-node prefix of `tokens`: every fully matched
    /// node's refcount is incremented. Returns the pinned length (a node
    /// boundary). The caller must later [`unpin_prompt`] with exactly the
    /// pinned prefix `&tokens[..returned]`.
    ///
    /// [`unpin_prompt`]: PrefixStore::unpin_prompt
    pub fn pin_prompt(&mut self, tokens: &[usize]) -> usize {
        let mut cur = ROOT;
        let mut pos = 0;
        while pos < tokens.len() {
            let next = self.node(cur).children.get(&tokens[pos]).copied();
            let Some(child) = next else {
                break;
            };
            let span = &self.node(child).tokens;
            if tokens.len() - pos >= span.len() && tokens[pos..pos + span.len()] == span[..] {
                pos += span.len();
                self.node_mut(child).refcount += 1;
                self.touch(child);
                cur = child;
            } else {
                break;
            }
        }
        pos
    }

    /// Undo a [`pin_prompt`] of exactly this token prefix. Sound across
    /// intervening splits: a split copies the refcount to both halves and a
    /// pinned prefix always ends at a node boundary, so the walk decrements
    /// precisely the nodes carrying this pin. Triggers eviction if the store
    /// is over its byte cap.
    ///
    /// # Panics
    ///
    /// Panics if the prefix is not fully present or a refcount would
    /// underflow — both indicate an unbalanced pin/unpin pairing.
    ///
    /// [`pin_prompt`]: PrefixStore::pin_prompt
    pub fn unpin_prompt(&mut self, tokens: &[usize]) {
        let mut cur = ROOT;
        let mut pos = 0;
        while pos < tokens.len() {
            let child = *self
                .node(cur)
                .children
                .get(&tokens[pos])
                .expect("unpin walk must follow a pinned path");
            let span_len = self.node(child).span_len();
            assert!(
                tokens.len() - pos >= span_len
                    && self.node(child).tokens[..] == tokens[pos..pos + span_len],
                "unpin prefix must end at a node boundary"
            );
            let rc = &mut self.node_mut(child).refcount;
            assert!(*rc > 0, "refcount underflow");
            *rc -= 1;
            pos += span_len;
            cur = child;
        }
        self.enforce_capacity();
    }

    /// Whether the terminal node already caches selector states.
    pub fn has_selector_states(&self, node: usize) -> bool {
        !self.node(node).states.is_empty()
    }

    /// Cached selector state for one `(absolute layer, query head)` at a
    /// prompt-terminal node.
    pub fn selector_state(
        &self,
        node: usize,
        layer: usize,
        head: usize,
    ) -> Option<&SharedPrefixState> {
        self.node(node).states.get(&(layer, head))
    }

    /// Cache selector state at a prompt-terminal node, charging its bytes
    /// against the cap (replacing any previous state for the same head).
    pub fn cache_selector_state(
        &mut self,
        node: usize,
        layer: usize,
        head: usize,
        state: SharedPrefixState,
    ) {
        let bytes = state.bytes;
        if let Some(old) = self.node_mut(node).states.insert((layer, head), state) {
            self.bytes = Bytes(self.bytes.get() - old.bytes.get());
        }
        self.bytes += bytes;
    }

    /// Evict zero-refcount, childless nodes (LRU-first, deterministic
    /// tie-break on node id) until the store fits its byte cap or nothing
    /// more can be freed. The root and pinned nodes are never evicted.
    fn enforce_capacity(&mut self) {
        while self.bytes > self.config.capacity {
            let victim = self
                .nodes
                .iter()
                .enumerate()
                .skip(1)
                .filter_map(|(id, slot)| slot.as_ref().map(|n| (id, n)))
                .filter(|(_, n)| n.refcount == 0 && n.children.is_empty())
                .min_by_key(|(id, n)| (n.stamp, *id))
                .map(|(id, _)| id);
            match victim {
                Some(id) => self.remove_node(id),
                None => break,
            }
        }
    }

    fn remove_node(&mut self, id: usize) {
        let node = self.nodes[id].take().expect("live node");
        debug_assert_eq!(node.refcount, 0);
        debug_assert!(node.children.is_empty());
        self.bytes = Bytes(self.bytes.get() - (node.page_bytes() + node.state_bytes()).get());
        let parent = node.parent;
        self.node_mut(parent).children.remove(&node.tokens[0]);
        self.free.push(id);
        self.stats.evicted_nodes += 1;
    }

    /// Recompute total bytes from scratch (test/diagnostic aid; the
    /// incremental counter must always agree — property-tested).
    pub fn recomputed_bytes(&self) -> Bytes {
        self.nodes
            .iter()
            .flatten()
            .map(|n| n.page_bytes() + n.state_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const DIM: usize = 4;

    fn test_config(capacity: u64) -> PrefixStoreConfig {
        PrefixStoreConfig {
            capacity: Bytes(capacity),
            layers: 2,
            kv_heads: 1,
            head_dim: DIM,
        }
    }

    /// Session-like KV: one store per [layer][kv_head], row i derived from
    /// (token id, position) so shared positions have identical rows across
    /// "sessions" exactly like the deterministic forward pass guarantees.
    fn kv_for(tokens: &[usize]) -> Vec<Vec<KvStore>> {
        (0..2)
            .map(|layer| {
                vec![{
                    let mut s = KvStore::new(DIM);
                    for (pos, &t) in tokens.iter().enumerate() {
                        let base = (layer * 1000 + t * 31 + pos) as f32;
                        let k: Vec<f32> = (0..DIM).map(|d| base + d as f32).collect();
                        let v: Vec<f32> = (0..DIM).map(|d| -(base + d as f32)).collect();
                        s.append(&k, &v);
                    }
                    s
                }]
            })
            .collect()
    }

    fn gather_rows(store: &PrefixStore, segments: &[MatchSegment], layer: usize) -> Vec<Vec<f32>> {
        let mut rows = Vec::new();
        for seg in segments {
            let page = store.page(seg.node, layer, 0);
            for r in seg.rows.0..seg.rows.1 {
                rows.push(page.keys.row(r).to_vec());
            }
        }
        rows
    }

    #[test]
    fn empty_store_matches_nothing() {
        let mut store = PrefixStore::new(test_config(u64::MAX));
        assert_eq!(store.peek_match(&[1, 2, 3]), 0);
        let (matched, segs) = store.match_from(0, &[1, 2, 3]);
        assert_eq!(matched, 0);
        assert!(segs.is_empty());
        let s = store.stats();
        assert_eq!(s.lookups, 1);
        assert_eq!(s.miss_tokens, 3);
    }

    #[test]
    fn insert_then_full_match_returns_all_rows() {
        let mut store = PrefixStore::new(test_config(u64::MAX));
        let prompt = [5, 6, 7, 8];
        let kv = kv_for(&prompt);
        let terminal = store.insert(&prompt, &kv);
        assert_eq!(store.peek_match(&prompt), 4);
        let (matched, segs) = store.match_from(0, &prompt);
        assert_eq!(matched, 4);
        let rows = gather_rows(&store, &segs, 1);
        for (pos, row) in rows.iter().enumerate() {
            assert_eq!(row.as_slice(), kv[1][0].key(pos));
        }
        assert!(!store.has_selector_states(terminal));
    }

    #[test]
    fn divergence_splits_and_both_prompts_match_fully() {
        let mut store = PrefixStore::new(test_config(u64::MAX));
        let a = [1, 2, 3, 4, 5];
        let b = [1, 2, 3, 9, 9];
        store.insert(&a, &kv_for(&a));
        store.insert(&b, &kv_for(&b));
        assert_eq!(store.stats().splits, 1);
        assert_eq!(store.peek_match(&a), 5);
        assert_eq!(store.peek_match(&b), 5);
        assert_eq!(store.peek_match(&[1, 2, 3]), 3);
        // peek_match is node-granular: [1, 2, 9] diverges inside the [1, 2, 3]
        // node, so nothing whole-node is pinnable — but the token-granular
        // walk still finds the two shared rows.
        assert_eq!(store.peek_match(&[1, 2, 9]), 0);
        assert_eq!(store.match_from(0, &[1, 2, 9]).0, 2);
        // Rows survive the split bitwise.
        let (m, segs) = store.match_from(0, &a);
        assert_eq!(m, 5);
        let rows = gather_rows(&store, &segs, 0);
        let kv = kv_for(&a);
        for (pos, row) in rows.iter().enumerate() {
            assert_eq!(row.as_slice(), kv[0][0].key(pos));
        }
    }

    #[test]
    fn prompt_ending_mid_span_splits_to_a_boundary() {
        let mut store = PrefixStore::new(test_config(u64::MAX));
        let long = [1, 2, 3, 4, 5, 6];
        store.insert(&long, &kv_for(&long));
        let short = [1, 2, 3];
        let terminal = store.insert(&short, &kv_for(&short));
        assert_eq!(store.stats().splits, 1);
        // Pinning the short prompt now covers it fully.
        assert_eq!(store.pin_prompt(&short), 3);
        store.unpin_prompt(&short);
        assert_eq!(store.peek_match(&long), 6);
        let _ = terminal;
    }

    #[test]
    fn match_from_skips_already_consumed_rows() {
        let mut store = PrefixStore::new(test_config(u64::MAX));
        let prompt = [1, 2, 3, 4, 5, 6];
        store.insert(&prompt, &kv_for(&prompt));
        let (matched, segs) = store.match_from(4, &prompt);
        assert_eq!(matched, 6);
        let rows = gather_rows(&store, &segs, 0);
        assert_eq!(rows.len(), 2);
        let kv = kv_for(&prompt);
        assert_eq!(rows[0].as_slice(), kv[0][0].key(4));
        assert_eq!(rows[1].as_slice(), kv[0][0].key(5));
    }

    #[test]
    fn pinned_nodes_survive_eviction_pressure() {
        // Capacity of zero: everything unpinned is evicted immediately. The
        // inserting sessions' pins (insert pins its own path) keep both
        // prompts alive until release.
        let mut store = PrefixStore::new(test_config(0));
        let a = [1, 2, 3];
        let b = [7, 8];
        store.insert(&a, &kv_for(&a));
        store.insert(&b, &kv_for(&b));
        assert_eq!(store.peek_match(&a), 3);
        assert_eq!(store.peek_match(&b), 2);
        // Releasing b frees it immediately under the zero cap; a survives.
        store.unpin_prompt(&b);
        assert_eq!(store.peek_match(&a), 3);
        assert_eq!(store.peek_match(&b), 0);
        store.unpin_prompt(&a);
        assert_eq!(store.peek_match(&a), 0);
        assert_eq!(store.shared_bytes(), Bytes(0));
        assert_eq!(store.recomputed_bytes(), Bytes(0));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // Each 2-token prompt occupies 2 tokens * 4 dims * (K+V) * 2 bytes
        // * 2 layers = 64 bytes. Cap at 128 → two released prompts fit.
        let mut store = PrefixStore::new(test_config(128));
        let a = [1, 2];
        let b = [3, 4];
        let c = [5, 6];
        store.insert(&a, &kv_for(&a));
        store.unpin_prompt(&a);
        store.insert(&b, &kv_for(&b));
        store.unpin_prompt(&b);
        // Touch a so b becomes the LRU victim.
        let _ = store.match_from(0, &a);
        store.insert(&c, &kv_for(&c));
        store.unpin_prompt(&c);
        assert_eq!(store.peek_match(&a), 2);
        assert_eq!(store.peek_match(&b), 0);
        assert_eq!(store.peek_match(&c), 2);
        assert_eq!(store.stats().evicted_nodes, 1);
    }

    #[test]
    fn selector_state_roundtrip_and_bytes() {
        let mut store = PrefixStore::new(test_config(u64::MAX));
        let prompt = [1, 2, 3];
        let terminal = store.insert(&prompt, &kv_for(&prompt));
        let before = store.shared_bytes();
        store.cache_selector_state(
            terminal,
            1,
            0,
            SharedPrefixState {
                fingerprint: 42,
                bytes: Bytes(100),
                state: Arc::new(7usize),
            },
        );
        assert_eq!(store.shared_bytes(), before + Bytes(100));
        assert_eq!(store.recomputed_bytes(), store.shared_bytes());
        assert!(store.has_selector_states(terminal));
        let st = store.selector_state(terminal, 1, 0).expect("cached");
        assert_eq!(st.fingerprint, 42);
        assert_eq!(*st.state.downcast_ref::<usize>().expect("usize"), 7);
        assert!(store.selector_state(terminal, 0, 0).is_none());
    }

    #[test]
    fn split_moves_states_to_the_suffix_half() {
        let mut store = PrefixStore::new(test_config(u64::MAX));
        let long = [1, 2, 3, 4];
        let terminal = store.insert(&long, &kv_for(&long));
        store.cache_selector_state(
            terminal,
            0,
            0,
            SharedPrefixState {
                fingerprint: 1,
                bytes: Bytes(8),
                state: Arc::new(()),
            },
        );
        let short = [1, 2];
        let short_terminal = store.insert(&short, &kv_for(&short));
        assert!(!store.has_selector_states(short_terminal));
        let long_terminal = store.insert(&long, &kv_for(&long));
        assert!(store.has_selector_states(long_terminal));
        assert_eq!(store.recomputed_bytes(), store.shared_bytes());
    }

    /// Reference longest-common-prefix over a set of retained prompts.
    fn naive_match(prompts: &[Vec<usize>], query: &[usize]) -> usize {
        prompts
            .iter()
            .map(|p| {
                p.iter()
                    .zip(query.iter())
                    .take_while(|(a, b)| a == b)
                    .count()
            })
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn shared_pages_seal_verify_corrupt_repair() {
        let mut store = PrefixStore::new(test_config(u64::MAX));
        let prompt = [1, 2, 3, 4];
        let node = store.insert(&prompt, &kv_for(&prompt));
        assert_eq!(store.verify_page(node, 0, 0), Some(true));
        assert!(store.corrupt_page(node, 0, 0));
        assert_eq!(store.verify_page(node, 0, 0), Some(false));
        // Repair recomputes from the pristine shared rows and charges the
        // re-donation: 2 tensors · 4 rows · DIM.
        let moved = store.repair_page(node, 0, 0);
        assert_eq!(moved, Some(Bytes::of_f16(2 * 4 * DIM)));
        assert_eq!(store.verify_page(node, 0, 0), Some(true));
        // Dead/unknown nodes report absence, not failure.
        assert!(!store.corrupt_page(9999, 0, 0));
        assert_eq!(store.verify_page(9999, 0, 0), None);
        assert_eq!(store.repair_page(9999, 0, 0), None);
        store.unpin_prompt(&prompt);
    }

    #[test]
    fn split_reseals_both_halves() {
        let mut store = PrefixStore::new(test_config(u64::MAX));
        let a = [1, 2, 3, 4];
        let b = [1, 2, 9, 9];
        let na = store.insert(&a, &kv_for(&a));
        let nb = store.insert(&b, &kv_for(&b));
        // Inserting `b` split `a`'s node at offset 2; every page of both
        // terminals (and the shared prefix half) must carry a fresh seal.
        for node in [na, nb] {
            for layer in 0..2 {
                assert_eq!(store.verify_page(node, layer, 0), Some(true));
            }
        }
        store.unpin_prompt(&a);
        store.unpin_prompt(&b);
    }

    fn arb_prompt() -> impl Strategy<Value = Vec<usize>> {
        proptest::collection::vec(0usize..4, 1..12)
    }

    proptest! {
        #[test]
        fn radix_longest_match_equals_naive_reference(
            prompts in proptest::collection::vec(arb_prompt(), 1..10),
            query in arb_prompt(),
        ) {
            let mut store = PrefixStore::new(test_config(u64::MAX));
            for p in &prompts {
                store.insert(p, &kv_for(p));
            }
            let (matched, _) = store.match_from(0, &query);
            prop_assert_eq!(matched, naive_match(&prompts, &query));
            // Token-granular matching dominates node-granular pinning.
            prop_assert!(store.peek_match(&query) <= matched);
        }

        #[test]
        fn matched_rows_are_bitwise_identical_to_the_source(
            prompts in proptest::collection::vec(arb_prompt(), 1..8),
            query in arb_prompt(),
        ) {
            let mut store = PrefixStore::new(test_config(u64::MAX));
            for p in &prompts {
                store.insert(p, &kv_for(p));
            }
            let (matched, segs) = store.match_from(0, &query);
            let kv = kv_for(&query);
            for (layer, layer_kv) in kv.iter().enumerate().take(2) {
                let rows = gather_rows(&store, &segs, layer);
                prop_assert_eq!(rows.len(), matched);
                for (pos, row) in rows.iter().enumerate() {
                    prop_assert_eq!(row.as_slice(), layer_kv[0].key(pos));
                }
            }
            // Norm caches travel with the rows.
            let mut norm_pos = 0usize;
            for seg in &segs {
                let page = store.page(seg.node, 0, 0);
                for r in seg.rows.0..seg.rows.1 {
                    prop_assert_eq!(page.key_norms[r], kv[0][0].key_norm_sq(norm_pos));
                    norm_pos += 1;
                }
            }
        }

        #[test]
        fn refcounts_never_underflow_and_bytes_stay_exact(
            prompts in proptest::collection::vec(arb_prompt(), 1..40),
            opcodes in proptest::collection::vec(0u8..3, 1..40),
            cap_sel in 0usize..4,
        ) {
            let capacity = [0u64, 200, 2000, u64::MAX][cap_sel];
            let mut store = PrefixStore::new(test_config(capacity));
            // Live pins: (prompt, pinned_len) — released in arbitrary
            // interleavings driven by the op stream.
            let mut pins: Vec<(Vec<usize>, usize)> = Vec::new();
            for (prompt, &op) in prompts.into_iter().zip(opcodes.iter()) {
                match op {
                    // Create: insert (pins its own path — the engine's
                    // finish_prefill).
                    0 => {
                        store.insert(&prompt, &kv_for(&prompt));
                        let len = prompt.len();
                        pins.push((prompt, len));
                    }
                    // Release the oldest live session.
                    1 => {
                        if !pins.is_empty() {
                            let (p, len) = pins.remove(0);
                            store.unpin_prompt(&p[..len]);
                        }
                    }
                    // Lookup traffic (touches LRU stamps).
                    _ => {
                        let _ = store.match_from(0, &prompt);
                    }
                }
                prop_assert_eq!(store.recomputed_bytes(), store.shared_bytes());
                if capacity == 0 {
                    // Only pinned paths may remain.
                    for (p, len) in &pins {
                        prop_assert_eq!(store.peek_match(p), *len);
                    }
                }
            }
            // Drain every live pin: must not panic (no underflow) and with a
            // zero cap must leave the store empty.
            for (p, len) in pins.drain(..) {
                store.unpin_prompt(&p[..len]);
            }
            prop_assert_eq!(store.recomputed_bytes(), store.shared_bytes());
            if capacity == 0 {
                prop_assert_eq!(store.shared_bytes(), Bytes(0));
                prop_assert_eq!(store.stats().nodes, 0);
            }
        }

        #[test]
        fn peek_match_is_a_stable_lower_bound_under_later_inserts(
            first in proptest::collection::vec(arb_prompt(), 1..6),
            later in proptest::collection::vec(arb_prompt(), 0..6),
            query in arb_prompt(),
        ) {
            let mut store = PrefixStore::new(test_config(u64::MAX));
            for p in &first {
                store.insert(p, &kv_for(p));
            }
            let pinned = store.pin_prompt(&query[..store.peek_match(&query)]);
            for p in &later {
                store.insert(p, &kv_for(p));
            }
            // Splits and inserts may only grow the match; the pinned prefix
            // stays intact and unpinnable.
            prop_assert!(store.peek_match(&query) >= pinned);
            store.unpin_prompt(&query[..pinned]);
        }
    }
}
