//! Compressed KV tier: SLERP cluster merging plus integer quantization
//! (DESIGN.md §9).
//!
//! ClusterKV's recallable compression selects *which* KV participates in
//! attention but never shrinks the bytes a cluster occupies. This module adds
//! the third residency state between Resident and Paged:
//!
//! * **Cluster merging** — semantically-near key/value pairs inside one
//!   cluster are merged into a single SLERP interpolant (the MiniCache /
//!   SemantiCache observation that adjacent-layer and intra-cluster KV are
//!   highly similar). A retention mask keeps outlier tokens — pairs whose
//!   cosine similarity falls below the merge threshold — exact.
//! * **Cold-page quantization** — merged-or-retained vectors are stored as
//!   int8 (or int4) with one symmetric per-cluster scale per tensor, as in
//!   "Lossless KV Cache Compression to 2%". The f16 cost model makes int8 a
//!   2x and int4 a 4x data reduction before merging.
//!
//! Everything here is *modeled* compression: the reconstructed (merged +
//! quantize-round-tripped) rows are materialized as `f32` for compute, while
//! byte accounting reflects the compressed layout. With
//! [`CompressionConfig::is_lossless`] (merge threshold `0`, quantization
//! off), reconstruction is the identity and compressed bytes equal exact
//! bytes — the property every parity suite leans on.

use crate::cluster_cache::PageKey;
use crate::types::Bytes;
use clusterkv_faults::Fnv64;
use clusterkv_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Integer width used for cold-page KV storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantMode {
    /// No quantization: cold pages stay f16 (the exact cost model).
    #[default]
    Off,
    /// Symmetric int8 with one per-cluster scale per tensor (2x vs f16).
    Int8,
    /// Symmetric int4 with one per-cluster scale per tensor (4x vs f16).
    Int4,
}

impl QuantMode {
    /// Bits per stored value (16 for the f16 exact representation).
    pub fn bits(self) -> u64 {
        match self {
            QuantMode::Off => 16,
            QuantMode::Int8 => 8,
            QuantMode::Int4 => 4,
        }
    }

    /// Largest representable magnitude of the signed integer grid.
    pub fn qmax(self) -> f32 {
        match self {
            QuantMode::Off => 0.0,
            QuantMode::Int8 => 127.0,
            QuantMode::Int4 => 7.0,
        }
    }

    /// Bytes for `values` stored values at this width (int4 packs two per
    /// byte; the odd trailing nibble still occupies a byte).
    pub fn data_bytes(self, values: usize) -> Bytes {
        Bytes((values as u64 * self.bits()).div_ceil(8))
    }

    /// Stable discriminant for config fingerprints.
    pub fn fingerprint(self) -> u64 {
        match self {
            QuantMode::Off => 0,
            QuantMode::Int8 => 1,
            QuantMode::Int4 => 2,
        }
    }
}

impl std::fmt::Display for QuantMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantMode::Off => write!(f, "f16"),
            QuantMode::Int8 => write!(f, "int8"),
            QuantMode::Int4 => write!(f, "int4"),
        }
    }
}

/// Bytes of the two per-cluster f32 scales (one for K, one for V) a
/// quantized page carries.
const SCALE_OVERHEAD: u64 = 8;

/// Knobs of the compressed tier. The default is **lossless**: merge
/// threshold `0` and quantization off, under which every code path below is
/// the identity and byte accounting equals the exact f16 model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CompressionConfig {
    /// Cosine-distance ceiling for merging a pair of intra-cluster tokens:
    /// a consecutive pair with `1 - cos(k_i, k_j) <= merge_threshold` is
    /// replaced by one SLERP interpolant. `0.0` disables merging entirely
    /// (no pair has distance `<= 0` — identical keys stay exact too, which
    /// is what makes the guarantee a hard one rather than a numerical one).
    pub merge_threshold: f32,
    /// Integer width of cold-page storage.
    pub quant: QuantMode,
}

impl CompressionConfig {
    /// The lossless configuration (the default).
    pub fn lossless() -> Self {
        Self::default()
    }

    /// Int8 cold pages without merging (2x vs f16).
    pub fn int8() -> Self {
        Self {
            merge_threshold: 0.0,
            quant: QuantMode::Int8,
        }
    }

    /// Int4 cold pages without merging (4x vs f16).
    pub fn int4() -> Self {
        Self {
            merge_threshold: 0.0,
            quant: QuantMode::Int4,
        }
    }

    /// Set the merge threshold.
    pub fn with_merge_threshold(mut self, threshold: f32) -> Self {
        self.merge_threshold = threshold;
        self
    }

    /// Set the quantization mode.
    pub fn with_quant(mut self, quant: QuantMode) -> Self {
        self.quant = quant;
        self
    }

    /// Whether this configuration is exactly lossless: no merging and no
    /// quantization. Selectors emit recall-exact plans under this config and
    /// the cache never demotes, so token streams stay byte-identical.
    pub fn is_lossless(&self) -> bool {
        self.merge_threshold == 0.0 && self.quant == QuantMode::Off
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: the merge threshold
    /// must be finite and in `[0, 1]` (cosine distance of unit vectors).
    pub fn validate(&self) -> Result<(), String> {
        if !self.merge_threshold.is_finite() {
            return Err("merge_threshold must be finite".to_string());
        }
        if !(0.0..=1.0).contains(&self.merge_threshold) {
            return Err(format!(
                "merge_threshold must be in [0, 1], got {}",
                self.merge_threshold
            ));
        }
        Ok(())
    }

    /// Words folded into config fingerprints (prefix-store compatibility):
    /// two configs share selector state only if they compress identically.
    pub fn fingerprint_words(&self) -> [u64; 2] {
        [
            self.merge_threshold.to_bits() as u64,
            self.quant.fingerprint(),
        ]
    }

    /// Modeled size of a cold page of `tokens` tokens whose exact (f16) cost
    /// is `exact_bytes_per_token` per token: quantized data at the integer
    /// width plus the two per-cluster scales. Merging is data-dependent and
    /// accounted by [`compress_page`], not by this analytic model.
    pub fn page_bytes(&self, tokens: usize, exact_bytes_per_token: Bytes) -> Bytes {
        let exact = Bytes(exact_bytes_per_token.get() * tokens as u64);
        match self.quant {
            QuantMode::Off => exact,
            q => Bytes((exact.get() * q.bits()).div_ceil(16) + SCALE_OVERHEAD),
        }
    }

    /// Whether demoting a page of `tokens` tokens actually shrinks it (the
    /// per-cluster scale overhead can exceed the savings on tiny pages).
    pub fn shrinks(&self, tokens: usize, exact_bytes_per_token: Bytes) -> bool {
        self.page_bytes(tokens, exact_bytes_per_token).get()
            < Bytes(exact_bytes_per_token.get() * tokens as u64).get()
    }
}

impl std::fmt::Display for CompressionConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_lossless() {
            write!(f, "lossless")
        } else if self.merge_threshold == 0.0 {
            write!(f, "{}", self.quant)
        } else {
            write!(f, "{}+merge{:.2}", self.quant, self.merge_threshold)
        }
    }
}

/// Cosine similarity of two vectors; `0.0` if either has zero norm.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Spherical interpolation of `a` and `b` at parameter `t` written into
/// `out`: the direction follows the great circle between the two unit
/// vectors, the magnitude interpolates linearly (the MiniCache merge). Falls
/// back to linear interpolation when either vector is zero or the pair is
/// (anti)parallel enough that the spherical weights are ill-conditioned.
pub fn slerp_into(a: &[f32], b: &[f32], t: f32, out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    let na = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = (1.0 - t) * x + t * y;
        }
        return;
    }
    let cos = (a.iter().zip(b).map(|(&x, &y)| x * y).sum::<f32>() / (na * nb)).clamp(-1.0, 1.0);
    let omega = cos.acos();
    let sin_omega = omega.sin();
    let magnitude = (1.0 - t) * na + t * nb;
    if sin_omega < 1e-6 {
        // (Anti)parallel: the great circle is degenerate; interpolate the
        // unit vectors linearly and rescale.
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            let unit = (1.0 - t) * (x / na) + t * (y / nb);
            *o = unit * magnitude;
        }
        return;
    }
    let wa = (((1.0 - t) * omega).sin() / sin_omega) / na;
    let wb = ((t * omega).sin() / sin_omega) / nb;
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = (wa * x + wb * y) * magnitude;
    }
}

/// Quantize-dequantize round trip of one value on the symmetric grid
/// `[-qmax, qmax]` with the given scale (`scale == 0` means the whole block
/// is zero and the value passes through).
fn quant_roundtrip(x: f32, scale: f32, qmax: f32) -> f32 {
    if scale == 0.0 {
        return x;
    }
    let q = (x / scale * qmax).round().clamp(-qmax, qmax);
    q * scale / qmax
}

/// Largest absolute value across a set of rows (the symmetric per-cluster
/// scale). Deterministic: a pure reduction over the page contents, never a
/// function of cache or selection state.
fn max_abs_rows(m: &Matrix, members: &[usize]) -> f32 {
    let mut s = 0.0f32;
    for &i in members {
        for &x in m.row(i) {
            s = s.max(x.abs());
        }
    }
    s
}

/// Apply the quantization round trip in place to every row of `m`.
fn quantize_rows_in_place(m: &mut Matrix, scale: f32, qmax: f32) {
    for x in m.as_mut_slice() {
        *x = quant_roundtrip(*x, scale, qmax);
    }
}

/// One compressed page: the reconstructed K/V of a cluster's member tokens
/// plus the byte accounting of its compressed layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressedPage {
    /// Absolute token positions of the page's members, ascending.
    pub tokens: Vec<usize>,
    /// Reconstructed keys, one row per member (merged pairs share identical
    /// rows; quantized values are the dequantized grid points).
    pub keys: Matrix,
    /// Reconstructed values, aligned with `keys`.
    pub values: Matrix,
    /// Retention mask: `true` for members kept exact (outliers below the
    /// merge similarity bar), `false` for members replaced by a SLERP
    /// interpolant. All-`true` when merging is disabled.
    pub retained: Vec<bool>,
    /// Number of merged pairs (each pair stores one vector instead of two).
    pub merged_pairs: usize,
    /// Footprint of the compressed layout (quantized data + scales + mask).
    pub compressed_bytes: Bytes,
    /// Footprint the same members would occupy exact (f16).
    pub exact_bytes: Bytes,
    /// FNV-1a 64 checksum over the page payload (member positions, K/V row
    /// bits, retention mask), sealed at compression time and verified before
    /// the page serves an access (DESIGN.md §11).
    pub checksum: u64,
}

impl CompressedPage {
    /// Compression ratio `exact / compressed`; `0.0` for an empty page.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes.get() == 0 {
            0.0
        } else {
            self.exact_bytes.get() as f64 / self.compressed_bytes.get() as f64
        }
    }

    /// FNV-1a 64 over the page payload: member positions, key and value row
    /// bits, and the retention mask. Deterministic — a pure function of the
    /// stored data, so two bit-identical pages always agree.
    pub fn compute_checksum(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.tokens.len() as u64);
        for &t in &self.tokens {
            h.write_u64(t as u64);
        }
        h.write_f32s(self.keys.as_slice());
        h.write_f32s(self.values.as_slice());
        for &kept in &self.retained {
            h.write_u8(u8::from(kept));
        }
        h.finish()
    }

    /// Whether the sealed checksum still matches the payload.
    pub fn verify(&self) -> bool {
        self.checksum == self.compute_checksum()
    }
}

/// Compress one cluster page: gather the member rows of `keys`/`values`,
/// merge consecutive similar pairs (SLERP at `t = 0.5`), quantize what
/// remains with one symmetric per-cluster scale per tensor, and return the
/// reconstructed rows plus the compressed byte accounting.
///
/// Under a lossless config this is an exact gather: the returned rows are
/// bit-identical to the member rows and `compressed_bytes == exact_bytes`.
pub fn compress_page(
    keys: &Matrix,
    values: &Matrix,
    members: &[usize],
    config: CompressionConfig,
) -> CompressedPage {
    let head_dim = keys.cols();
    let mut k = keys.select_rows(members);
    let mut v = values.select_rows(members);
    let mut retained = vec![true; members.len()];
    let mut merged_pairs = 0usize;

    if config.merge_threshold > 0.0 {
        let mut i = 0;
        while i + 1 < members.len() {
            let sim = cosine_similarity(k.row(i), k.row(i + 1));
            if 1.0 - sim <= config.merge_threshold {
                let mut rep = vec![0.0f32; head_dim];
                slerp_into(k.row(i), k.row(i + 1), 0.5, &mut rep);
                k.row_mut(i).copy_from_slice(&rep);
                k.row_mut(i + 1).copy_from_slice(&rep);
                slerp_into(v.row(i), v.row(i + 1), 0.5, &mut rep);
                v.row_mut(i).copy_from_slice(&rep);
                v.row_mut(i + 1).copy_from_slice(&rep);
                retained[i] = false;
                retained[i + 1] = false;
                merged_pairs += 1;
                i += 2;
            } else {
                i += 1;
            }
        }
    }

    if config.quant != QuantMode::Off {
        let qmax = config.quant.qmax();
        let all: Vec<usize> = (0..members.len()).collect();
        let scale_k = max_abs_rows(&k, &all);
        let scale_v = max_abs_rows(&v, &all);
        quantize_rows_in_place(&mut k, scale_k, qmax);
        quantize_rows_in_place(&mut v, scale_v, qmax);
    }

    let stored_vectors = members.len() - merged_pairs;
    let mut compressed = Bytes(
        config.quant.data_bytes(stored_vectors * head_dim).get() * 2
            + if config.quant == QuantMode::Off {
                0
            } else {
                SCALE_OVERHEAD
            },
    );
    if config.merge_threshold > 0.0 {
        // One retention bit per member token.
        compressed += Bytes((members.len() as u64).div_ceil(8));
    }
    let exact = Bytes::of_f16(2 * members.len() * head_dim);

    let mut page = CompressedPage {
        tokens: members.to_vec(),
        keys: k,
        values: v,
        retained,
        merged_pairs,
        compressed_bytes: compressed,
        exact_bytes: exact,
        checksum: 0,
    };
    page.checksum = page.compute_checksum();
    page
}

/// Per-head store of compressed cluster pages with aggregate byte
/// accounting. Keys are the same [`PageKey`]s the
/// [`ClusterCache`](crate::cluster_cache::ClusterCache) tracks, so residency
/// and compression describe the same pages.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CompressedStore {
    config: CompressionConfig,
    pages: BTreeMap<PageKey, CompressedPage>,
    compressed_bytes: Bytes,
    exact_bytes: Bytes,
}

impl CompressedStore {
    /// Empty store under the given configuration.
    pub fn new(config: CompressionConfig) -> Self {
        Self {
            config,
            pages: BTreeMap::new(),
            compressed_bytes: Bytes(0),
            exact_bytes: Bytes(0),
        }
    }

    /// The store's compression configuration.
    pub fn config(&self) -> CompressionConfig {
        self.config
    }

    /// Number of pages held.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the store holds no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Insert (or replace) a page, keeping the aggregate byte totals exact.
    pub fn insert(&mut self, key: PageKey, page: CompressedPage) {
        if let Some(old) = self.pages.remove(&key) {
            self.compressed_bytes = Bytes(self.compressed_bytes.get() - old.compressed_bytes.get());
            self.exact_bytes = Bytes(self.exact_bytes.get() - old.exact_bytes.get());
        }
        self.compressed_bytes += page.compressed_bytes;
        self.exact_bytes += page.exact_bytes;
        self.pages.insert(key, page);
    }

    /// Compress `members` of `keys`/`values` and insert under `key`.
    pub fn compress_and_insert(
        &mut self,
        key: PageKey,
        keys: &Matrix,
        values: &Matrix,
        members: &[usize],
    ) {
        let page = compress_page(keys, values, members, self.config);
        self.insert(key, page);
    }

    /// Look up a page.
    pub fn get(&self, key: PageKey) -> Option<&CompressedPage> {
        self.pages.get(&key)
    }

    /// Flip the sealed checksum of a page (deterministic fault injection for
    /// the integrity suite). Only the checksum is damaged — the payload stays
    /// pristine, modeling a detected-before-attended corruption whose repair
    /// re-reads the same bytes. Returns whether the page exists.
    pub fn corrupt(&mut self, key: PageKey) -> bool {
        match self.pages.get_mut(&key) {
            Some(page) => {
                page.checksum ^= clusterkv_faults::CORRUPTION_MASK;
                true
            }
            None => false,
        }
    }

    /// Verify a page's checksum: `None` if absent, otherwise whether the
    /// sealed checksum matches the payload.
    pub fn verify(&self, key: PageKey) -> Option<bool> {
        self.pages.get(&key).map(CompressedPage::verify)
    }

    // analyzer: recovery-path
    /// Re-seal a page whose checksum failed verification by recomputing it
    /// from the payload — modeling a re-fetch of the page from the exact
    /// backing store. Returns the exact bytes such a re-fetch moves, or
    /// `None` if the page does not exist.
    pub fn repair(&mut self, key: PageKey) -> Option<Bytes> {
        let page = self.pages.get_mut(&key)?;
        page.checksum = page.compute_checksum();
        Some(page.exact_bytes)
    }

    /// Remove a page, updating the totals.
    pub fn remove(&mut self, key: PageKey) -> Option<CompressedPage> {
        let page = self.pages.remove(&key)?;
        self.compressed_bytes = Bytes(self.compressed_bytes.get() - page.compressed_bytes.get());
        self.exact_bytes = Bytes(self.exact_bytes.get() - page.exact_bytes.get());
        Some(page)
    }

    /// Total compressed footprint across pages.
    pub fn compressed_bytes(&self) -> Bytes {
        self.compressed_bytes
    }

    /// Total exact (f16) footprint the same pages would occupy.
    pub fn exact_bytes(&self) -> Bytes {
        self.exact_bytes
    }

    /// Aggregate compression ratio `exact / compressed`; `0.0` when the
    /// store is empty.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes.get() == 0 {
            0.0
        } else {
            self.exact_bytes.get() as f64 / self.compressed_bytes.get() as f64
        }
    }

    /// Total merged pairs across pages.
    pub fn merged_pairs(&self) -> usize {
        self.pages.values().map(|p| p.merged_pairs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{HeadId, LayerId};
    use clusterkv_tensor::rng::{gaussian_vec, seeded};

    fn key(page: usize) -> PageKey {
        PageKey {
            layer: LayerId(0),
            head: HeadId(0),
            page,
        }
    }

    fn random_kv(n: usize, dim: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = seeded(seed);
        let k = Matrix::from_rows(
            (0..n)
                .map(|_| gaussian_vec(&mut rng, dim, 0.0, 1.0))
                .collect(),
        )
        .unwrap();
        let v = Matrix::from_rows(
            (0..n)
                .map(|_| gaussian_vec(&mut rng, dim, 0.0, 1.0))
                .collect(),
        )
        .unwrap();
        (k, v)
    }

    #[test]
    fn lossless_page_is_bit_identical_and_byte_equal() {
        let (k, v) = random_kv(16, 8, 1);
        let members: Vec<usize> = vec![2, 3, 5, 7, 11];
        let page = compress_page(&k, &v, &members, CompressionConfig::lossless());
        for (slot, &m) in members.iter().enumerate() {
            assert_eq!(page.keys.row(slot), k.row(m), "keys must be exact");
            assert_eq!(page.values.row(slot), v.row(m), "values must be exact");
        }
        assert!(page.retained.iter().all(|&r| r));
        assert_eq!(page.merged_pairs, 0);
        assert_eq!(page.compressed_bytes, page.exact_bytes);
        assert_eq!(page.exact_bytes, Bytes::of_f16(2 * 5 * 8));
        assert_eq!(page.ratio(), 1.0);
    }

    #[test]
    fn int8_page_is_near_exact_at_2x() {
        let (k, v) = random_kv(32, 16, 2);
        let members: Vec<usize> = (0..32).collect();
        let page = compress_page(&k, &v, &members, CompressionConfig::int8());
        let ratio = page.ratio();
        assert!(ratio > 1.9 && ratio <= 2.0, "int8 ratio {ratio}");
        let scale = max_abs_rows(&k, &members);
        for (slot, &m) in members.iter().enumerate() {
            for (a, b) in page.keys.row(slot).iter().zip(k.row(m)) {
                assert!((a - b).abs() <= scale / 127.0 + 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn int4_page_reaches_4x() {
        let (k, v) = random_kv(64, 32, 3);
        let members: Vec<usize> = (0..64).collect();
        let page = compress_page(&k, &v, &members, CompressionConfig::int4());
        let ratio = page.ratio();
        assert!(ratio > 3.9 && ratio <= 4.0, "int4 ratio {ratio}");
    }

    #[test]
    fn merging_collapses_similar_pairs_and_retains_outliers() {
        // Rows 0 and 1 are nearly identical; row 2 is orthogonal to both.
        let k = Matrix::from_rows(vec![
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.999, 0.01, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        let v = k.clone();
        let cfg = CompressionConfig::default().with_merge_threshold(0.05);
        let page = compress_page(&k, &v, &[0, 1, 2, 3], cfg);
        assert_eq!(page.merged_pairs, 1);
        assert_eq!(page.retained, vec![false, false, true, true]);
        assert_eq!(
            page.keys.row(0),
            page.keys.row(1),
            "merged pair shares a row"
        );
        assert_eq!(page.keys.row(2), k.row(2), "outlier stays exact");
        assert!(page.ratio() > 1.0, "merging must shrink the page");
    }

    #[test]
    fn merge_threshold_zero_never_merges_identical_rows() {
        let k = Matrix::from_rows(vec![vec![1.0, 2.0], vec![1.0, 2.0]]).unwrap();
        let page = compress_page(&k, &k, &[0, 1], CompressionConfig::lossless());
        assert_eq!(page.merged_pairs, 0, "threshold 0 is a hard gate");
        assert!(page.retained.iter().all(|&r| r));
    }

    #[test]
    fn slerp_midpoint_of_unit_vectors_bisects_the_angle() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let mut out = [0.0f32; 2];
        slerp_into(&a, &b, 0.5, &mut out);
        assert!((out[0] - out[1]).abs() < 1e-6, "midpoint is symmetric");
        let norm = (out[0] * out[0] + out[1] * out[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-6, "unit inputs give a unit output");
        assert!(
            (cosine_similarity(&a, &out) - (std::f32::consts::FRAC_PI_4).cos()).abs() < 1e-6,
            "bisects the 90° angle"
        );
    }

    #[test]
    fn slerp_endpoints_and_degenerate_inputs() {
        let a = [3.0, 0.0, 0.0];
        let b = [0.0, 0.0, 5.0];
        let mut out = [0.0f32; 3];
        slerp_into(&a, &b, 0.0, &mut out);
        for (x, y) in out.iter().zip(&a) {
            assert!((x - y).abs() < 1e-5);
        }
        slerp_into(&a, &b, 1.0, &mut out);
        for (x, y) in out.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
        // Zero vector falls back to lerp.
        let z = [0.0, 0.0, 0.0];
        slerp_into(&z, &b, 0.5, &mut out);
        assert_eq!(out, [0.0, 0.0, 2.5]);
        // Parallel vectors keep the direction, interpolate the magnitude.
        let c = [6.0, 0.0, 0.0];
        slerp_into(&a, &c, 0.5, &mut out);
        assert!((out[0] - 4.5).abs() < 1e-5, "{out:?}");
    }

    #[test]
    fn quant_roundtrip_is_bounded_and_zero_scale_passes_through() {
        for &x in &[-1.0f32, -0.33, 0.0, 0.5, 1.0] {
            let y = quant_roundtrip(x, 1.0, 127.0);
            assert!((x - y).abs() <= 0.5 / 127.0 + 1e-7);
        }
        assert_eq!(quant_roundtrip(0.7, 0.0, 127.0), 0.7);
        // Values beyond the scale clamp to the grid edge.
        assert_eq!(quant_roundtrip(5.0, 1.0, 7.0), 1.0);
    }

    #[test]
    fn store_totals_track_insert_replace_remove() {
        let (k, v) = random_kv(24, 8, 4);
        let mut store = CompressedStore::new(CompressionConfig::int8());
        store.compress_and_insert(key(0), &k, &v, &[0, 1, 2, 3]);
        store.compress_and_insert(key(1), &k, &v, &[4, 5, 6, 7, 8, 9]);
        let total = store.compressed_bytes();
        assert_eq!(store.len(), 2);
        assert!(store.ratio() > 1.0);
        // Replacing a page with a larger one adjusts, not double-counts.
        store.compress_and_insert(key(0), &k, &v, &[0, 1, 2, 3, 10, 11]);
        assert!(store.compressed_bytes().get() > total.get());
        let expected: u64 = [key(0), key(1)]
            .iter()
            .map(|&kk| store.get(kk).unwrap().compressed_bytes.get())
            .sum();
        assert_eq!(store.compressed_bytes().get(), expected);
        store.remove(key(0)).unwrap();
        store.remove(key(1)).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.compressed_bytes(), Bytes(0));
        assert_eq!(store.exact_bytes(), Bytes(0));
        assert_eq!(store.ratio(), 0.0, "empty store must not divide by zero");
    }

    #[test]
    fn config_validation_and_fingerprints() {
        assert!(CompressionConfig::lossless().validate().is_ok());
        assert!(CompressionConfig::default()
            .with_merge_threshold(1.5)
            .validate()
            .is_err());
        assert!(CompressionConfig::default()
            .with_merge_threshold(f32::NAN)
            .validate()
            .is_err());
        let a = CompressionConfig::int8().fingerprint_words();
        let b = CompressionConfig::int4().fingerprint_words();
        let c = CompressionConfig::int8()
            .with_merge_threshold(0.1)
            .fingerprint_words();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, CompressionConfig::int8().fingerprint_words());
    }

    #[test]
    fn analytic_page_bytes_match_quant_widths() {
        let cfg = CompressionConfig::lossless();
        let per_token = Bytes::of_f16(2 * 16); // head_dim 16 → 64 B/token
        assert_eq!(cfg.page_bytes(10, per_token), Bytes(640));
        assert!(!cfg.shrinks(10, per_token));
        let int8 = CompressionConfig::int8();
        assert_eq!(int8.page_bytes(10, per_token), Bytes(320 + SCALE_OVERHEAD));
        assert!(int8.shrinks(10, per_token));
        let int4 = CompressionConfig::int4();
        assert_eq!(int4.page_bytes(10, per_token), Bytes(160 + SCALE_OVERHEAD));
        // A one-token page of a tiny head does not shrink under int8: the
        // scale overhead eats the savings.
        let tiny = Bytes::of_f16(2 * 2);
        assert!(!int8.shrinks(1, tiny));
    }

    #[test]
    fn display_names_cover_the_ladder() {
        assert_eq!(CompressionConfig::lossless().to_string(), "lossless");
        assert_eq!(CompressionConfig::int8().to_string(), "int8");
        assert_eq!(
            CompressionConfig::int4()
                .with_merge_threshold(0.15)
                .to_string(),
            "int4+merge0.15"
        );
        assert_eq!(QuantMode::Off.to_string(), "f16");
    }

    #[test]
    fn compressed_pages_are_sealed_and_verify() {
        let (k, v) = random_kv(8, 4, 21);
        let page = compress_page(&k, &v, &[0, 2, 5], CompressionConfig::int8());
        assert!(page.verify());
        assert_eq!(page.checksum, page.compute_checksum());
    }

    #[test]
    fn store_corrupt_verify_repair_round_trip() {
        let (k, v) = random_kv(8, 4, 22);
        let mut store = CompressedStore::new(CompressionConfig::lossless());
        store.compress_and_insert(key(3), &k, &v, &[1, 2, 3]);
        assert_eq!(store.verify(key(3)), Some(true));
        assert!(store.corrupt(key(3)));
        assert_eq!(store.verify(key(3)), Some(false));
        let moved = store.repair(key(3));
        // Repair re-fetches the exact layout: 2 tensors · 3 tokens · 4 dims.
        assert_eq!(moved, Some(Bytes::of_f16(2 * 3 * 4)));
        assert_eq!(store.verify(key(3)), Some(true));
        // Absent pages report absence, not failure.
        assert!(!store.corrupt(key(9)));
        assert_eq!(store.verify(key(9)), None);
        assert_eq!(store.repair(key(9)), None);
    }
}
