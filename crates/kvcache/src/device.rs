//! Analytical device cost model.
//!
//! The paper's efficiency results (Fig. 12, Fig. 13) were measured on an
//! NVIDIA Ada 6000 GPU with KV offloading to CPU memory over PCIe. No GPU is
//! available in this environment, so latency is estimated with a
//! roofline-style analytical model: every operation is charged the maximum of
//! its memory time (bytes touched / bandwidth) and its compute time
//! (FLOPs / peak throughput), plus a fixed launch overhead. Decoding with a
//! long context is strongly memory-bound, which is exactly the regime the
//! paper exploits, so the *shape* of the comparisons survives the
//! substitution (see `DESIGN.md` §2 at the repository root for the full
//! rationale, and §3 there for the memory hierarchy this model prices).

use crate::types::Bytes;
use serde::{Deserialize, Serialize};

/// Seconds, as a plain `f64` newtype to keep units explicit.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Seconds(pub f64);

impl Seconds {
    /// Zero duration.
    pub fn zero() -> Self {
        Seconds(0.0)
    }

    /// Raw seconds value.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Convert to milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl std::ops::Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl std::ops::Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl std::iter::Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        iter.fold(Seconds::zero(), |a, b| a + b)
    }
}

impl std::fmt::Display for Seconds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.1} µs", self.0 * 1e6)
        }
    }
}

/// Analytical model of the accelerator + host used to estimate latency.
///
/// Defaults approximate the paper's testbed (NVIDIA Ada 6000, PCIe 4.0 x16).
///
/// # Examples
///
/// ```
/// use clusterkv_kvcache::DeviceModel;
/// use clusterkv_kvcache::types::Bytes;
///
/// let dev = DeviceModel::ada6000();
/// // Reading 1 GiB from HBM takes on the order of a millisecond.
/// let t = dev.hbm_read_time(Bytes(1 << 30));
/// assert!(t.get() > 0.0 && t.get() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// GPU memory bandwidth in bytes/second.
    pub hbm_bandwidth: f64,
    /// Host-to-device (PCIe) bandwidth in bytes/second.
    pub pcie_bandwidth: f64,
    /// Peak fp16 compute throughput in FLOP/s.
    pub peak_flops: f64,
    /// Fixed overhead charged per kernel launch, in seconds.
    pub kernel_overhead: f64,
    /// Achievable fraction of peak bandwidth/compute for dense GEMM-style
    /// kernels (0..1].
    pub efficiency: f64,
    /// Achievable fraction of peak memory bandwidth for attention over the
    /// KV cache. Long-context attention with masking, softmax and gather
    /// reads achieves a much lower fraction of peak than streaming GEMMs —
    /// this is what makes KV-cache compression profitable in the first
    /// place.
    pub attention_efficiency: f64,
}

impl DeviceModel {
    /// Parameters approximating the NVIDIA RTX 6000 Ada used in the paper:
    /// ~960 GB/s HBM bandwidth, ~91 TFLOPS fp16 (without sparsity), PCIe 4.0
    /// x16 at ~25 GB/s effective.
    pub fn ada6000() -> Self {
        Self {
            hbm_bandwidth: 960e9,
            pcie_bandwidth: 25e9,
            peak_flops: 91e12,
            kernel_overhead: 5e-6,
            efficiency: 0.7,
            attention_efficiency: 0.15,
        }
    }

    /// A smaller PCIe-constrained configuration resembling the FlexGen/OPT
    /// offloading setup used for the InfiniGen comparison (Fig. 13a).
    pub fn offload_constrained() -> Self {
        Self {
            pcie_bandwidth: 16e9,
            ..Self::ada6000()
        }
    }

    /// Time to read `bytes` from GPU memory.
    pub fn hbm_read_time(&self, bytes: Bytes) -> Seconds {
        Seconds(self.kernel_overhead + bytes.get() as f64 / (self.hbm_bandwidth * self.efficiency))
    }

    /// Time to move `bytes` from CPU memory to GPU memory over PCIe.
    pub fn transfer_time(&self, bytes: Bytes) -> Seconds {
        if bytes.get() == 0 {
            return Seconds::zero();
        }
        Seconds(self.kernel_overhead + bytes.get() as f64 / (self.pcie_bandwidth * self.efficiency))
    }

    /// Time to execute `flops` floating point operations, assuming the
    /// kernel is compute bound.
    pub fn compute_time(&self, flops: f64) -> Seconds {
        Seconds(self.kernel_overhead + flops / (self.peak_flops * self.efficiency))
    }

    /// Time to read `bytes` of KV cache during attention, priced at the
    /// lower attention-kernel bandwidth efficiency.
    pub fn attention_read_time(&self, bytes: Bytes) -> Seconds {
        Seconds(
            self.kernel_overhead
                + bytes.get() as f64 / (self.hbm_bandwidth * self.attention_efficiency),
        )
    }

    /// Roofline estimate: the maximum of memory time and compute time plus a
    /// single launch overhead.
    pub fn roofline_time(&self, bytes: Bytes, flops: f64) -> Seconds {
        let mem = bytes.get() as f64 / (self.hbm_bandwidth * self.efficiency);
        let cmp = flops / (self.peak_flops * self.efficiency);
        Seconds(self.kernel_overhead + mem.max(cmp))
    }
}

impl Default for DeviceModel {
    fn default() -> Self {
        Self::ada6000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_display_scales_units() {
        assert!(Seconds(2.5).to_string().contains("s"));
        assert!(Seconds(2.5e-3).to_string().contains("ms"));
        assert!(Seconds(2.5e-6).to_string().contains("µs"));
    }

    #[test]
    fn seconds_arithmetic() {
        let s = Seconds(1.0) + Seconds(0.5);
        assert!((s.get() - 1.5).abs() < 1e-12);
        let total: Seconds = vec![Seconds(0.1); 10].into_iter().sum();
        assert!((total.get() - 1.0).abs() < 1e-9);
        assert!(((Seconds(2.0) * 3.0).get() - 6.0).abs() < 1e-12);
        assert!((Seconds(1.5).as_millis() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn hbm_is_faster_than_pcie() {
        let dev = DeviceModel::ada6000();
        let b = Bytes(1 << 30);
        assert!(dev.hbm_read_time(b) < dev.transfer_time(b));
    }

    #[test]
    fn zero_transfer_is_free() {
        let dev = DeviceModel::ada6000();
        assert_eq!(dev.transfer_time(Bytes(0)), Seconds::zero());
    }

    #[test]
    fn roofline_picks_the_binding_resource() {
        let dev = DeviceModel::ada6000();
        // Huge bytes, tiny flops => memory bound: roofline ~ hbm time.
        let mem_bound = dev.roofline_time(Bytes(1 << 30), 1.0);
        let mem_only = dev.hbm_read_time(Bytes(1 << 30));
        assert!((mem_bound.get() - mem_only.get()).abs() / mem_only.get() < 0.01);
        // Tiny bytes, huge flops => compute bound.
        let cmp_bound = dev.roofline_time(Bytes(16), 1e15);
        let cmp_only = dev.compute_time(1e15);
        assert!((cmp_bound.get() - cmp_only.get()).abs() / cmp_only.get() < 0.01);
    }

    #[test]
    fn attention_reads_are_slower_than_gemm_reads() {
        let dev = DeviceModel::ada6000();
        let b = Bytes(1 << 30);
        assert!(dev.attention_read_time(b) > dev.hbm_read_time(b));
    }

    #[test]
    fn more_bytes_take_longer() {
        let dev = DeviceModel::default();
        assert!(dev.transfer_time(Bytes(2 << 20)) > dev.transfer_time(Bytes(1 << 20)));
        assert!(dev.hbm_read_time(Bytes(2 << 20)) > dev.hbm_read_time(Bytes(1 << 20)));
    }

    #[test]
    fn offload_constrained_has_slower_pcie() {
        let a = DeviceModel::ada6000();
        let b = DeviceModel::offload_constrained();
        assert!(b.transfer_time(Bytes(1 << 30)) > a.transfer_time(Bytes(1 << 30)));
    }
}
