//! KV-cache substrate for the ClusterKV reproduction.
//!
//! The paper's system (Fig. 5) keeps the full K/V tensors in CPU memory,
//! keeps centroids/metadata and a small cache of selected KV on the GPU and
//! moves data between the two over PCIe. This crate provides that substrate
//! in simulation:
//!
//! * [`types`] — strongly-typed identifiers ([`TokenId`], [`Budget`], …)
//!   shared across the workspace.
//! * [`store`] — the per-layer, per-head [`KvStore`] holding key/value
//!   vectors for all previous tokens ("CPU memory" in the paper).
//! * [`selected`] — [`SelectedKv`], the gathered subset `K_S, V_S` that
//!   actually participates in attention.
//! * [`device`] — an analytical [`DeviceModel`] (bandwidths + overheads)
//!   used to estimate prefill/decoding latency and host-to-device transfer
//!   cost; this is the substitute for the paper's NVIDIA Ada 6000 testbed.
//! * [`tier`] — a two-tier memory simulator (GPU HBM + CPU DRAM) tracking
//!   residency and capacity.
//! * [`cluster_cache`] — [`ClusterCache`], the session-level tiered KV
//!   hierarchy: a capacity-bounded GPU resident set of KV pages with
//!   deterministic LRU demotion (Resident → Compressed → Paged) over a CPU
//!   backing store (DESIGN.md §3, §9).
//! * [`compressed`] — the compressed KV tier: SLERP cluster merging with
//!   outlier retention masks plus int8/int4 cold pages with per-cluster
//!   scales (DESIGN.md §9).
//! * [`prefix`] — the workspace-global [`PrefixStore`]: a radix tree of
//!   refcounted, immutable shared KV prefix pages (plus cached selector
//!   state) enabling cross-session prefix reuse (DESIGN.md §8).
//! * [`stats`] — transfer / cache-hit counters used by the experiments.

#![warn(missing_docs)]

pub mod cluster_cache;
pub mod compressed;
pub mod device;
pub mod prefix;
pub mod selected;
pub mod stats;
pub mod store;
pub mod tier;
pub mod types;

pub use cluster_cache::{ClusterCache, ClusterCacheConfig, PageKey, PageRequest, StepOutcome};
pub use compressed::{
    compress_page, CompressedPage, CompressedStore, CompressionConfig, QuantMode,
};
pub use device::DeviceModel;
pub use prefix::{
    MatchSegment, PrefixStore, PrefixStoreConfig, PrefixStoreStats, SharedKvPage, SharedPrefixState,
};
pub use selected::SelectedKv;
pub use stats::{CacheStats, CompressionStats, PrefetchStats, TransferStats};
pub use store::KvStore;
pub use tier::{MemoryTier, TierKind};
pub use types::{Budget, HeadId, LayerId, TokenId};
