//! The gathered subset of the KV cache that participates in attention.

use clusterkv_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Keys and values of the selected tokens (`K_S`, `V_S` in the paper),
/// together with the original token indices `I_T`.
///
/// Produced by [`KvStore::gather`](crate::KvStore::gather) or by a selection
/// policy; consumed by the attention computation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectedKv {
    indices: Vec<usize>,
    keys: Matrix,
    values: Matrix,
}

impl SelectedKv {
    /// Bundle indices with their gathered keys/values.
    ///
    /// # Panics
    ///
    /// Panics if the number of indices does not match the number of rows of
    /// `keys`/`values`, or the two matrices have different shapes.
    pub fn new(indices: Vec<usize>, keys: Matrix, values: Matrix) -> Self {
        assert_eq!(keys.shape(), values.shape(), "key/value shape mismatch");
        assert_eq!(
            indices.len(),
            keys.rows(),
            "index count does not match rows"
        );
        Self {
            indices,
            keys,
            values,
        }
    }

    /// Empty selection of the given head dimension.
    pub fn empty(head_dim: usize) -> Self {
        Self {
            indices: Vec::new(),
            keys: Matrix::zeros(0, head_dim),
            values: Matrix::zeros(0, head_dim),
        }
    }

    /// Token indices, in selection order.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Selected key matrix (`B × d`).
    #[inline]
    pub fn keys(&self) -> &Matrix {
        &self.keys
    }

    /// Selected value matrix (`B × d`).
    #[inline]
    pub fn values(&self) -> &Matrix {
        &self.values
    }

    /// Number of selected tokens.
    #[inline]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether nothing was selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Whether the selection contains the given token index.
    pub fn contains(&self, token: usize) -> bool {
        self.indices.contains(&token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_selection_has_no_tokens() {
        let s = SelectedKv::empty(16);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.keys().cols(), 16);
    }

    #[test]
    fn new_checks_shapes() {
        let k = Matrix::zeros(2, 4);
        let v = Matrix::zeros(2, 4);
        let s = SelectedKv::new(vec![3, 9], k, v);
        assert_eq!(s.len(), 2);
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    #[should_panic]
    fn mismatched_index_count_panics() {
        SelectedKv::new(vec![1], Matrix::zeros(2, 4), Matrix::zeros(2, 4));
    }

    #[test]
    #[should_panic]
    fn mismatched_kv_shape_panics() {
        SelectedKv::new(vec![1, 2], Matrix::zeros(2, 4), Matrix::zeros(2, 8));
    }
}
