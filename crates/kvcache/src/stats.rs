//! Counters for transfers and cache behaviour.
//!
//! The experiments of §V-C (cache hit rates, throughput improvement from the
//! cluster-granularity cache) are driven by these counters.

use crate::types::Bytes;
use serde::{Deserialize, Serialize};

/// Host-to-device transfer accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferStats {
    /// Number of separate transfer operations issued.
    pub transfers: u64,
    /// Total bytes moved from CPU to GPU memory.
    pub bytes_to_device: Bytes,
    /// Number of tokens whose KV was moved.
    pub tokens_moved: u64,
}

impl TransferStats {
    /// New, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a transfer of `tokens` tokens totalling `bytes`.
    pub fn record(&mut self, tokens: u64, bytes: Bytes) {
        if bytes.get() == 0 && tokens == 0 {
            return;
        }
        self.transfers += 1;
        self.bytes_to_device += bytes;
        self.tokens_moved += tokens;
    }

    /// Merge another set of statistics into this one.
    pub fn merge(&mut self, other: &TransferStats) {
        self.transfers += other.transfers;
        self.bytes_to_device += other.bytes_to_device;
        self.tokens_moved += other.tokens_moved;
    }
}

/// Hit/miss accounting for the selected-KV cache (§IV-D).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that were served from the GPU cache.
    pub hits: u64,
    /// Lookups that required a fetch from CPU memory.
    pub misses: u64,
}

impl CacheStats {
    /// New, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` hits.
    pub fn record_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// Record `n` misses.
    pub fn record_misses(&mut self, n: u64) {
        self.misses += n;
    }

    /// Total lookups.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; `0.0` when no lookups were recorded.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Merge another set of statistics into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Accounting for the compressed residency tier (DESIGN.md §9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Resident → Compressed page demotions.
    pub demotions: u64,
    /// Tokens served from the compressed GPU tier (no PCIe, dequantize only).
    pub compressed_hits: u64,
    /// Exact (f16) bytes the demoted pages occupied before compression,
    /// cumulative over demotions.
    pub exact_bytes: Bytes,
    /// Bytes the same pages occupy compressed, cumulative over demotions.
    pub compressed_bytes: Bytes,
}

impl CompressionStats {
    /// New, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one page demotion: `exact` bytes shrank to `compressed`.
    pub fn record_demotion(&mut self, exact: Bytes, compressed: Bytes) {
        self.demotions += 1;
        self.exact_bytes += exact;
        self.compressed_bytes += compressed;
    }

    /// Record `n` tokens served from the compressed tier.
    pub fn record_compressed_hits(&mut self, n: u64) {
        self.compressed_hits += n;
    }

    /// Compression ratio `exact / compressed` over all demoted pages; `0.0`
    /// when nothing was ever demoted (never NaN).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes.get() == 0 {
            0.0
        } else {
            self.exact_bytes.get() as f64 / self.compressed_bytes.get() as f64
        }
    }

    /// Merge another set of statistics into this one.
    pub fn merge(&mut self, other: &CompressionStats) {
        self.demotions += other.demotions;
        self.compressed_hits += other.compressed_hits;
        self.exact_bytes += other.exact_bytes;
        self.compressed_bytes += other.compressed_bytes;
    }
}

/// Accounting for the speculative staging buffer (DESIGN.md §10).
///
/// Staging never changes hit/miss accounting — a staged-and-used page still
/// counts as a miss in [`CacheStats`] and its bytes still land in
/// [`TransferStats`] — it only changes *when* the bytes move, which the
/// overlap clock prices separately. These counters measure how well the
/// predictor spent the staging budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Pages staged ahead of demand.
    pub staged_pages: u64,
    /// Bytes moved by staged (overlapped) transfers.
    pub staged_bytes: Bytes,
    /// Staged pages later consumed by a demand access.
    pub used_pages: u64,
    /// Bytes of staged transfers that a demand access consumed.
    pub used_bytes: Bytes,
    /// Bytes of staged transfers that were never consumed (evicted from the
    /// staging buffer, superseded, or stale at use time).
    pub wasted_bytes: Bytes,
}

impl PrefetchStats {
    /// New, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one staged page of `bytes`.
    pub fn record_staged(&mut self, bytes: Bytes) {
        self.staged_pages += 1;
        self.staged_bytes += bytes;
    }

    /// Record one staged page of `bytes` consumed by a demand access.
    pub fn record_used(&mut self, bytes: Bytes) {
        self.used_pages += 1;
        self.used_bytes += bytes;
    }

    /// Record `bytes` of staged transfer that will never be consumed.
    pub fn record_wasted(&mut self, bytes: Bytes) {
        self.wasted_bytes += bytes;
    }

    /// Prefetch accuracy `staged-and-used / staged` over pages, in `[0, 1]`;
    /// `0.0` when nothing was ever staged (never NaN).
    pub fn accuracy(&self) -> f64 {
        if self.staged_pages == 0 {
            0.0
        } else {
            self.used_pages as f64 / self.staged_pages as f64
        }
    }

    /// Merge another set of statistics into this one.
    pub fn merge(&mut self, other: &PrefetchStats) {
        self.staged_pages += other.staged_pages;
        self.staged_bytes += other.staged_bytes;
        self.used_pages += other.used_pages;
        self.used_bytes += other.used_bytes;
        self.wasted_bytes += other.wasted_bytes;
    }
}

impl std::fmt::Display for PrefetchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "staged={} used={} accuracy={:.1}% wasted={}",
            self.staged_pages,
            self.used_pages,
            self.accuracy() * 100.0,
            self.wasted_bytes
        )
    }
}

impl std::fmt::Display for CompressionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "demotions={} compressed_hits={} ratio={:.2}x",
            self.demotions,
            self.compressed_hits,
            self.ratio()
        )
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} hit_rate={:.1}%",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_stats_accumulate() {
        let mut s = TransferStats::new();
        s.record(10, Bytes(100));
        s.record(5, Bytes(50));
        assert_eq!(s.transfers, 2);
        assert_eq!(s.bytes_to_device, Bytes(150));
        assert_eq!(s.tokens_moved, 15);
    }

    #[test]
    fn empty_transfer_is_not_counted() {
        let mut s = TransferStats::new();
        s.record(0, Bytes(0));
        assert_eq!(s.transfers, 0);
    }

    #[test]
    fn transfer_merge_adds_fields() {
        let mut a = TransferStats::new();
        a.record(1, Bytes(10));
        let mut b = TransferStats::new();
        b.record(2, Bytes(20));
        a.merge(&b);
        assert_eq!(a.transfers, 2);
        assert_eq!(a.bytes_to_device, Bytes(30));
        assert_eq!(a.tokens_moved, 3);
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        let s = CacheStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn hit_rate_is_ratio_of_hits() {
        let mut s = CacheStats::new();
        s.record_hits(63);
        s.record_misses(37);
        assert!((s.hit_rate() - 0.63).abs() < 1e-9);
        assert_eq!(s.total(), 100);
        assert!(s.to_string().contains("63"));
    }

    #[test]
    fn compression_ratio_guards_zero_bytes() {
        let s = CompressionStats::new();
        assert_eq!(s.ratio(), 0.0, "no demotions must not divide by zero");
        let mut s = CompressionStats::new();
        s.record_demotion(Bytes(0), Bytes(0));
        assert_eq!(s.ratio(), 0.0, "degenerate zero-byte demotion stays 0.0");
        assert!(s.ratio().is_finite());
    }

    #[test]
    fn compression_stats_accumulate_and_merge() {
        let mut a = CompressionStats::new();
        a.record_demotion(Bytes(64), Bytes(16));
        a.record_compressed_hits(10);
        let mut b = CompressionStats::new();
        b.record_demotion(Bytes(32), Bytes(16));
        a.merge(&b);
        assert_eq!(a.demotions, 2);
        assert_eq!(a.compressed_hits, 10);
        assert_eq!(a.exact_bytes, Bytes(96));
        assert_eq!(a.compressed_bytes, Bytes(32));
        assert!((a.ratio() - 3.0).abs() < 1e-12);
        assert!(a.to_string().contains("3.00x"));
    }

    #[test]
    fn prefetch_accuracy_guards_zero_staging() {
        let s = PrefetchStats::new();
        assert_eq!(s.accuracy(), 0.0, "nothing staged must not divide by zero");
        assert!(!s.accuracy().is_nan());
    }

    #[test]
    fn prefetch_stats_accumulate_and_merge() {
        let mut a = PrefetchStats::new();
        a.record_staged(Bytes(64));
        a.record_staged(Bytes(64));
        a.record_used(Bytes(64));
        a.record_wasted(Bytes(64));
        let mut b = PrefetchStats::new();
        b.record_staged(Bytes(32));
        b.record_used(Bytes(32));
        a.merge(&b);
        assert_eq!(a.staged_pages, 3);
        assert_eq!(a.staged_bytes, Bytes(160));
        assert_eq!(a.used_pages, 2);
        assert_eq!(a.used_bytes, Bytes(96));
        assert_eq!(a.wasted_bytes, Bytes(64));
        assert!((a.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert!(a.to_string().contains("staged=3"));
    }

    #[test]
    fn cache_merge_adds_fields() {
        let mut a = CacheStats::new();
        a.record_hits(2);
        a.record_misses(1);
        let mut b = CacheStats::new();
        b.record_hits(3);
        a.merge(&b);
        assert_eq!(a.hits, 5);
        assert_eq!(a.misses, 1);
    }
}
