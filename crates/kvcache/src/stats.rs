//! Counters for transfers and cache behaviour.
//!
//! The experiments of §V-C (cache hit rates, throughput improvement from the
//! cluster-granularity cache) are driven by these counters.

use crate::types::Bytes;
use serde::{Deserialize, Serialize};

/// Host-to-device transfer accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferStats {
    /// Number of separate transfer operations issued.
    pub transfers: u64,
    /// Total bytes moved from CPU to GPU memory.
    pub bytes_to_device: Bytes,
    /// Number of tokens whose KV was moved.
    pub tokens_moved: u64,
}

impl TransferStats {
    /// New, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a transfer of `tokens` tokens totalling `bytes`.
    pub fn record(&mut self, tokens: u64, bytes: Bytes) {
        if bytes.get() == 0 && tokens == 0 {
            return;
        }
        self.transfers += 1;
        self.bytes_to_device += bytes;
        self.tokens_moved += tokens;
    }

    /// Merge another set of statistics into this one.
    pub fn merge(&mut self, other: &TransferStats) {
        self.transfers += other.transfers;
        self.bytes_to_device += other.bytes_to_device;
        self.tokens_moved += other.tokens_moved;
    }
}

/// Hit/miss accounting for the selected-KV cache (§IV-D).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that were served from the GPU cache.
    pub hits: u64,
    /// Lookups that required a fetch from CPU memory.
    pub misses: u64,
}

impl CacheStats {
    /// New, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` hits.
    pub fn record_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// Record `n` misses.
    pub fn record_misses(&mut self, n: u64) {
        self.misses += n;
    }

    /// Total lookups.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; `0.0` when no lookups were recorded.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Merge another set of statistics into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} hit_rate={:.1}%",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_stats_accumulate() {
        let mut s = TransferStats::new();
        s.record(10, Bytes(100));
        s.record(5, Bytes(50));
        assert_eq!(s.transfers, 2);
        assert_eq!(s.bytes_to_device, Bytes(150));
        assert_eq!(s.tokens_moved, 15);
    }

    #[test]
    fn empty_transfer_is_not_counted() {
        let mut s = TransferStats::new();
        s.record(0, Bytes(0));
        assert_eq!(s.transfers, 0);
    }

    #[test]
    fn transfer_merge_adds_fields() {
        let mut a = TransferStats::new();
        a.record(1, Bytes(10));
        let mut b = TransferStats::new();
        b.record(2, Bytes(20));
        a.merge(&b);
        assert_eq!(a.transfers, 2);
        assert_eq!(a.bytes_to_device, Bytes(30));
        assert_eq!(a.tokens_moved, 3);
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        let s = CacheStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn hit_rate_is_ratio_of_hits() {
        let mut s = CacheStats::new();
        s.record_hits(63);
        s.record_misses(37);
        assert!((s.hit_rate() - 0.63).abs() < 1e-9);
        assert_eq!(s.total(), 100);
        assert!(s.to_string().contains("63"));
    }

    #[test]
    fn cache_merge_adds_fields() {
        let mut a = CacheStats::new();
        a.record_hits(2);
        a.record_misses(1);
        let mut b = CacheStats::new();
        b.record_hits(3);
        a.merge(&b);
        assert_eq!(a.hits, 5);
        assert_eq!(a.misses, 1);
    }
}
