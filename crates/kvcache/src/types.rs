//! Strongly-typed identifiers and sizes shared across the workspace.

use serde::{Deserialize, Serialize};

/// Position of a token in the sequence (0-based).
///
/// # Examples
///
/// ```
/// use clusterkv_kvcache::TokenId;
/// let t = TokenId(5);
/// assert_eq!(t.index(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TokenId(pub usize);

impl TokenId {
    /// The raw positional index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for TokenId {
    fn from(v: usize) -> Self {
        TokenId(v)
    }
}

impl std::fmt::Display for TokenId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Index of a transformer layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LayerId(pub usize);

impl From<usize> for LayerId {
    fn from(v: usize) -> Self {
        LayerId(v)
    }
}

/// Index of an attention head within a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HeadId(pub usize);

impl From<usize> for HeadId {
    fn from(v: usize) -> Self {
        HeadId(v)
    }
}

/// KV-cache budget: the number of tokens whose keys/values participate in
/// the approximated attention computation (`B` in the paper).
///
/// # Examples
///
/// ```
/// use clusterkv_kvcache::Budget;
/// let b = Budget::new(1024);
/// assert_eq!(b.tokens(), 1024);
/// assert!(b.covers(1000));
/// assert!(!b.covers(2000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Budget(usize);

impl Budget {
    /// Create a budget of `tokens` tokens.
    pub fn new(tokens: usize) -> Self {
        Budget(tokens)
    }

    /// Number of tokens allowed by the budget.
    #[inline]
    pub fn tokens(self) -> usize {
        self.0
    }

    /// Whether a context of `len` tokens fits entirely inside the budget
    /// (in which case compression is a no-op and full attention is exact).
    #[inline]
    pub fn covers(self, len: usize) -> bool {
        len <= self.0
    }
}

impl From<usize> for Budget {
    fn from(v: usize) -> Self {
        Budget(v)
    }
}

impl std::fmt::Display for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B={}", self.0)
    }
}

/// Size in bytes, used by the device/transfer model.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Bytes occupied by `n` f16 values (the KV dtype assumed by the cost
    /// model, matching the fp16 inference of the paper's testbed).
    pub fn of_f16(n: usize) -> Self {
        Bytes(2 * n as u64)
    }

    /// Bytes occupied by `n` f32 values.
    pub fn of_f32(n: usize) -> Self {
        Bytes(4 * n as u64)
    }

    /// Raw byte count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Convert to (binary) gigabytes.
    pub fn to_gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }
}

impl std::ops::Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes(0), |a, b| a + b)
    }
}

impl std::fmt::Display for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1 << 30 {
            write!(f, "{:.2} GiB", self.to_gib())
        } else if self.0 >= 1 << 20 {
            write!(f, "{:.2} MiB", self.0 as f64 / (1024.0 * 1024.0))
        } else if self.0 >= 1 << 10 {
            write!(f, "{:.2} KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_id_display_and_conversion() {
        let t: TokenId = 7usize.into();
        assert_eq!(t.to_string(), "t7");
        assert_eq!(t.index(), 7);
    }

    #[test]
    fn budget_covers_boundary() {
        let b = Budget::new(256);
        assert!(b.covers(256));
        assert!(!b.covers(257));
        assert_eq!(b.to_string(), "B=256");
    }

    #[test]
    fn budget_ordering_follows_token_count() {
        assert!(Budget::new(256) < Budget::new(512));
        assert_eq!(Budget::from(512usize), Budget::new(512));
    }

    #[test]
    fn bytes_arithmetic_and_display() {
        let b = Bytes::of_f16(1024) + Bytes::of_f32(256);
        assert_eq!(b.get(), 2 * 1024 + 4 * 256);
        assert!(Bytes(3 * 1024 * 1024 * 1024).to_string().contains("GiB"));
        assert!(Bytes(5 * 1024 * 1024).to_string().contains("MiB"));
        assert!(Bytes(2048).to_string().contains("KiB"));
        assert!(Bytes(12).to_string().contains("B"));
    }

    #[test]
    fn bytes_sum_over_iterator() {
        let total: Bytes = vec![Bytes(1), Bytes(2), Bytes(3)].into_iter().sum();
        assert_eq!(total, Bytes(6));
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        use std::collections::BTreeSet;
        let set: BTreeSet<LayerId> = [LayerId(2), LayerId(0), LayerId(1)].into_iter().collect();
        let v: Vec<usize> = set.into_iter().map(|l| l.0).collect();
        assert_eq!(v, vec![0, 1, 2]);
        let h: HeadId = 3usize.into();
        assert_eq!(h, HeadId(3));
    }
}
