//! Tiered cluster-granularity KV cache: a capacity-bounded GPU resident set
//! over a CPU backing store (DESIGN.md §3).
//!
//! After prefill the full KV cache lives in CPU DRAM; the GPU keeps
//! centroids, metadata and a bounded *selected-KV cache* holding the KV of
//! recently selected clusters (Fig. 5). [`ClusterCache`] models that
//! hierarchy for one session: pages (clusters for ClusterKV, positional
//! pages for Quest, single tokens for InfiniGen) are admitted into a GPU
//! [`MemoryTier`] with deterministic LRU eviction, and every access reports
//! which pages hit the resident set and which had to be recalled over PCIe.
//!
//! With a lossy [`CompressionConfig`] the residency lattice has three
//! states (DESIGN.md §9): an LRU victim is first *demoted* in place —
//! Resident → Compressed, shrinking its GPU footprint to the quantized
//! layout — and only dropped to the backing store (→ Paged) under continued
//! pressure. Compressed pages serve accesses without PCIe traffic, and cold
//! recalls travel at the integer width.
//!
//! In lossless mode residency never changes *what* is attended — only what
//! the recall costs. The serving engine enforces that invariant with a
//! parity suite (token streams are byte-identical with the cache enabled or
//! disabled).

use crate::compressed::CompressionConfig;
use crate::stats::{CacheStats, CompressionStats, PrefetchStats, TransferStats};
use crate::tier::{MemoryTier, TierKind};
use crate::types::{Bytes, HeadId, LayerId};
use clusterkv_faults::{Fnv64, IntegrityStats};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Identity of one KV page within a session: the attention head it belongs
/// to plus the policy-defined page id (cluster id for ClusterKV, page index
/// for Quest, token position for InfiniGen).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageKey {
    /// Layer of the owning head.
    pub layer: LayerId,
    /// Query head the page belongs to (residency is tracked at query-head
    /// granularity, matching the per-head selectors).
    pub head: HeadId,
    /// Policy-defined page id, unique within the head.
    pub page: usize,
}

/// One entry of a selection plan's paged-recall request: a page id and the
/// number of tokens the page currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageRequest {
    /// Policy-defined page id, unique within the head.
    pub page: usize,
    /// Tokens in the page at request time (pages may grow, e.g. Quest's
    /// youngest page).
    pub tokens: usize,
}

impl PageRequest {
    /// Build a request.
    pub fn new(page: usize, tokens: usize) -> Self {
        Self { page, tokens }
    }
}

/// Sizing of the tiered cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterCacheConfig {
    /// Capacity of the GPU-resident selected-KV cache. `0` disables caching:
    /// every selected page is recalled from CPU memory at every step (the
    /// "no cache" configuration of §V-C).
    pub gpu_capacity: Bytes,
    /// K+V bytes of a single token of a single head (`4 · head_dim` under
    /// the fp16 cost model).
    pub bytes_per_token: Bytes,
    /// Compressed-tier configuration (DESIGN.md §9). Lossless by default:
    /// eviction drops pages outright and recalls move exact f16 bytes,
    /// exactly the pre-compression behaviour.
    pub compression: CompressionConfig,
    /// Capacity of the speculative staging buffer (DESIGN.md §10): GPU
    /// memory set aside for pages moved ahead of demand by
    /// [`ClusterCache::stage`]. `0` (the default) disables staging entirely;
    /// the buffer is carved out separately from `gpu_capacity`, so staging
    /// never competes with — and can never evict — resident pages.
    pub staging_capacity: Bytes,
}

impl ClusterCacheConfig {
    /// Config for heads of dimension `head_dim` with the given GPU capacity.
    pub fn new(gpu_capacity: Bytes, head_dim: usize) -> Self {
        Self {
            gpu_capacity,
            bytes_per_token: Bytes::of_f16(2 * head_dim),
            compression: CompressionConfig::lossless(),
            staging_capacity: Bytes(0),
        }
    }

    /// Enable the compressed tier.
    pub fn with_compression(mut self, compression: CompressionConfig) -> Self {
        self.compression = compression;
        self
    }

    /// Enable the speculative staging buffer with `capacity` bytes.
    pub fn with_staging(mut self, capacity: Bytes) -> Self {
        self.staging_capacity = capacity;
        self
    }

    /// Capacity holding `steps` decode steps' worth of a `budget_tokens`
    /// selection for one head — the LRU analogue of the paper's recency
    /// window `R = steps` (§IV-D). Multiply `budget_tokens` by the number of
    /// selective heads when sizing a whole-session cache.
    pub fn for_recency_window(steps: usize, budget_tokens: usize, head_dim: usize) -> Self {
        let per_step = Bytes::of_f16(2 * head_dim).get() * budget_tokens as u64;
        Self::new(Bytes(per_step * steps as u64), head_dim)
    }
}

/// Outcome of one per-head cache access (one decode step of one head).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// Pages served entirely from the GPU resident set.
    pub hit_pages: usize,
    /// Pages that were fully or partially recalled from CPU memory.
    pub missed_pages: usize,
    /// Tokens served from the GPU resident set.
    pub hit_tokens: u64,
    /// Tokens recalled from CPU memory over PCIe.
    pub missed_tokens: u64,
    /// Bytes moved host-to-device for the misses. When the compressed tier
    /// is quantized, cold pages travel at the integer width, so this is
    /// smaller than `missed_tokens · bytes_per_token`.
    pub bytes_recalled: Bytes,
    /// Of the hit pages, how many were served from the compressed tier.
    pub compressed_pages: usize,
    /// Of the hit tokens, how many came from compressed pages (no PCIe, but
    /// a dequantize on access).
    pub compressed_tokens: u64,
    /// Of the missed pages, how many were promoted from the staging buffer
    /// (their bytes already moved by an overlapped staged transfer). Still
    /// counted in `missed_pages`/`missed_tokens`/`bytes_recalled` — staging
    /// changes *when* bytes move, never the hit/miss accounting.
    pub staged_pages: usize,
    /// Tokens of the missed pages that were promoted from staging.
    pub staged_tokens: u64,
    /// Bytes of `bytes_recalled` that the staged transfer already moved (the
    /// overlap clock subtracts these from the demand-transfer term).
    pub staged_bytes: Bytes,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ResidentPage {
    tokens: usize,
    stamp: u64,
    /// Whether the page was demoted to the compressed tier (DESIGN.md §9).
    compressed: bool,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct StagedPage {
    tokens: usize,
    stamp: u64,
    /// Bytes the staged transfer moved (recall width at stage time).
    bytes: Bytes,
}

/// Capacity-bounded GPU resident set with deterministic LRU eviction over a
/// CPU backing store.
///
/// # Examples
///
/// ```
/// use clusterkv_kvcache::cluster_cache::{ClusterCache, ClusterCacheConfig, PageRequest};
/// use clusterkv_kvcache::types::{Bytes, HeadId, LayerId};
///
/// // Room for 8 tokens of head_dim 4 (4 * 8 = 32 bytes per token).
/// let mut cache = ClusterCache::new(ClusterCacheConfig::new(Bytes(16 * 16), 4));
/// let (l, h) = (LayerId(0), HeadId(0));
/// let cold = cache.access(l, h, &[PageRequest::new(0, 8)]);
/// assert_eq!(cold.missed_tokens, 8);
/// let warm = cache.access(l, h, &[PageRequest::new(0, 8)]);
/// assert_eq!(warm.hit_tokens, 8);
/// assert_eq!(warm.bytes_recalled, Bytes(0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterCache {
    bytes_per_token: Bytes,
    compression: CompressionConfig,
    gpu: MemoryTier,
    cpu: MemoryTier,
    resident: BTreeMap<PageKey, ResidentPage>,
    /// LRU order: stamp → page. Stamps are unique (a monotone clock), so
    /// eviction order is fully deterministic.
    lru: BTreeMap<u64, PageKey>,
    /// Pages ever seen (admitted, accessed or declined): warm admission only
    /// applies to pages the cache has never seen, so a page evicted under
    /// capacity pressure cannot sneak back in for free.
    known: BTreeSet<PageKey>,
    /// Heads whose KV has been offloaded wholesale (a warm call declined):
    /// capacity is fixed and page tables only grow, so the decision is
    /// permanent and later warm calls can skip their table scan entirely.
    offloaded: BTreeSet<(LayerId, HeadId)>,
    clock: u64,
    stats: CacheStats,
    transfers: TransferStats,
    compression_stats: CompressionStats,
    /// Capacity of the speculative staging buffer (DESIGN.md §10). Tracked
    /// separately from the resident tier: staged bytes never count against
    /// `gpu`, and staging evicts only other staged pages — never a resident
    /// one.
    staging_capacity: Bytes,
    staging_used: Bytes,
    staged: BTreeMap<PageKey, StagedPage>,
    /// Staging LRU: stamp → page, sharing the cache's monotone clock so
    /// staging eviction order is deterministic and coherent with the
    /// resident LRU.
    staging_lru: BTreeMap<u64, PageKey>,
    prefetch_stats: PrefetchStats,
    /// FNV-1a tag per resident page, sealed at admission and kept in
    /// lock-step with `resident`. The cache tracks residency, not payloads,
    /// so the tag commits to the page's identity and token count — the
    /// modeled stand-in for a checksum over row bytes (DESIGN.md §11).
    checksums: BTreeMap<PageKey, u64>,
    integrity: IntegrityStats,
}

impl ClusterCache {
    /// Create a cache with the given sizing over a default host-DRAM backing
    /// tier.
    pub fn new(config: ClusterCacheConfig) -> Self {
        let mut cache = Self::with_tiers(
            MemoryTier::new(TierKind::Gpu, config.gpu_capacity),
            MemoryTier::host_dram(),
            config.bytes_per_token,
        );
        cache.compression = config.compression;
        cache.staging_capacity = config.staging_capacity;
        cache
    }

    /// Create a cache over explicit GPU/CPU tiers (e.g. a small DRAM tier to
    /// exercise backing-store overflow). Compression defaults to lossless.
    pub fn with_tiers(gpu: MemoryTier, cpu: MemoryTier, bytes_per_token: Bytes) -> Self {
        Self {
            bytes_per_token,
            compression: CompressionConfig::lossless(),
            gpu,
            cpu,
            resident: BTreeMap::new(),
            lru: BTreeMap::new(),
            known: BTreeSet::new(),
            offloaded: BTreeSet::new(),
            clock: 0,
            stats: CacheStats::new(),
            transfers: TransferStats::new(),
            compression_stats: CompressionStats::new(),
            staging_capacity: Bytes(0),
            staging_used: Bytes(0),
            staged: BTreeMap::new(),
            staging_lru: BTreeMap::new(),
            prefetch_stats: PrefetchStats::new(),
            checksums: BTreeMap::new(),
            integrity: IntegrityStats::new(),
        }
    }

    /// Whether the cache can hold anything at all (`gpu_capacity > 0`).
    pub fn enabled(&self) -> bool {
        self.gpu.capacity().get() > 0
    }

    /// GPU capacity of the resident set.
    pub fn capacity(&self) -> Bytes {
        self.gpu.capacity()
    }

    /// Bytes currently resident on the GPU.
    pub fn resident_bytes(&self) -> Bytes {
        self.gpu.used()
    }

    /// Number of pages currently resident on the GPU.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Whether a page is currently GPU resident.
    pub fn contains(&self, key: PageKey) -> bool {
        self.resident.contains_key(&key)
    }

    /// Whether a head's KV has been offloaded wholesale (some
    /// [`warm`](Self::warm) call declined). Callers can skip building the
    /// head's page table once this is true — the decision is permanent.
    pub fn is_offloaded(&self, layer: LayerId, head: HeadId) -> bool {
        self.offloaded.contains(&(layer, head))
    }

    /// The GPU tier (resident set).
    pub fn gpu(&self) -> &MemoryTier {
        &self.gpu
    }

    /// The CPU tier (backing store).
    pub fn cpu(&self) -> &MemoryTier {
        &self.cpu
    }

    /// Token-level hit/miss statistics accumulated over every access.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Host-to-device transfer accounting accumulated over every access.
    pub fn transfers(&self) -> TransferStats {
        self.transfers
    }

    /// Compressed-tier configuration.
    pub fn compression(&self) -> CompressionConfig {
        self.compression
    }

    /// Compressed-tier accounting (demotions, compressed hits, byte ratio).
    pub fn compression_stats(&self) -> CompressionStats {
        self.compression_stats
    }

    /// Number of pages currently resident in compressed form.
    pub fn compressed_pages(&self) -> usize {
        self.resident.values().filter(|p| p.compressed).count()
    }

    /// Bytes of the GPU resident set currently held compressed.
    pub fn compressed_resident_bytes(&self) -> Bytes {
        self.gpu.compressed_bytes()
    }

    /// Capacity of the speculative staging buffer (`0` disables staging).
    pub fn staging_capacity(&self) -> Bytes {
        self.staging_capacity
    }

    /// Bytes currently held in the staging buffer.
    pub fn staged_bytes(&self) -> Bytes {
        self.staging_used
    }

    /// Number of pages currently staged.
    pub fn staged_pages(&self) -> usize {
        self.staged.len()
    }

    /// Prefetch accounting (staged / used / wasted bytes and accuracy).
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetch_stats
    }

    /// Record the size of the full KV cache held in the CPU backing store
    /// (grows as the context grows; replaces the previous size).
    ///
    /// # Errors
    ///
    /// Returns [`AllocationError`](crate::tier::AllocationError) if the full
    /// KV no longer fits in host DRAM.
    pub fn set_backing(&mut self, total_kv: Bytes) -> Result<(), crate::tier::AllocationError> {
        self.cpu.allocate("kv-backing", total_kv)
    }

    fn page_bytes(&self, tokens: usize) -> Bytes {
        Bytes(self.bytes_per_token.get() * tokens as u64)
    }

    /// Modeled size of `tokens` tokens in the compressed layout.
    fn compressed_page_bytes(&self, tokens: usize) -> Bytes {
        self.compression.page_bytes(tokens, self.bytes_per_token)
    }

    /// Bytes one recalled token moves over PCIe. With a quantized compressed
    /// tier the CPU backing store holds cold pages at the integer width, so
    /// recalls travel compressed (§9); lossless mode moves exact f16 bytes.
    fn recall_bytes(&self, tokens: usize) -> Bytes {
        if self.compression.is_lossless() {
            self.page_bytes(tokens)
        } else if tokens == 0 {
            Bytes(0)
        } else {
            self.compressed_page_bytes(tokens)
        }
    }

    fn alloc_name(key: PageKey) -> String {
        format!("l{}h{}p{}", key.layer.0, key.head.0, key.page)
    }

    fn touch(&mut self, key: PageKey) {
        if let Some(entry) = self.resident.get_mut(&key) {
            self.lru.remove(&entry.stamp);
            self.clock += 1;
            entry.stamp = self.clock;
            self.lru.insert(self.clock, key);
        }
    }

    fn drop_page(&mut self, key: PageKey) {
        if let Some(entry) = self.resident.remove(&key) {
            self.lru.remove(&entry.stamp);
            self.checksums.remove(&key);
            self.gpu.free(&Self::alloc_name(key));
        }
    }

    /// Integrity tag of a resident page: FNV-1a over its identity and token
    /// count (the cache models residency, not payload bytes).
    fn page_tag(key: PageKey, tokens: usize) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(key.layer.0 as u64);
        h.write_u64(key.head.0 as u64);
        h.write_u64(key.page as u64);
        h.write_u64(tokens as u64);
        h.finish()
    }

    /// Remove a page from the staging buffer, returning its entry.
    fn unstage(&mut self, key: PageKey) -> Option<StagedPage> {
        let entry = self.staged.remove(&key)?;
        self.staging_lru.remove(&entry.stamp);
        self.staging_used = Bytes(self.staging_used.get() - entry.bytes.get());
        Some(entry)
    }

    /// Demote a resident page to the compressed tier: its GPU region
    /// re-allocates at the compressed size and the page stays resident
    /// (and stays at its LRU position — demotion is not a use). Returns
    /// whether the page was demoted.
    fn demote_page(&mut self, key: PageKey) -> bool {
        let Some(entry) = self.resident.get(&key) else {
            return false;
        };
        if entry.compressed || !self.compression.shrinks(entry.tokens, self.bytes_per_token) {
            return false;
        }
        let tokens = entry.tokens;
        let exact = self.page_bytes(tokens);
        let compressed = self.compressed_page_bytes(tokens);
        self.gpu
            .allocate_compressed(&Self::alloc_name(key), compressed)
            .expect("demotion shrinks the allocation");
        self.resident
            .get_mut(&key)
            .expect("checked resident")
            .compressed = true;
        self.compression_stats.record_demotion(exact, compressed);
        true
    }

    /// Make room for `size` in two passes over the LRU order: first demote
    /// exact victims to the compressed tier (Resident → Compressed), and
    /// only if that is not enough drop victims to the backing store outright
    /// (Compressed → Paged). Returns whether `size` fits afterwards. Never
    /// touches anything when `size` exceeds the total capacity. With a
    /// lossless config demotion never shrinks, so this degenerates to the
    /// original evict-outright behaviour.
    fn evict_until_fits(&mut self, size: Bytes) -> bool {
        if size.get() > self.gpu.capacity().get() {
            return false;
        }
        if !self.gpu.fits(size) && !self.compression.is_lossless() {
            let victims: Vec<PageKey> = self.lru.values().copied().collect();
            for key in victims {
                if self.gpu.fits(size) {
                    break;
                }
                self.demote_page(key);
            }
        }
        while !self.gpu.fits(size) {
            let victim = match self.lru.iter().next() {
                Some((_, &key)) => key,
                None => return false,
            };
            self.drop_page(victim);
        }
        true
    }

    fn admit(&mut self, key: PageKey, tokens: usize) {
        let size = self.page_bytes(tokens);
        if !self.evict_until_fits(size) {
            return;
        }
        self.gpu
            .allocate(&Self::alloc_name(key), size)
            .expect("eviction made room");
        self.clock += 1;
        self.resident.insert(
            key,
            ResidentPage {
                tokens,
                stamp: self.clock,
                compressed: false,
            },
        );
        self.lru.insert(self.clock, key);
        self.checksums.insert(key, Self::page_tag(key, tokens));
    }

    /// Keep a head's just-produced KV resident instead of offloading it —
    /// all or nothing, without eviction and without recall accounting. If
    /// the *entire* page table fits (new pages plus growth of resident
    /// ones), everything is admitted: the head was never under memory
    /// pressure, so nothing is offloaded and nothing will ever be recalled
    /// (capacity ≥ full KV ⇒ 100 % hit rate). Otherwise the call is a no-op:
    /// the head's KV is offloaded wholesale (Fig. 5) and the GPU set holds
    /// only pages recalled by [`access`](Self::access). A page that was ever
    /// evicted keeps the head in offload mode — it cannot sneak back in for
    /// free. Returns the number of newly admitted pages.
    pub fn warm(&mut self, layer: LayerId, head: HeadId, pages: &[PageRequest]) -> usize {
        if self.offloaded.contains(&(layer, head)) {
            return 0;
        }
        let mut needed = Bytes(0);
        for req in pages {
            let key = PageKey {
                layer,
                head,
                page: req.page,
            };
            match self.resident.get(&key) {
                Some(entry) if req.tokens > entry.tokens => {
                    // Growth re-admits the page exact, so a compressed page
                    // needs the full exact size minus its (smaller)
                    // compressed allocation.
                    let current = if entry.compressed {
                        self.compressed_page_bytes(entry.tokens)
                    } else {
                        self.page_bytes(entry.tokens)
                    };
                    needed += Bytes(
                        self.page_bytes(req.tokens)
                            .get()
                            .saturating_sub(current.get()),
                    );
                }
                Some(_) => {}
                None if self.known.contains(&key) => {
                    self.offloaded.insert((layer, head));
                    return 0;
                }
                None => needed += self.page_bytes(req.tokens),
            }
        }
        if !self.gpu.fits(needed) {
            // Capacity is fixed and the head's table only grows: once it
            // stops fitting it never fits again.
            self.offloaded.insert((layer, head));
            return 0;
        }
        let mut admitted = 0;
        for req in pages {
            let key = PageKey {
                layer,
                head,
                page: req.page,
            };
            match self.resident.get(&key) {
                Some(entry) if req.tokens > entry.tokens => {
                    self.gpu
                        .allocate(&Self::alloc_name(key), self.page_bytes(req.tokens))
                        .expect("total growth checked");
                    let entry = self.resident.get_mut(&key).expect("checked resident");
                    entry.tokens = req.tokens;
                    // Growth re-admits exact; fresh tokens were produced on
                    // device, never compressed.
                    entry.compressed = false;
                    // The page changed size: re-seal its integrity tag.
                    self.checksums.insert(key, Self::page_tag(key, req.tokens));
                }
                Some(_) => {}
                None => {
                    self.known.insert(key);
                    // Freshly produced on-device KV supersedes any staged
                    // copy (keeps staged ∩ resident = ∅).
                    if let Some(staged) = self.unstage(key) {
                        self.prefetch_stats.record_wasted(staged.bytes);
                    }
                    self.admit(key, req.tokens);
                    admitted += 1;
                }
            }
        }
        admitted
    }

    /// Speculatively move nominated pages into the staging buffer ahead of
    /// demand (DESIGN.md §10). Staging is purely an accounting device for
    /// the overlap clock: it never changes residency, hit/miss counters or
    /// recall bytes — a staged page that is later demanded still *misses*
    /// and still charges its recall bytes; only the overlap clock discounts
    /// the bytes the staged transfer already moved.
    ///
    /// Per nomination, in order: zero-token and GPU-resident pages are
    /// skipped (growth deltas of resident pages always travel on demand); a
    /// staged copy covering the nomination is refreshed in staging-LRU
    /// order; pages whose recall size exceeds the staging capacity or the
    /// remaining `byte_budget` of this call are skipped; a smaller staged
    /// copy is superseded (its transfer was wasted); and the oldest staged
    /// pages — never resident ones — are evicted until the new page fits.
    /// Returns the bytes staged by this call.
    pub fn stage(
        &mut self,
        layer: LayerId,
        head: HeadId,
        pages: &[PageRequest],
        byte_budget: Bytes,
    ) -> Bytes {
        if self.staging_capacity.get() == 0 {
            return Bytes(0);
        }
        let mut staged = Bytes(0);
        for req in pages {
            if req.tokens == 0 {
                continue;
            }
            let key = PageKey {
                layer,
                head,
                page: req.page,
            };
            if self.resident.contains_key(&key) {
                continue;
            }
            if let Some(entry) = self.staged.get(&key) {
                if entry.tokens >= req.tokens {
                    // Already staged with coverage: refresh its staging-LRU
                    // position; no new bytes move.
                    let stamp = entry.stamp;
                    self.staging_lru.remove(&stamp);
                    self.clock += 1;
                    let entry = self.staged.get_mut(&key).expect("checked staged");
                    entry.stamp = self.clock;
                    self.staging_lru.insert(self.clock, key);
                    continue;
                }
            }
            let size = self.recall_bytes(req.tokens);
            if size.get() > self.staging_capacity.get()
                || staged.get() + size.get() > byte_budget.get()
            {
                // Over capacity or budget: skip, keeping any smaller staged
                // copy (it can still serve a smaller future demand).
                continue;
            }
            if let Some(old) = self.unstage(key) {
                // A larger nomination supersedes the staged copy: the old
                // transfer is wasted and the page restages in full.
                self.prefetch_stats.record_wasted(old.bytes);
            }
            while self.staging_used.get() + size.get() > self.staging_capacity.get() {
                let victim = match self.staging_lru.iter().next() {
                    Some((_, &key)) => key,
                    None => break,
                };
                let evicted = self.unstage(victim).expect("victim is staged");
                self.prefetch_stats.record_wasted(evicted.bytes);
            }
            self.clock += 1;
            self.staged.insert(
                key,
                StagedPage {
                    tokens: req.tokens,
                    stamp: self.clock,
                    bytes: size,
                },
            );
            self.staging_lru.insert(self.clock, key);
            self.staging_used += size;
            self.prefetch_stats.record_staged(size);
            staged += size;
        }
        staged
    }

    /// Look up the pages selected by one head at one decode step: resident
    /// pages hit (and are refreshed in LRU order), the rest are recalled
    /// from CPU memory, admitted, and older pages are evicted to make room.
    /// A resident page that has grown recalls only the new tokens.
    pub fn access(&mut self, layer: LayerId, head: HeadId, pages: &[PageRequest]) -> StepOutcome {
        let mut out = StepOutcome::default();
        for req in pages {
            let key = PageKey {
                layer,
                head,
                page: req.page,
            };
            self.known.insert(key);
            match self.resident.get(&key) {
                Some(entry) if entry.tokens >= req.tokens => {
                    out.hit_pages += 1;
                    out.hit_tokens += req.tokens as u64;
                    if entry.compressed {
                        // Served from the compressed tier: on-GPU (no PCIe),
                        // dequantized on access, and it stays compressed.
                        out.compressed_pages += 1;
                        out.compressed_tokens += req.tokens as u64;
                    }
                    self.touch(key);
                }
                Some(entry) => {
                    // Partial hit: the resident prefix is free, the new
                    // tokens are recalled and the page is re-admitted exact
                    // at its grown size.
                    let grown = req.tokens - entry.tokens;
                    if entry.compressed {
                        out.compressed_tokens += entry.tokens as u64;
                        out.compressed_pages += 1;
                    }
                    out.missed_pages += 1;
                    out.hit_tokens += entry.tokens as u64;
                    out.missed_tokens += grown as u64;
                    out.bytes_recalled += self.recall_bytes(grown);
                    self.drop_page(key);
                    self.admit(key, req.tokens);
                }
                None => {
                    out.missed_pages += 1;
                    out.missed_tokens += req.tokens as u64;
                    out.bytes_recalled += self.recall_bytes(req.tokens);
                    if let Some(&StagedPage { tokens, .. }) = self.staged.get(&key) {
                        let staged = self.unstage(key).expect("checked staged");
                        if tokens >= req.tokens {
                            // Promotion: the staged transfer already moved
                            // these bytes, so the overlap clock discounts
                            // them. Miss/recall accounting above is
                            // untouched — staging changes *when* bytes
                            // move, never what attends or what counts.
                            let used = self.recall_bytes(req.tokens);
                            self.prefetch_stats.record_used(used);
                            if staged.bytes.get() > used.get() {
                                self.prefetch_stats
                                    .record_wasted(Bytes(staged.bytes.get() - used.get()));
                            }
                            out.staged_pages += 1;
                            out.staged_tokens += req.tokens as u64;
                            out.staged_bytes += used;
                        } else {
                            // Stale: the staged copy is smaller than the
                            // demand, so the whole staged transfer was
                            // wasted and the page recalls in full.
                            self.prefetch_stats.record_wasted(staged.bytes);
                        }
                    }
                    self.admit(key, req.tokens);
                }
            }
        }
        self.stats.record_hits(out.hit_tokens);
        self.stats.record_misses(out.missed_tokens);
        self.compression_stats
            .record_compressed_hits(out.compressed_tokens);
        if out.missed_tokens > 0 {
            self.transfers.record(out.missed_tokens, out.bytes_recalled);
        }
        out
    }

    /// Integrity accounting: injected/detected/repaired corruptions and
    /// verifications over the resident set.
    pub fn integrity(&self) -> IntegrityStats {
        self.integrity
    }

    /// Flip the integrity tag of one deterministically chosen resident page
    /// (the `pick % resident_pages`-th in key order), modeling in-memory
    /// corruption. The backing store stays pristine, so attended values are
    /// unaffected — a later [`scrub`](Self::scrub) detects the damage and
    /// charges the repair traffic. Returns whether a page was corrupted
    /// (`false` when nothing is resident).
    pub fn corrupt_resident_page(&mut self, pick: u64) -> bool {
        if self.checksums.is_empty() {
            return false;
        }
        let idx = (pick % self.checksums.len() as u64) as usize;
        let key = match self.checksums.keys().nth(idx) {
            Some(&key) => key,
            None => return false,
        };
        if let Some(sum) = self.checksums.get_mut(&key) {
            *sum ^= clusterkv_faults::CORRUPTION_MASK;
        }
        self.integrity.record_injected();
        true
    }

    // analyzer: recovery-path
    /// Verify every resident page's integrity tag and repair mismatches by
    /// re-fetching the page from the backing store (re-seal the tag, charge
    /// the page's recall bytes). Detection is guaranteed: the corruption
    /// mask is non-zero, so a damaged tag never matches the recomputed one.
    /// Returns the bytes re-fetched by repairs.
    pub fn scrub(&mut self) -> Bytes {
        let mut repaired = Bytes(0);
        let keys: Vec<PageKey> = self.checksums.keys().copied().collect();
        for key in keys {
            let tokens = match self.resident.get(&key) {
                Some(entry) => entry.tokens,
                None => continue,
            };
            self.integrity.record_verified();
            let sealed = Self::page_tag(key, tokens);
            let stored = match self.checksums.get(&key) {
                Some(&stored) => stored,
                None => continue,
            };
            if stored != sealed {
                self.integrity.record_detected();
                let bytes = self.recall_bytes(tokens);
                self.checksums.insert(key, sealed);
                self.integrity.record_repaired(bytes.get());
                repaired += bytes;
            }
        }
        repaired
    }

    /// Drop the entire staging buffer (degradation-ladder rung 1): every
    /// staged page is discarded and its transfer recorded as wasted.
    /// Accounting-only — residency, hit/miss behaviour and token streams are
    /// untouched; a page dropped here simply recalls on demand later.
    /// Returns the bytes released.
    pub fn drop_staging(&mut self) -> Bytes {
        let mut dropped = Bytes(0);
        while let Some(&key) = self.staging_lru.values().next() {
            if let Some(entry) = self.unstage(key) {
                self.prefetch_stats.record_wasted(entry.bytes);
                dropped += entry.bytes;
            }
        }
        dropped
    }

    /// Demote every exact resident page to the compressed tier in LRU order
    /// (degradation-ladder rung 2). A no-op in lossless mode, where demotion
    /// never shrinks a page. Returns the number of pages demoted.
    pub fn demote_all(&mut self) -> usize {
        let victims: Vec<PageKey> = self.lru.values().copied().collect();
        victims
            .into_iter()
            .filter(|&key| self.demote_page(key))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LayerId = LayerId(0);
    const H: HeadId = HeadId(0);

    /// A cache holding `tokens` tokens of head_dim 1 (4 bytes per token).
    fn cache_for(tokens: u64) -> ClusterCache {
        ClusterCache::new(ClusterCacheConfig::new(Bytes(4 * tokens), 1))
    }

    fn reqs(pages: &[(usize, usize)]) -> Vec<PageRequest> {
        pages.iter().map(|&(p, t)| PageRequest::new(p, t)).collect()
    }

    #[test]
    fn cold_accesses_miss_then_hit() {
        let mut c = cache_for(32);
        let cold = c.access(L, H, &reqs(&[(0, 4), (1, 4)]));
        assert_eq!(cold.missed_pages, 2);
        assert_eq!(cold.missed_tokens, 8);
        assert_eq!(cold.bytes_recalled, Bytes(32));
        let warm = c.access(L, H, &reqs(&[(0, 4), (1, 4)]));
        assert_eq!(warm.hit_pages, 2);
        assert_eq!(warm.hit_tokens, 8);
        assert_eq!(warm.missed_tokens, 0);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(c.transfers().transfers, 1, "one recall op per miss step");
        assert_eq!(c.transfers().bytes_to_device, Bytes(32));
    }

    #[test]
    fn zero_capacity_disables_residency() {
        let mut c = cache_for(0);
        assert!(!c.enabled());
        for _ in 0..3 {
            let out = c.access(L, H, &reqs(&[(0, 4)]));
            assert_eq!(out.missed_tokens, 4);
        }
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.resident_pages(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // Capacity for exactly two 4-token pages.
        let mut c = cache_for(8);
        c.access(L, H, &reqs(&[(0, 4)]));
        c.access(L, H, &reqs(&[(1, 4)]));
        // Touch page 0 so page 1 becomes the LRU victim.
        c.access(L, H, &reqs(&[(0, 4)]));
        c.access(L, H, &reqs(&[(2, 4)]));
        assert!(c.contains(PageKey {
            layer: L,
            head: H,
            page: 0
        }));
        assert!(!c.contains(PageKey {
            layer: L,
            head: H,
            page: 1
        }));
        let out = c.access(L, H, &reqs(&[(1, 4)]));
        assert_eq!(out.missed_tokens, 4, "evicted page must be recalled");
    }

    #[test]
    fn page_larger_than_capacity_is_streamed_not_admitted() {
        let mut c = cache_for(8);
        c.access(L, H, &reqs(&[(0, 4)]));
        let out = c.access(L, H, &reqs(&[(9, 100)]));
        assert_eq!(out.missed_tokens, 100);
        assert_eq!(c.resident_pages(), 1, "oversized page must not evict");
        assert!(c.contains(PageKey {
            layer: L,
            head: H,
            page: 0
        }));
    }

    #[test]
    fn grown_page_recalls_only_the_delta() {
        let mut c = cache_for(32);
        c.access(L, H, &reqs(&[(0, 4)]));
        let out = c.access(L, H, &reqs(&[(0, 6)]));
        assert_eq!(out.hit_tokens, 4);
        assert_eq!(out.missed_tokens, 2);
        assert_eq!(out.bytes_recalled, Bytes(8));
        let again = c.access(L, H, &reqs(&[(0, 6)]));
        assert_eq!(again.hit_tokens, 6);
    }

    #[test]
    fn warm_is_all_or_nothing_and_offload_is_permanent() {
        // Capacity for two 4-token pages: a 3-page table does not fully fit,
        // so nothing is admitted and the head enters offload mode for good.
        let mut c = cache_for(8);
        assert_eq!(c.warm(L, H, &reqs(&[(0, 4), (1, 4), (2, 4)])), 0);
        assert_eq!(c.resident_bytes(), Bytes(0));
        assert!(c.is_offloaded(L, H));
        assert_eq!(c.warm(L, H, &reqs(&[(0, 4)])), 0, "offload is sticky");
        // Another head's 2-page table fits and is admitted in full.
        let h1 = HeadId(1);
        assert!(!c.is_offloaded(L, h1));
        assert_eq!(c.warm(L, h1, &reqs(&[(0, 4), (1, 4)])), 2);
        assert_eq!(c.resident_bytes(), Bytes(32));
    }

    #[test]
    fn warm_never_readmits_evicted_pages() {
        let mut c = cache_for(8);
        assert_eq!(c.warm(L, H, &reqs(&[(0, 4), (1, 4)])), 2);
        // A big recall evicts both warm pages...
        c.access(L, H, &reqs(&[(5, 8)]));
        assert!(!c.contains(PageKey {
            layer: L,
            head: H,
            page: 0
        }));
        // ...after which the head stays in offload mode: a table containing
        // the evicted page cannot be re-warmed for free.
        assert_eq!(c.warm(L, H, &reqs(&[(0, 4)])), 0);
        let out = c.access(L, H, &reqs(&[(0, 4)]));
        assert_eq!(out.missed_tokens, 4);
    }

    #[test]
    fn warm_grows_resident_pages_without_recall() {
        let mut c = cache_for(32);
        c.warm(L, H, &reqs(&[(0, 4)]));
        // The page absorbed two fresh on-device tokens.
        c.warm(L, H, &reqs(&[(0, 6)]));
        let out = c.access(L, H, &reqs(&[(0, 6)]));
        assert_eq!(out.hit_tokens, 6);
        assert_eq!(out.missed_tokens, 0);
        assert_eq!(c.resident_bytes(), Bytes(24));
    }

    #[test]
    fn warm_pages_hit_without_any_recall() {
        let mut c = cache_for(64);
        c.warm(L, H, &reqs(&[(0, 8), (1, 8)]));
        let out = c.access(L, H, &reqs(&[(0, 8), (1, 8)]));
        assert_eq!(out.hit_tokens, 16);
        assert_eq!(out.missed_tokens, 0);
        assert_eq!(c.transfers().transfers, 0);
        assert!((c.stats().hit_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heads_do_not_collide() {
        let mut c = cache_for(64);
        c.access(LayerId(0), HeadId(0), &reqs(&[(0, 4)]));
        let other_head = c.access(LayerId(0), HeadId(1), &reqs(&[(0, 4)]));
        assert_eq!(other_head.missed_tokens, 4, "same page id, different head");
        let other_layer = c.access(LayerId(1), HeadId(0), &reqs(&[(0, 4)]));
        assert_eq!(other_layer.missed_tokens, 4);
        assert_eq!(c.resident_pages(), 3);
    }

    #[test]
    fn accesses_are_deterministic() {
        let pattern: Vec<Vec<PageRequest>> = (0..50)
            .map(|i| reqs(&[(i % 5, 3), ((i + 2) % 7, 2)]))
            .collect();
        let run = || {
            let mut c = cache_for(16);
            let outs: Vec<StepOutcome> = pattern.iter().map(|p| c.access(L, H, p)).collect();
            (outs, c.stats(), c.transfers())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn larger_capacity_never_lowers_the_hit_rate() {
        // LRU is a stack algorithm: for a fixed access pattern the hit rate
        // is non-decreasing in capacity (the property exp_cache_hits sweeps).
        let pattern: Vec<Vec<PageRequest>> = (0..80)
            .map(|i| reqs(&[(i % 6, 4), ((i * 3) % 11, 4)]))
            .collect();
        let hit_rate = |tokens: u64| {
            let mut c = cache_for(tokens);
            for p in &pattern {
                c.access(L, H, p);
            }
            c.stats().hit_rate()
        };
        let rates: Vec<f64> = [0u64, 8, 16, 32, 64, 128]
            .iter()
            .map(|&t| hit_rate(t))
            .collect();
        for pair in rates.windows(2) {
            assert!(
                pair[1] >= pair[0] - 1e-12,
                "hit rate decreased with capacity: {rates:?}"
            );
        }
        assert_eq!(rates[0], 0.0);
    }

    #[test]
    fn backing_store_tracks_full_kv_and_overflows() {
        let mut c = ClusterCache::with_tiers(
            MemoryTier::new(TierKind::Gpu, Bytes(64)),
            MemoryTier::new(TierKind::Cpu, Bytes(100)),
            Bytes(4),
        );
        c.set_backing(Bytes(40)).unwrap();
        c.set_backing(Bytes(90)).unwrap();
        assert_eq!(c.cpu().used(), Bytes(90));
        let err = c.set_backing(Bytes(120)).unwrap_err();
        assert_eq!(err.tier, TierKind::Cpu);
        assert_eq!(err.available, Bytes(100));
    }

    #[test]
    fn recency_window_sizing_matches_budget_steps() {
        let cfg = ClusterCacheConfig::for_recency_window(2, 100, 8);
        // 2 steps * 100 tokens * 32 bytes (2 tensors * 2 bytes * 8 dims).
        assert_eq!(cfg.gpu_capacity, Bytes(2 * 100 * 32));
        assert_eq!(cfg.bytes_per_token, Bytes(32));
        assert!(cfg.compression.is_lossless(), "lossless by default");
    }

    use crate::compressed::CompressionConfig;

    /// A cache holding `tokens` tokens of head_dim 8 (32 bytes per token)
    /// under the given compression config.
    fn cache_with(tokens: u64, compression: CompressionConfig) -> ClusterCache {
        ClusterCache::new(
            ClusterCacheConfig::new(Bytes(32 * tokens), 8).with_compression(compression),
        )
    }

    #[test]
    fn lossless_eviction_never_demotes() {
        let mut c = cache_with(8, CompressionConfig::lossless());
        c.access(L, H, &reqs(&[(0, 4)]));
        c.access(L, H, &reqs(&[(1, 4)]));
        c.access(L, H, &reqs(&[(2, 4)]));
        assert_eq!(c.compressed_pages(), 0);
        assert_eq!(c.compression_stats().demotions, 0);
        assert_eq!(c.compressed_resident_bytes(), Bytes(0));
    }

    #[test]
    fn eviction_demotes_the_lru_victim_before_dropping() {
        // Capacity 320 B; a 4-token page is 128 B exact, 64 + 8 = 72 B int8.
        let mut c = cache_with(10, CompressionConfig::int8());
        c.access(L, H, &reqs(&[(0, 4)]));
        c.access(L, H, &reqs(&[(1, 4)]));
        // Admitting page 2 (128 B) does not fit next to two exact pages
        // (256 + 128 > 320). The demotion pass shrinks pages 0 and 1 to
        // 72 B each (144 + 128 ≤ 320), so nothing is dropped.
        c.access(L, H, &reqs(&[(2, 4)]));
        assert!(c.contains(PageKey {
            layer: L,
            head: H,
            page: 0
        }));
        assert!(c.contains(PageKey {
            layer: L,
            head: H,
            page: 1
        }));
        assert_eq!(c.resident_pages(), 3);
        assert_eq!(c.compressed_pages(), 2);
        assert_eq!(c.compression_stats().demotions, 2);
        assert_eq!(c.compressed_resident_bytes(), Bytes(144));
        assert!((c.compression_stats().ratio() - 256.0 / 144.0).abs() < 1e-9);
        // Accessing the demoted page is a compressed hit: on GPU, no PCIe.
        let out = c.access(L, H, &reqs(&[(0, 4)]));
        assert_eq!(out.hit_tokens, 4);
        assert_eq!(out.compressed_pages, 1);
        assert_eq!(out.compressed_tokens, 4);
        assert_eq!(out.missed_tokens, 0);
        assert_eq!(out.bytes_recalled, Bytes(0));
    }

    #[test]
    fn compressed_pages_drop_to_paged_under_continued_pressure() {
        let mut c = cache_with(8, CompressionConfig::int8());
        for p in 0..6 {
            c.access(L, H, &reqs(&[(p, 4)]));
        }
        // Every page could be demoted at most once; continued pressure must
        // have dropped the oldest ones entirely (Resident→Compressed→Paged).
        assert!(c.resident_bytes().get() <= c.capacity().get());
        assert!(!c.contains(PageKey {
            layer: L,
            head: H,
            page: 0
        }));
        let recall = c.access(L, H, &reqs(&[(0, 4)]));
        assert_eq!(recall.missed_tokens, 4);
        assert!(c.compression_stats().demotions > 0);
    }

    #[test]
    fn quantized_cold_recalls_move_fewer_bytes() {
        let mut exact = cache_with(32, CompressionConfig::lossless());
        let mut int8 = cache_with(32, CompressionConfig::int8());
        let cold = reqs(&[(0, 16)]);
        let e = exact.access(L, H, &cold);
        let q = int8.access(L, H, &cold);
        assert_eq!(e.missed_tokens, q.missed_tokens);
        assert_eq!(e.bytes_recalled, Bytes(16 * 32));
        assert_eq!(q.bytes_recalled, Bytes(16 * 16 + 8), "int8 + scales");
        assert!(q.bytes_recalled.get() < e.bytes_recalled.get());
    }

    #[test]
    fn grown_compressed_page_readmits_exact() {
        let mut c = cache_with(10, CompressionConfig::int8());
        c.access(L, H, &reqs(&[(0, 4)]));
        c.access(L, H, &reqs(&[(1, 4)]));
        c.access(L, H, &reqs(&[(2, 4)])); // demotes pages 0 and 1
        assert_eq!(c.compressed_pages(), 2);
        let out = c.access(L, H, &reqs(&[(0, 6)]));
        assert_eq!(out.hit_tokens, 4);
        assert_eq!(out.compressed_tokens, 4, "compressed prefix is free");
        assert_eq!(out.missed_tokens, 2);
        let key0 = PageKey {
            layer: L,
            head: H,
            page: 0,
        };
        if c.contains(key0) {
            assert!(!c.resident.get(&key0).unwrap().compressed);
        }
    }

    #[test]
    fn warm_growth_promotes_a_compressed_page() {
        // Capacity 640 B: a 4-token page (128 B) and a 16-token page
        // (512 B) fill it exactly; admitting page 2 demotes both
        // (72 + 264 + 128 ≤ 640) and leaves 176 B of headroom.
        let mut c = cache_with(20, CompressionConfig::int8());
        c.access(L, H, &reqs(&[(0, 4)]));
        c.access(L, H, &reqs(&[(1, 16)]));
        c.access(L, H, &reqs(&[(2, 4)]));
        assert_eq!(c.compressed_pages(), 2);
        // Warm growth of the demoted page 0 re-admits it exact at 5 tokens
        // (needs 160 − 72 = 88 B of the headroom): fresh tokens are
        // produced on device, never compressed.
        assert_eq!(c.warm(L, H, &reqs(&[(0, 5)])), 0, "growth, not admission");
        let key0 = PageKey {
            layer: L,
            head: H,
            page: 0,
        };
        assert!(c.contains(key0));
        assert!(!c.resident.get(&key0).unwrap().compressed, "promoted");
        assert_eq!(c.compressed_pages(), 1);
        let out = c.access(L, H, &reqs(&[(0, 5)]));
        assert_eq!(out.hit_tokens, 5);
        assert_eq!(out.compressed_tokens, 0);
        assert!(c.resident_bytes().get() <= c.capacity().get());
    }

    /// A cache holding `tokens` resident tokens plus a staging buffer of
    /// `staging_tokens` tokens, head_dim 1 (4 bytes per token).
    fn staged_cache_for(tokens: u64, staging_tokens: u64) -> ClusterCache {
        ClusterCache::new(
            ClusterCacheConfig::new(Bytes(4 * tokens), 1).with_staging(Bytes(4 * staging_tokens)),
        )
    }

    #[test]
    fn zero_staging_capacity_disables_staging() {
        let mut c = cache_for(16);
        assert_eq!(c.staging_capacity(), Bytes(0));
        assert_eq!(c.stage(L, H, &reqs(&[(0, 4)]), Bytes(u64::MAX)), Bytes(0));
        assert_eq!(c.staged_pages(), 0);
        assert_eq!(c.prefetch_stats(), PrefetchStats::new());
    }

    #[test]
    fn staged_page_promotes_without_changing_accounting() {
        let mut plain = cache_for(16);
        let mut staged = staged_cache_for(16, 8);
        assert_eq!(
            staged.stage(L, H, &reqs(&[(0, 4)]), Bytes(u64::MAX)),
            Bytes(16)
        );
        assert_eq!(staged.staged_bytes(), Bytes(16));
        let p = plain.access(L, H, &reqs(&[(0, 4)]));
        let s = staged.access(L, H, &reqs(&[(0, 4)]));
        // Hit/miss/recall accounting is identical — staging only marks the
        // bytes the overlap clock may discount.
        assert_eq!(p.missed_tokens, s.missed_tokens);
        assert_eq!(p.bytes_recalled, s.bytes_recalled);
        assert_eq!(p.hit_tokens, s.hit_tokens);
        assert_eq!(plain.stats(), staged.stats());
        assert_eq!(plain.transfers(), staged.transfers());
        assert_eq!(s.staged_pages, 1);
        assert_eq!(s.staged_tokens, 4);
        assert_eq!(s.staged_bytes, Bytes(16));
        assert_eq!(p.staged_pages, 0);
        // The promotion consumed the staged copy.
        assert_eq!(staged.staged_pages(), 0);
        assert_eq!(staged.staged_bytes(), Bytes(0));
        assert!((staged.prefetch_stats().accuracy() - 1.0).abs() < 1e-12);
        assert_eq!(staged.prefetch_stats().wasted_bytes, Bytes(0));
    }

    #[test]
    fn stage_skips_resident_pages_and_respects_budget() {
        let mut c = staged_cache_for(16, 16);
        c.access(L, H, &reqs(&[(0, 4)]));
        // Page 0 is resident; pages 1 and 2 want 16 B each but the call
        // budget only covers one of them.
        let moved = c.stage(L, H, &reqs(&[(0, 4), (1, 4), (2, 4)]), Bytes(16));
        assert_eq!(moved, Bytes(16));
        assert_eq!(c.staged_pages(), 1);
        assert_eq!(c.prefetch_stats().staged_pages, 1);
    }

    #[test]
    fn staging_never_exceeds_cap_and_never_evicts_resident() {
        // Staging holds two 4-token pages; resident set holds one.
        let mut c = staged_cache_for(4, 8);
        c.access(L, H, &reqs(&[(9, 4)]));
        let before_resident = c.resident_bytes();
        c.stage(L, H, &reqs(&[(0, 4), (1, 4), (2, 4)]), Bytes(u64::MAX));
        // Page 0 was evicted from staging (oldest) to make room for page 2.
        assert_eq!(c.staged_pages(), 2);
        assert_eq!(c.staged_bytes(), Bytes(32));
        assert!(c.staged_bytes().get() <= c.staging_capacity().get());
        assert_eq!(c.prefetch_stats().staged_pages, 3);
        assert_eq!(c.prefetch_stats().wasted_bytes, Bytes(16));
        // The resident set is untouched by staging pressure.
        assert_eq!(c.resident_bytes(), before_resident);
        assert!(c.contains(PageKey {
            layer: L,
            head: H,
            page: 9
        }));
        // The evicted nomination recalls on demand like any miss.
        let out = c.access(L, H, &reqs(&[(0, 4)]));
        assert_eq!(out.missed_tokens, 4);
        assert_eq!(out.staged_pages, 0);
    }

    #[test]
    fn oversized_page_is_never_staged() {
        let mut c = staged_cache_for(16, 4);
        assert_eq!(c.stage(L, H, &reqs(&[(0, 100)]), Bytes(u64::MAX)), Bytes(0));
        assert_eq!(c.staged_pages(), 0);
    }

    #[test]
    fn stale_staged_copy_is_wasted_on_larger_demand() {
        let mut c = staged_cache_for(16, 8);
        c.stage(L, H, &reqs(&[(0, 2)]), Bytes(u64::MAX));
        let out = c.access(L, H, &reqs(&[(0, 4)]));
        // The staged 2-token copy cannot serve a 4-token demand: full
        // demand recall, staged bytes all wasted.
        assert_eq!(out.missed_tokens, 4);
        assert_eq!(out.staged_pages, 0);
        assert_eq!(out.staged_bytes, Bytes(0));
        assert_eq!(c.prefetch_stats().used_pages, 0);
        assert_eq!(c.prefetch_stats().wasted_bytes, Bytes(8));
        assert_eq!(c.staged_pages(), 0);
    }

    #[test]
    fn larger_nomination_supersedes_staged_copy() {
        let mut c = staged_cache_for(16, 8);
        c.stage(L, H, &reqs(&[(0, 2)]), Bytes(u64::MAX));
        c.stage(L, H, &reqs(&[(0, 4)]), Bytes(u64::MAX));
        assert_eq!(c.staged_pages(), 1);
        assert_eq!(c.staged_bytes(), Bytes(16));
        assert_eq!(c.prefetch_stats().wasted_bytes, Bytes(8), "old copy");
        let out = c.access(L, H, &reqs(&[(0, 4)]));
        assert_eq!(out.staged_pages, 1);
        assert_eq!(out.staged_bytes, Bytes(16));
    }

    #[test]
    fn restaging_a_covering_copy_moves_no_new_bytes() {
        let mut c = staged_cache_for(16, 8);
        assert_eq!(c.stage(L, H, &reqs(&[(0, 4)]), Bytes(u64::MAX)), Bytes(16));
        assert_eq!(c.stage(L, H, &reqs(&[(0, 4)]), Bytes(u64::MAX)), Bytes(0));
        assert_eq!(c.stage(L, H, &reqs(&[(0, 2)]), Bytes(u64::MAX)), Bytes(0));
        assert_eq!(c.prefetch_stats().staged_pages, 1);
        assert_eq!(c.prefetch_stats().staged_bytes, Bytes(16));
    }

    #[test]
    fn warm_admission_supersedes_staged_copy() {
        let mut c = staged_cache_for(16, 8);
        c.stage(L, H, &reqs(&[(0, 4)]), Bytes(u64::MAX));
        assert_eq!(c.warm(L, H, &reqs(&[(0, 4)])), 1);
        assert_eq!(c.staged_pages(), 0, "staged ∩ resident = ∅");
        assert_eq!(c.prefetch_stats().wasted_bytes, Bytes(16));
        let out = c.access(L, H, &reqs(&[(0, 4)]));
        assert_eq!(out.hit_tokens, 4);
    }

    #[test]
    fn promotion_of_covering_copy_wastes_only_the_excess() {
        let mut c = staged_cache_for(16, 8);
        c.stage(L, H, &reqs(&[(0, 4)]), Bytes(u64::MAX));
        let out = c.access(L, H, &reqs(&[(0, 3)]));
        assert_eq!(out.missed_tokens, 3);
        assert_eq!(out.staged_pages, 1);
        assert_eq!(out.staged_bytes, Bytes(12));
        assert_eq!(c.prefetch_stats().used_bytes, Bytes(12));
        assert_eq!(c.prefetch_stats().wasted_bytes, Bytes(4), "excess tokens");
    }

    #[test]
    fn quantized_staging_moves_compressed_bytes() {
        // head_dim 8 → 32 B/token exact; int8 moves 16 B/token + 8 B scales.
        let mut c = ClusterCache::new(
            ClusterCacheConfig::new(Bytes(32 * 32), 8)
                .with_compression(CompressionConfig::int8())
                .with_staging(Bytes(32 * 8)),
        );
        let moved = c.stage(L, H, &reqs(&[(0, 4)]), Bytes(u64::MAX));
        assert_eq!(moved, Bytes(4 * 16 + 8), "staged at the recall width");
        let out = c.access(L, H, &reqs(&[(0, 4)]));
        assert_eq!(out.bytes_recalled, Bytes(4 * 16 + 8));
        assert_eq!(out.staged_bytes, out.bytes_recalled);
    }

    #[test]
    fn corrupt_then_scrub_detects_and_repairs() {
        let mut c = cache_for(16);
        c.access(L, H, &reqs(&[(0, 4), (1, 4)]));
        assert!(c.corrupt_resident_page(7));
        let repaired = c.scrub();
        assert_eq!(repaired, Bytes(4 * 4), "one 4-token page re-fetched");
        let stats = c.integrity();
        assert_eq!(stats.corruptions_injected, 1);
        assert_eq!(stats.corruptions_detected, 1);
        assert_eq!(stats.corruptions_repaired, 1);
        assert_eq!(stats.silent_corruptions(), 0);
        // Repair re-sealed the tag: a second scrub finds nothing.
        assert_eq!(c.scrub(), Bytes(0));
        assert_eq!(c.integrity().corruptions_detected, 1);
    }

    #[test]
    fn scrub_of_a_clean_cache_repairs_nothing() {
        let mut c = cache_for(16);
        c.access(L, H, &reqs(&[(0, 4), (1, 4)]));
        assert_eq!(c.scrub(), Bytes(0));
        let stats = c.integrity();
        assert_eq!(stats.corruptions_detected, 0);
        assert_eq!(stats.verifications, 2);
    }

    #[test]
    fn corrupt_on_an_empty_cache_is_a_no_op() {
        let mut c = cache_for(16);
        assert!(!c.corrupt_resident_page(0));
        assert_eq!(c.integrity().corruptions_injected, 0);
    }

    #[test]
    fn corruption_does_not_change_hit_miss_accounting() {
        // The backing store is ground truth: a corrupted resident page still
        // hits (the scrub repairs the tag out of band), so what attends is
        // untouched — corruption only adds repair traffic.
        let mut c = cache_for(16);
        c.access(L, H, &reqs(&[(0, 4)]));
        assert!(c.corrupt_resident_page(0));
        c.scrub();
        let out = c.access(L, H, &reqs(&[(0, 4)]));
        assert_eq!(out.hit_tokens, 4);
        assert_eq!(out.bytes_recalled, Bytes(0));
    }

    #[test]
    fn drop_staging_releases_everything_as_wasted() {
        let mut c =
            ClusterCache::new(ClusterCacheConfig::new(Bytes(4 * 16), 1).with_staging(Bytes(4 * 8)));
        c.stage(L, H, &reqs(&[(0, 2), (1, 2)]), Bytes(u64::MAX));
        assert_eq!(c.staged_pages(), 2);
        let before_wasted = c.prefetch_stats().wasted_bytes;
        let dropped = c.drop_staging();
        assert_eq!(dropped, Bytes(4 * 4));
        assert_eq!(c.staged_pages(), 0);
        assert_eq!(c.staged_bytes(), Bytes(0));
        assert_eq!(
            c.prefetch_stats().wasted_bytes.get(),
            before_wasted.get() + dropped.get()
        );
        // Residency is untouched: the dropped pages still miss on demand.
        let out = c.access(L, H, &reqs(&[(0, 2)]));
        assert_eq!(out.missed_tokens, 2);
        assert_eq!(out.staged_bytes, Bytes(0));
    }

    #[test]
    fn demote_all_is_a_no_op_when_lossless_and_demotes_when_quantized() {
        let mut lossless = cache_for(64);
        lossless.access(L, H, &reqs(&[(0, 8), (1, 8)]));
        assert_eq!(lossless.demote_all(), 0);
        assert_eq!(lossless.compressed_pages(), 0);

        // head_dim 8 → 32 B/token exact; int8 shrinks an 8-token page.
        let mut quant = ClusterCache::new(
            ClusterCacheConfig::new(Bytes(32 * 64), 8).with_compression(CompressionConfig::int8()),
        );
        quant.access(L, H, &reqs(&[(0, 8), (1, 8)]));
        assert_eq!(quant.demote_all(), 2);
        assert_eq!(quant.compressed_pages(), 2);
        // Demotion keeps pages resident: both still hit.
        let out = quant.access(L, H, &reqs(&[(0, 8), (1, 8)]));
        assert_eq!(out.hit_tokens, 16);
        assert_eq!(out.compressed_tokens, 16);
    }

    mod transition_properties {
        use super::*;
        use proptest::prelude::*;

        /// Replay random access/warm traffic against a small quantized cache
        /// and check the three-state lattice invariants after every op:
        /// bytes exact per state, capacity never leaked, and the compressed
        /// pool consistent between the resident map and the GPU tier.
        fn check_byte_exactness(c: &ClusterCache) {
            let mut expected_used = 0u64;
            let mut expected_compressed = 0u64;
            for (key, page) in &c.resident {
                let size = if page.compressed {
                    c.compressed_page_bytes(page.tokens)
                } else {
                    c.page_bytes(page.tokens)
                };
                assert_eq!(
                    c.gpu.allocation(&ClusterCache::alloc_name(*key)),
                    Some(size),
                    "allocation size must match the page's residency state"
                );
                assert_eq!(
                    c.gpu.is_compressed(&ClusterCache::alloc_name(*key)),
                    page.compressed,
                    "tier pool must agree with the page state"
                );
                expected_used += size.get();
                if page.compressed {
                    expected_compressed += size.get();
                }
            }
            assert_eq!(c.gpu.used(), Bytes(expected_used), "byte exactness");
            assert_eq!(
                c.gpu.compressed_bytes(),
                Bytes(expected_compressed),
                "compressed-pool exactness"
            );
            assert!(c.gpu.used().get() <= c.gpu.capacity().get());
            assert_eq!(c.lru.len(), c.resident.len(), "LRU tracks every page");
        }

        proptest! {
            #[test]
            fn random_demote_recall_traffic_keeps_bytes_exact(
                // Encoded op: low 3 bits page id, next 3 bits tokens (1..=8),
                // next bit warm-vs-access.
                ops in proptest::collection::vec(0u64..128, 1..60),
                capacity_tokens in 4u64..24,
                quant_sel in 0u64..2,
            ) {
                let compression = if quant_sel == 1 {
                    CompressionConfig::int4()
                } else {
                    CompressionConfig::int8()
                };
                let mut c = cache_with(capacity_tokens, compression);
                for op in ops {
                    let page = (op & 7) as usize;
                    let tokens = ((op >> 3) & 7) as usize + 1;
                    if (op >> 6) & 1 == 0 {
                        c.access(L, H, &reqs(&[(page, tokens)]));
                    } else {
                        c.warm(L, H, &reqs(&[(page, tokens)]));
                    }
                    check_byte_exactness(&c);
                }
                // The stats side stays consistent too.
                prop_assert!(c.compression_stats().ratio() >= 0.0);
                prop_assert!(
                    c.compressed_pages()
                        == c.resident.values().filter(|p| p.compressed).count()
                );
            }

            #[test]
            fn staging_respects_cap_and_never_touches_the_resident_set(
                // Encoded op: low 3 bits page id, next 3 bits tokens
                // (1..=8), next 2 bits op kind (access / warm / stage /
                // stage-with-tight-budget).
                ops in proptest::collection::vec(0u64..256, 1..60),
                capacity_tokens in 4u64..24,
                staging_tokens in 1u64..16,
            ) {
                // Twin caches: `a` stages, `b` never does. Every observable
                // except prefetch accounting must stay identical — staging
                // never evicts a resident page, never changes hit/miss or
                // recall bytes, and never exceeds its own byte cap.
                let mut a = staged_cache_for(capacity_tokens, staging_tokens);
                let mut b = cache_for(capacity_tokens);
                for op in ops {
                    let page = (op & 7) as usize;
                    let tokens = ((op >> 3) & 7) as usize + 1;
                    match (op >> 6) & 3 {
                        0 | 1 => {
                            let oa = a.access(L, H, &reqs(&[(page, tokens)]));
                            let ob = b.access(L, H, &reqs(&[(page, tokens)]));
                            prop_assert_eq!(oa.hit_tokens, ob.hit_tokens);
                            prop_assert_eq!(oa.missed_tokens, ob.missed_tokens);
                            prop_assert_eq!(oa.bytes_recalled, ob.bytes_recalled);
                        }
                        2 => {
                            prop_assert_eq!(
                                a.warm(L, H, &reqs(&[(page, tokens)])),
                                b.warm(L, H, &reqs(&[(page, tokens)]))
                            );
                        }
                        _ => {
                            let budget = Bytes(4 * (op >> 4));
                            a.stage(L, H, &reqs(&[(page, tokens)]), budget);
                        }
                    }
                    prop_assert!(a.staged_bytes().get() <= a.staging_capacity().get());
                    prop_assert_eq!(a.staged_pages(), a.staging_lru.len());
                    let staged_sum: u64 = a.staged.values().map(|p| p.bytes.get()).sum();
                    prop_assert_eq!(a.staged_bytes(), Bytes(staged_sum));
                    for key in a.staged.keys() {
                        prop_assert!(
                            !a.resident.contains_key(key),
                            "staged ∩ resident must be empty"
                        );
                    }
                    // The resident set and all demand-side accounting are
                    // byte-identical with and without staging.
                    prop_assert_eq!(&a.resident.keys().collect::<Vec<_>>(),
                                    &b.resident.keys().collect::<Vec<_>>());
                    prop_assert_eq!(a.resident_bytes(), b.resident_bytes());
                    prop_assert_eq!(a.stats(), b.stats());
                    prop_assert_eq!(a.transfers(), b.transfers());
                }
                // Prefetch byte accounting closes: everything staged is
                // eventually used, wasted, or still sitting in the buffer.
                let s = a.prefetch_stats();
                prop_assert_eq!(
                    s.staged_bytes,
                    Bytes(s.used_bytes.get() + s.wasted_bytes.get() + a.staged_bytes().get())
                );
            }

            #[test]
            fn lossless_traffic_matches_pre_compression_semantics(
                ops in proptest::collection::vec(0u64..128, 1..40),
                capacity_tokens in 4u64..24,
            ) {
                // Same traffic against a lossless cache and one with an
                // int8 config: hit/miss *token* accounting may differ (the
                // compressed tier retains more pages), but the lossless run
                // must never demote and must move exact bytes.
                let mut c = cache_with(capacity_tokens, CompressionConfig::lossless());
                let mut total_miss_bytes = 0u64;
                let mut total_miss_tokens = 0u64;
                for op in ops {
                    let page = (op & 7) as usize;
                    let tokens = ((op >> 3) & 7) as usize + 1;
                    let out = c.access(L, H, &reqs(&[(page, tokens)]));
                    total_miss_bytes += out.bytes_recalled.get();
                    total_miss_tokens += out.missed_tokens;
                    prop_assert_eq!(out.compressed_tokens, 0);
                    check_byte_exactness(&c);
                }
                prop_assert_eq!(c.compression_stats().demotions, 0);
                prop_assert_eq!(total_miss_bytes, total_miss_tokens * 32);
            }

            #[test]
            fn every_injected_corruption_is_detected_and_repaired(
                // Random warm-up traffic, then a batch of corruption picks
                // (DESIGN.md §11): detection is guaranteed — the mask is
                // non-zero, so a damaged tag can never match the recomputed
                // one — and repair restores a clean scrub.
                ops in proptest::collection::vec(0u64..128, 1..40),
                picks in proptest::collection::vec(0u64..1024, 1..8),
                capacity_tokens in 4u64..24,
            ) {
                let mut c = cache_for(capacity_tokens);
                for op in &ops {
                    let page = (op & 7) as usize;
                    let tokens = ((op >> 3) & 7) as usize + 1;
                    c.access(L, H, &reqs(&[(page, tokens)]));
                }
                let residency: Vec<_> = c.resident.keys().copied().collect();
                // Picks land on `pick % pages` in key order; a page hit an
                // even number of times has its tag XOR-restored, so the
                // exact detection count is the number of odd-multiplicity
                // pages — and the scrub must find precisely those.
                let pages = c.checksums.len() as u64;
                let mut mult = vec![0u64; c.checksums.len().max(1)];
                let mut injected = 0u64;
                for &pick in &picks {
                    if c.corrupt_resident_page(pick) {
                        injected += 1;
                        mult[(pick % pages) as usize] += 1;
                    }
                }
                let expected_detected =
                    mult.iter().filter(|&&m| m % 2 == 1).count() as u64;
                let repaired = c.scrub();
                let stats = c.integrity();
                prop_assert_eq!(stats.corruptions_injected, injected);
                prop_assert_eq!(stats.corruptions_detected, expected_detected);
                prop_assert_eq!(stats.corruptions_detected, stats.corruptions_repaired);
                prop_assert_eq!(repaired.get() > 0, expected_detected > 0);
                // Corruption and repair are invisible to residency — the
                // stream-observable state is untouched.
                prop_assert_eq!(c.resident.keys().copied().collect::<Vec<_>>(), residency);
                // A second scrub over the repaired set is clean.
                let before = c.integrity().corruptions_detected;
                prop_assert_eq!(c.scrub(), Bytes(0));
                prop_assert_eq!(c.integrity().corruptions_detected, before);
            }
        }
    }
}
