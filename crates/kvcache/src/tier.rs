//! Two-tier memory residency simulation (GPU HBM vs CPU DRAM).
//!
//! The paper offloads the full KV cache to CPU memory after prefill and only
//! keeps centroids, metadata and the selected-KV cache in GPU memory
//! (Fig. 5). [`MemoryTier`] tracks which byte ranges live where and rejects
//! allocations beyond capacity, so experiments can verify that the ClusterKV
//! configuration actually fits the GPU budget while the full-KV configuration
//! may not.

use crate::types::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Which physical memory a tier models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TierKind {
    /// GPU high-bandwidth memory.
    Gpu,
    /// Host DRAM reachable over PCIe.
    Cpu,
}

impl std::fmt::Display for TierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierKind::Gpu => write!(f, "GPU"),
            TierKind::Cpu => write!(f, "CPU"),
        }
    }
}

/// Error returned when an allocation does not fit in a tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationError {
    /// The tier that rejected the allocation.
    pub tier: TierKind,
    /// Bytes requested.
    pub requested: Bytes,
    /// Bytes still available.
    pub available: Bytes,
}

impl std::fmt::Display for AllocationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} tier cannot allocate {} ({} available)",
            self.tier, self.requested, self.available
        )
    }
}

impl std::error::Error for AllocationError {}

/// A single capacity-tracked memory tier with named allocations.
///
/// # Examples
///
/// ```
/// use clusterkv_kvcache::{MemoryTier, TierKind};
/// use clusterkv_kvcache::types::Bytes;
///
/// let mut gpu = MemoryTier::new(TierKind::Gpu, Bytes(48 * (1 << 30)));
/// gpu.allocate("centroids", Bytes(1 << 20)).unwrap();
/// assert!(gpu.used().get() > 0);
/// gpu.free("centroids");
/// assert_eq!(gpu.used().get(), 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryTier {
    kind: TierKind,
    capacity: Bytes,
    allocations: BTreeMap<String, Bytes>,
    /// Running sum of `allocations` so `used()`/`fits()` are O(1) — the
    /// cluster cache calls them on every page admission and eviction.
    used: Bytes,
    /// Names of allocations holding *compressed* data (DESIGN.md §9), plus a
    /// running byte sum, so the compressed footprint is O(1) to read.
    compressed: BTreeSet<String>,
    compressed_used: Bytes,
}

impl MemoryTier {
    /// Create a tier of the given kind and capacity.
    pub fn new(kind: TierKind, capacity: Bytes) -> Self {
        Self {
            kind,
            capacity,
            allocations: BTreeMap::new(),
            used: Bytes(0),
            compressed: BTreeSet::new(),
            compressed_used: Bytes(0),
        }
    }

    /// A 48 GiB GPU tier matching the Ada 6000 of the paper.
    pub fn ada6000_gpu() -> Self {
        Self::new(TierKind::Gpu, Bytes(48 * (1 << 30)))
    }

    /// A 256 GiB host DRAM tier.
    pub fn host_dram() -> Self {
        Self::new(TierKind::Cpu, Bytes(256 * (1 << 30)))
    }

    /// Which memory this tier models.
    pub fn kind(&self) -> TierKind {
        self.kind
    }

    /// Total capacity.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> Bytes {
        self.used
    }

    /// Bytes still free.
    pub fn available(&self) -> Bytes {
        Bytes(self.capacity.get().saturating_sub(self.used().get()))
    }

    /// Allocate (or grow) a named region.
    ///
    /// Allocating a name that already exists replaces its size; the
    /// capacity check accounts for the replacement.
    ///
    /// # Errors
    ///
    /// Returns [`AllocationError`] if the allocation would exceed capacity.
    pub fn allocate(&mut self, name: &str, size: Bytes) -> Result<(), AllocationError> {
        self.allocate_with(name, size, false)
    }

    /// Allocate (or grow) a named region holding *compressed* data: same
    /// semantics as [`allocate`](Self::allocate), but the bytes also count
    /// toward [`compressed_bytes`](Self::compressed_bytes). Re-allocating a
    /// name under the other method moves it between the exact and compressed
    /// pools (a page demotion re-allocates its region compressed).
    ///
    /// # Errors
    ///
    /// Returns [`AllocationError`] if the allocation would exceed capacity.
    pub fn allocate_compressed(&mut self, name: &str, size: Bytes) -> Result<(), AllocationError> {
        self.allocate_with(name, size, true)
    }

    fn allocate_with(
        &mut self,
        name: &str,
        size: Bytes,
        is_compressed: bool,
    ) -> Result<(), AllocationError> {
        let existing = self.allocations.get(name).copied().unwrap_or(Bytes(0));
        let used_without = self.used.get() - existing.get();
        if used_without + size.get() > self.capacity.get() {
            return Err(AllocationError {
                tier: self.kind,
                requested: size,
                available: Bytes(self.capacity.get() - used_without),
            });
        }
        if self.compressed.contains(name) {
            self.compressed_used = Bytes(self.compressed_used.get() - existing.get());
            self.compressed.remove(name);
        }
        if is_compressed {
            self.compressed.insert(name.to_string());
            self.compressed_used += size;
        }
        self.allocations.insert(name.to_string(), size);
        self.used = Bytes(used_without + size.get());
        Ok(())
    }

    /// Free a named region. Freeing an unknown name is a no-op.
    pub fn free(&mut self, name: &str) {
        if let Some(size) = self.allocations.remove(name) {
            self.used = Bytes(self.used.get() - size.get());
            if self.compressed.remove(name) {
                self.compressed_used = Bytes(self.compressed_used.get() - size.get());
            }
        }
    }

    /// Size of a named region, if present.
    pub fn allocation(&self, name: &str) -> Option<Bytes> {
        self.allocations.get(name).copied()
    }

    /// Whether a named region holds compressed data.
    pub fn is_compressed(&self, name: &str) -> bool {
        self.compressed.contains(name)
    }

    /// Bytes currently allocated to compressed regions.
    pub fn compressed_bytes(&self) -> Bytes {
        self.compressed_used
    }

    /// Whether a given extra allocation would fit.
    pub fn fits(&self, size: Bytes) -> bool {
        self.used().get() + size.get() <= self.capacity.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free_round_trip() {
        let mut t = MemoryTier::new(TierKind::Gpu, Bytes(100));
        t.allocate("a", Bytes(40)).unwrap();
        t.allocate("b", Bytes(60)).unwrap();
        assert_eq!(t.used(), Bytes(100));
        assert_eq!(t.available(), Bytes(0));
        t.free("a");
        assert_eq!(t.used(), Bytes(60));
        assert_eq!(t.allocation("b"), Some(Bytes(60)));
        assert_eq!(t.allocation("a"), None);
    }

    #[test]
    fn over_allocation_is_rejected() {
        let mut t = MemoryTier::new(TierKind::Gpu, Bytes(100));
        t.allocate("a", Bytes(80)).unwrap();
        let err = t.allocate("b", Bytes(30)).unwrap_err();
        assert_eq!(err.tier, TierKind::Gpu);
        assert_eq!(err.available, Bytes(20));
        assert!(err.to_string().contains("GPU"));
        // Failed allocation must not change accounting.
        assert_eq!(t.used(), Bytes(80));
    }

    #[test]
    fn reallocation_replaces_size() {
        let mut t = MemoryTier::new(TierKind::Cpu, Bytes(100));
        t.allocate("kv", Bytes(90)).unwrap();
        // Shrinking an existing allocation is allowed even when the tier is
        // nearly full.
        t.allocate("kv", Bytes(50)).unwrap();
        assert_eq!(t.used(), Bytes(50));
        // Growing it within capacity is fine too.
        t.allocate("kv", Bytes(100)).unwrap();
        assert_eq!(t.used(), Bytes(100));
    }

    #[test]
    fn fits_checks_remaining_space() {
        let mut t = MemoryTier::new(TierKind::Gpu, Bytes(10));
        assert!(t.fits(Bytes(10)));
        t.allocate("x", Bytes(6)).unwrap();
        assert!(t.fits(Bytes(4)));
        assert!(!t.fits(Bytes(5)));
    }

    #[test]
    fn free_unknown_name_is_noop() {
        let mut t = MemoryTier::ada6000_gpu();
        t.free("does-not-exist");
        assert_eq!(t.used(), Bytes(0));
        assert_eq!(t.kind(), TierKind::Gpu);
        assert_eq!(MemoryTier::host_dram().kind(), TierKind::Cpu);
    }

    #[test]
    fn compressed_pool_tracks_moves_between_representations() {
        let mut t = MemoryTier::new(TierKind::Gpu, Bytes(100));
        t.allocate("page", Bytes(40)).unwrap();
        assert!(!t.is_compressed("page"));
        assert_eq!(t.compressed_bytes(), Bytes(0));
        // Demotion: the same region re-allocates smaller, compressed.
        t.allocate_compressed("page", Bytes(12)).unwrap();
        assert!(t.is_compressed("page"));
        assert_eq!(t.used(), Bytes(12));
        assert_eq!(t.compressed_bytes(), Bytes(12));
        // Growing a compressed region keeps it in the pool, once only.
        t.allocate_compressed("page", Bytes(20)).unwrap();
        assert_eq!(t.compressed_bytes(), Bytes(20));
        // Promotion back to exact leaves the pool.
        t.allocate("page", Bytes(40)).unwrap();
        assert!(!t.is_compressed("page"));
        assert_eq!(t.compressed_bytes(), Bytes(0));
        t.allocate_compressed("other", Bytes(8)).unwrap();
        t.free("other");
        assert_eq!(t.compressed_bytes(), Bytes(0));
        assert_eq!(t.used(), Bytes(40));
    }

    #[test]
    fn compressed_allocation_respects_capacity() {
        let mut t = MemoryTier::new(TierKind::Gpu, Bytes(10));
        t.allocate("a", Bytes(8)).unwrap();
        let err = t.allocate_compressed("b", Bytes(4)).unwrap_err();
        assert_eq!(err.available, Bytes(2));
        assert_eq!(
            t.compressed_bytes(),
            Bytes(0),
            "failed alloc changes nothing"
        );
        assert!(!t.is_compressed("b"));
    }

    #[test]
    fn presets_have_expected_capacity() {
        assert_eq!(MemoryTier::ada6000_gpu().capacity(), Bytes(48 * (1 << 30)));
        assert_eq!(MemoryTier::host_dram().capacity(), Bytes(256 * (1 << 30)));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        /// Replay an op sequence against both the tier and a flat model map;
        /// op = (name_index, size, is_free).
        fn names() -> [&'static str; 4] {
            ["kv", "centroids", "metadata", "selected"]
        }

        proptest! {
            #[test]
            fn alloc_free_round_trips_never_leak_capacity(
                // Encoded op: low 2 bits name, next 6 bits size, next 2 bits
                // kind (0 = free, else allocate) — the shim proptest has no
                // tuple strategies.
                ops in proptest::collection::vec(0u64..1024, 0..48),
                capacity in 1u64..128,
            ) {
                let mut tier = MemoryTier::new(TierKind::Gpu, Bytes(capacity));
                // Model value: (size, is_compressed).
                let mut model: HashMap<&str, (u64, bool)> = HashMap::new();
                for op in ops {
                    let name = names()[(op & 3) as usize];
                    let size = (op >> 2) & 63;
                    let kind = (op >> 8) & 3;
                    if kind == 0 {
                        tier.free(name);
                        model.remove(name);
                    } else {
                        // kind 1 allocates exact, kind 2/3 compressed, so the
                        // replay exercises moves between the two pools.
                        let compressed = kind >= 2;
                        let outcome = if compressed {
                            tier.allocate_compressed(name, Bytes(size))
                        } else {
                            tier.allocate(name, Bytes(size))
                        };
                        match outcome {
                            Ok(()) => { model.insert(name, (size, compressed)); }
                            Err(err) => {
                                // A rejected allocation reports the exact
                                // availability for *this* name (its current
                                // size is reusable) and changes nothing.
                                let used_without: u64 = model
                                    .iter()
                                    .filter(|(n, _)| **n != name)
                                    .map(|(_, &(s, _))| s)
                                    .sum();
                                prop_assert_eq!(err.available, Bytes(capacity - used_without));
                                prop_assert_eq!(err.requested, Bytes(size));
                                prop_assert!(size + used_without > capacity);
                            }
                        }
                    }
                    // Interleaved named allocations stay consistent with the
                    // model: per-name sizes, total usage, the compressed
                    // pool, and the invariant used + available == capacity.
                    let used: u64 = model.values().map(|&(s, _)| s).sum();
                    let compressed: u64 =
                        model.values().filter(|&&(_, c)| c).map(|&(s, _)| s).sum();
                    prop_assert_eq!(tier.used(), Bytes(used));
                    prop_assert_eq!(tier.available(), Bytes(capacity - used));
                    prop_assert_eq!(tier.compressed_bytes(), Bytes(compressed));
                    prop_assert!(used <= capacity, "capacity leaked");
                    prop_assert!(compressed <= used, "compressed pool leaked");
                    for name in names() {
                        prop_assert_eq!(
                            tier.allocation(name),
                            model.get(name).map(|&(s, _)| Bytes(s))
                        );
                        prop_assert_eq!(
                            tier.is_compressed(name),
                            model.get(name).is_some_and(|&(_, c)| c)
                        );
                    }
                }
                // Freeing everything returns the tier to pristine state.
                for name in names() {
                    tier.free(name);
                }
                prop_assert_eq!(tier.used(), Bytes(0));
                prop_assert_eq!(tier.available(), Bytes(capacity));
                prop_assert_eq!(tier.compressed_bytes(), Bytes(0));
            }

            #[test]
            fn fits_agrees_with_allocate(extra in 0u64..100, preallocated in 0u64..80) {
                let mut tier = MemoryTier::new(TierKind::Cpu, Bytes(100));
                tier.allocate("base", Bytes(preallocated)).unwrap();
                let fits = tier.fits(Bytes(extra));
                let outcome = tier.allocate("probe", Bytes(extra));
                prop_assert_eq!(fits, outcome.is_ok());
            }
        }
    }
}
