//! Per-head key/value store — the "CPU memory" side of the paper's system.
//!
//! A [`KvStore`] holds the keys and values of every token seen so far for a
//! single attention head. Selection policies read keys (or their metadata)
//! to decide which tokens participate in attention, then gather the selected
//! rows into a [`SelectedKv`].
//!
//! [`SelectedKv`]: crate::selected::SelectedKv

use crate::selected::SelectedKv;
use crate::types::Bytes;
use clusterkv_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Key/value store for one attention head.
///
/// Rows are indexed by token position; row `i` holds the key (resp. value)
/// vector of token `i`.
///
/// # Examples
///
/// ```
/// use clusterkv_kvcache::KvStore;
///
/// let mut store = KvStore::new(4);
/// store.append(&[1.0, 0.0, 0.0, 0.0], &[0.5; 4]);
/// store.append(&[0.0, 1.0, 0.0, 0.0], &[0.25; 4]);
/// assert_eq!(store.len(), 2);
/// assert_eq!(store.key(1)[1], 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KvStore {
    head_dim: usize,
    keys: Matrix,
    values: Matrix,
    /// Cached squared key norms (`‖k_i‖²`), maintained incrementally on
    /// every append — the row-norm side of the Gram trick
    /// (`‖x−c‖² = ‖x‖² − 2x·c + ‖c‖²`) for consumers that cluster or
    /// rescore store keys without walking them again. Note the serving-path
    /// clustering caches live elsewhere: selectors observe keys through
    /// `ObserveEvent` (never through the store) and maintain their own
    /// norms, so this cache serves store-side consumers (harness-style
    /// rescoring, experiments) at one blocked self-dot per append.
    key_norms: Vec<f32>,
}

impl KvStore {
    /// Create an empty store for vectors of dimension `head_dim`.
    pub fn new(head_dim: usize) -> Self {
        Self {
            head_dim,
            keys: Matrix::zeros(0, head_dim),
            values: Matrix::zeros(0, head_dim),
            key_norms: Vec::new(),
        }
    }

    /// Reserve capacity for `additional` more tokens (keys, values and the
    /// norm cache), so a known-length run of appends — a prefill chunk, a
    /// batched append — performs at most one reallocation per buffer
    /// instead of amortized per-token growth.
    pub fn reserve(&mut self, additional: usize) {
        self.keys.reserve_rows(additional);
        self.values.reserve_rows(additional);
        self.key_norms.reserve(additional);
    }

    /// Dimension of key/value vectors.
    #[inline]
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Number of tokens stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.rows()
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a token's key and value.
    ///
    /// # Panics
    ///
    /// Panics if either vector's length differs from `head_dim`.
    pub fn append(&mut self, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.head_dim, "key dim mismatch");
        assert_eq!(value.len(), self.head_dim, "value dim mismatch");
        self.keys.push_row(key).expect("checked key length");
        self.values.push_row(value).expect("checked value length");
        self.key_norms.push(clusterkv_tensor::kernels::norm_sq(key));
    }

    /// Append many tokens at once (e.g. the whole prefill): the key/value
    /// buffers grow by one reserved bulk copy each instead of per-token
    /// `push_row` amortization. Observationally identical to appending the
    /// rows one by one (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if the two matrices have different numbers of rows or a column
    /// count different from `head_dim`.
    pub fn append_batch(&mut self, keys: &Matrix, values: &Matrix) {
        assert_eq!(keys.rows(), values.rows(), "key/value row count mismatch");
        assert_eq!(keys.cols(), self.head_dim, "key dim mismatch");
        assert_eq!(values.cols(), self.head_dim, "value dim mismatch");
        self.reserve(keys.rows());
        self.keys.extend_rows(keys).expect("checked");
        self.values.extend_rows(values).expect("checked");
        for row in keys.iter_rows() {
            self.key_norms.push(clusterkv_tensor::kernels::norm_sq(row));
        }
    }

    /// Append rows `[start, end)` of a shared prefix page: keys, values and
    /// the *cached* squared key norms are bulk-copied, skipping the per-row
    /// norm recomputation of [`append_batch`]. Because the cached norms were
    /// produced by the same `norm_sq` kernel on bitwise-identical rows, the
    /// result is observationally identical to recomputing them
    /// (property-tested).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, mismatched `keys`/`values`/`norms` lengths,
    /// or an invalid row range.
    ///
    /// [`append_batch`]: KvStore::append_batch
    pub fn append_shared(
        &mut self,
        keys: &Matrix,
        values: &Matrix,
        norms: &[f32],
        start: usize,
        end: usize,
    ) {
        assert_eq!(keys.rows(), values.rows(), "key/value row count mismatch");
        assert_eq!(keys.rows(), norms.len(), "key/norm count mismatch");
        assert_eq!(keys.cols(), self.head_dim, "key dim mismatch");
        assert_eq!(values.cols(), self.head_dim, "value dim mismatch");
        self.reserve(end - start);
        self.keys
            .extend_rows_range(keys, start, end)
            .expect("checked");
        self.values
            .extend_rows_range(values, start, end)
            .expect("checked");
        self.key_norms.extend_from_slice(&norms[start..end]);
    }

    /// Key vector of token `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn key(&self, i: usize) -> &[f32] {
        self.keys.row(i)
    }

    /// Value vector of token `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn value(&self, i: usize) -> &[f32] {
        self.values.row(i)
    }

    /// All keys as an `L × d` matrix.
    #[inline]
    pub fn keys(&self) -> &Matrix {
        &self.keys
    }

    /// All values as an `L × d` matrix.
    #[inline]
    pub fn values(&self) -> &Matrix {
        &self.values
    }

    /// Cached squared norm `‖k_i‖²` of token `i`'s key.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn key_norm_sq(&self, i: usize) -> f32 {
        self.key_norms[i]
    }

    /// Cached squared key norms, one per token (aligned with row indices).
    #[inline]
    pub fn key_norms(&self) -> &[f32] {
        &self.key_norms
    }

    /// Gather the keys/values of the given token indices into a
    /// [`SelectedKv`] ready for attention computation.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> SelectedKv {
        SelectedKv::new(
            indices.to_vec(),
            self.keys.select_rows(indices),
            self.values.select_rows(indices),
        )
    }

    /// Size of the full KV cache of this head in bytes under the fp16 cost
    /// model (keys + values).
    pub fn size_bytes(&self) -> Bytes {
        Bytes::of_f16(2 * self.len() * self.head_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn filled_store(n: usize, dim: usize) -> KvStore {
        let mut s = KvStore::new(dim);
        for i in 0..n {
            let k: Vec<f32> = (0..dim).map(|d| (i * dim + d) as f32).collect();
            let v: Vec<f32> = (0..dim).map(|d| -((i * dim + d) as f32)).collect();
            s.append(&k, &v);
        }
        s
    }

    #[test]
    fn new_store_is_empty() {
        let s = KvStore::new(8);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.head_dim(), 8);
    }

    #[test]
    fn append_and_read_back() {
        let s = filled_store(3, 4);
        assert_eq!(s.len(), 3);
        assert_eq!(s.key(2), &[8.0, 9.0, 10.0, 11.0]);
        assert_eq!(s.value(0), &[-0.0, -1.0, -2.0, -3.0]);
    }

    #[test]
    #[should_panic]
    fn append_wrong_dim_panics() {
        let mut s = KvStore::new(4);
        s.append(&[1.0, 2.0], &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn append_batch_matches_individual_appends() {
        let keys = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let values = Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let mut a = KvStore::new(2);
        a.append_batch(&keys, &values);
        let mut b = KvStore::new(2);
        b.append(&[1.0, 2.0], &[5.0, 6.0]);
        b.append(&[3.0, 4.0], &[7.0, 8.0]);
        assert_eq!(a.keys(), b.keys());
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn gather_preserves_requested_order() {
        let s = filled_store(5, 2);
        let sel = s.gather(&[4, 0, 2]);
        assert_eq!(sel.len(), 3);
        assert_eq!(sel.indices(), &[4, 0, 2]);
        assert_eq!(sel.keys().row(0), s.key(4));
        assert_eq!(sel.values().row(1), s.value(0));
    }

    #[test]
    fn gather_empty_selection() {
        let s = filled_store(5, 2);
        let sel = s.gather(&[]);
        assert_eq!(sel.len(), 0);
    }

    #[test]
    fn size_bytes_counts_keys_and_values_as_f16() {
        let s = filled_store(10, 8);
        // 10 tokens * 8 dims * 2 tensors * 2 bytes.
        assert_eq!(s.size_bytes().get(), 10 * 8 * 2 * 2);
    }

    #[test]
    fn key_norm_cache_tracks_appends() {
        let s = filled_store(6, 3);
        assert_eq!(s.key_norms().len(), 6);
        for i in 0..6 {
            assert_eq!(
                s.key_norm_sq(i),
                clusterkv_tensor::kernels::norm_sq(s.key(i)),
                "token {i}"
            );
        }
    }

    proptest! {
        #[test]
        fn append_batch_is_observationally_identical_to_repeated_append(
            n in 0usize..24,
            dim in 1usize..8,
            seed in proptest::collection::vec(-4.0f32..4.0, 0..192),
        ) {
            prop_assume!(seed.len() >= 2 * n * dim);
            let keys = Matrix::from_flat(n, dim, seed[..n * dim].to_vec()).unwrap();
            let values = Matrix::from_flat(n, dim, seed[n * dim..2 * n * dim].to_vec()).unwrap();
            let mut bulk = KvStore::new(dim);
            bulk.append_batch(&keys, &values);
            let mut one_by_one = KvStore::new(dim);
            for i in 0..n {
                one_by_one.append(keys.row(i), values.row(i));
            }
            prop_assert_eq!(bulk.len(), one_by_one.len());
            prop_assert_eq!(bulk.keys(), one_by_one.keys());
            prop_assert_eq!(bulk.values(), one_by_one.values());
            prop_assert_eq!(bulk.key_norms(), one_by_one.key_norms());
            prop_assert_eq!(bulk.size_bytes(), one_by_one.size_bytes());
        }

        #[test]
        fn append_shared_is_observationally_identical_to_append_batch(
            n in 1usize..24,
            dim in 1usize..8,
            lo in 0usize..24,
            hi in 0usize..24,
            seed in proptest::collection::vec(-4.0f32..4.0, 0..192),
        ) {
            prop_assume!(seed.len() >= 2 * n * dim);
            let keys = Matrix::from_flat(n, dim, seed[..n * dim].to_vec()).unwrap();
            let values = Matrix::from_flat(n, dim, seed[n * dim..2 * n * dim].to_vec()).unwrap();
            // A shared page carries norms computed by the donor's appends.
            let mut donor = KvStore::new(dim);
            donor.append_batch(&keys, &values);
            let (a, b) = (lo % n, hi % n);
            let (start, end) = (a.min(b), a.max(b) + 1);
            let mut shared = KvStore::new(dim);
            shared.append_shared(&keys, &values, donor.key_norms(), start, end);
            let mut reference = KvStore::new(dim);
            reference.append_batch(&keys.slice_rows(start, end), &values.slice_rows(start, end));
            prop_assert_eq!(shared.len(), end - start);
            prop_assert_eq!(shared.keys(), reference.keys());
            prop_assert_eq!(shared.values(), reference.values());
            prop_assert_eq!(shared.key_norms(), reference.key_norms());
        }

        #[test]
        fn len_equals_number_of_appends(n in 0usize..64, dim in 1usize..16) {
            let s = filled_store(n, dim);
            prop_assert_eq!(s.len(), n);
            prop_assert_eq!(s.is_empty(), n == 0);
        }

        #[test]
        fn gather_rows_match_source(n in 1usize..32, dim in 1usize..8, pick in proptest::collection::vec(0usize..32, 0..16)) {
            let s = filled_store(n, dim);
            let indices: Vec<usize> = pick.into_iter().map(|i| i % n).collect();
            let sel = s.gather(&indices);
            prop_assert_eq!(sel.len(), indices.len());
            for (row, &src) in indices.iter().enumerate() {
                prop_assert_eq!(sel.keys().row(row), s.key(src));
                prop_assert_eq!(sel.values().row(row), s.value(src));
            }
        }
    }
}
