//! Continuous-batching serving scheduler over [`ServeEngine`].
//!
//! Real long-context serving systems do not run one request to completion
//! before starting the next: they keep a request queue, admit sessions under
//! memory bounds, and each engine *tick* assemble a mixed batch of prefill
//! chunks (new requests working through their prompts) and decode steps
//! (admitted requests generating tokens) under a token budget. This crate
//! provides that layer for the ClusterKV serving stack (DESIGN.md §5):
//!
//! * [`Request`] — prompt, generation length, priority and arrival time (an
//!   open-loop trace, e.g. from
//!   `clusterkv_workloads::harness::generate_traffic`).
//! * [`Scheduler`] — owns a [`ServeEngine`], a waiting queue and the running
//!   set; [`Scheduler::tick`] admits, assembles and executes one mixed
//!   batch, advancing a *modeled* clock priced by the engine's roofline
//!   [`LatencyModel`](clusterkv_model::LatencyModel); [`Scheduler::run`]
//!   ticks until every submitted request completed.
//! * [`SchedPolicy`] — FCFS and priority-with-aging continuous batching,
//!   plus the run-to-completion baseline real systems moved away from.
//! * [`ServingReport`] / [`RequestMetrics`] — per-request TTFT, mean TBT and
//!   end-to-end latency, plus the released session's cache accounting,
//!   exportable as `clusterkv_metrics::RequestRow`s.
//!
//! Scheduling never changes what a request generates: sessions are fully
//! isolated and chunked prefill is byte-identical to monolithic prefill, so
//! every policy produces identical per-request token streams and differs
//! only in *when* tokens come out (the modeled timestamps). The scheduler
//! itself is deterministic — same submissions, same report, at any
//! `RAYON_NUM_THREADS` — which `tests/scheduler.rs` enforces.

#![warn(missing_docs)]

use clusterkv_faults::{FaultInjector, FaultPlan, IntegrityStats};
use clusterkv_kvcache::device::Seconds;
use clusterkv_kvcache::types::Bytes;
use clusterkv_metrics::RequestRow;
use clusterkv_model::latency::StepCost;
use clusterkv_model::{EngineError, ServeEngine, SessionId};
use serde::{Deserialize, Serialize};

/// Default prefill chunk size (tokens per session per tick), matching the
/// chunk sizes production chunked-prefill systems use relative to their
/// batch budget.
pub const DEFAULT_CHUNK_TOKENS: usize = 64;

/// Default per-tick token budget shared by prefill chunks and decode steps.
pub const DEFAULT_TICK_TOKEN_BUDGET: usize = 256;

/// Opaque handle for a submitted request (submission order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One serving request of an open-loop trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Prompt token ids.
    pub prompt: Vec<usize>,
    /// Number of tokens to generate (must be at least 1).
    pub max_new_tokens: usize,
    /// Priority class; larger is more urgent. Ignored by FCFS.
    pub priority: u32,
    /// Modeled arrival time. The scheduler never starts a request before
    /// its arrival (open-loop traffic).
    pub arrival_time: Seconds,
    /// Modeled completion deadline. When the clock passes it, the request
    /// is cancelled at the end of the tick — whether still queued or
    /// mid-generation — and reported as [`RequestOutcome::TimedOut`].
    /// `None` disables the timeout.
    pub deadline: Option<Seconds>,
}

/// Terminal state of a request in a [`ServingReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// The request generated its full `max_new_tokens` stream.
    Completed,
    /// Completed in full, but only after `n` crash-retry re-admissions
    /// (the stream is still byte-identical to a fault-free run).
    Retried {
        /// Number of checkpoint/restore round trips the request survived.
        n: u32,
    },
    /// The modeled clock passed the request's deadline before completion;
    /// the partial stream (possibly empty) is retained in the metrics.
    TimedOut,
    /// The scheduler gave up on the request for `reason` (e.g. the crash
    /// retry budget was exhausted).
    Cancelled {
        /// Why the request was abandoned.
        reason: String,
    },
}

impl RequestOutcome {
    /// Whether the request delivered its full stream.
    pub fn is_completed(&self) -> bool {
        matches!(
            self,
            RequestOutcome::Completed | RequestOutcome::Retried { .. }
        )
    }

    /// Stable kebab-case name for tables and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            RequestOutcome::Completed => "completed",
            RequestOutcome::Retried { .. } => "retried",
            RequestOutcome::TimedOut => "timed-out",
            RequestOutcome::Cancelled { .. } => "cancelled",
        }
    }
}

/// Queue-ordering policy of the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Continuous batching, first come first served: arrived requests are
    /// admitted in arrival order (ties by submission order).
    Fcfs,
    /// Continuous batching with priority plus aging: a waiting request's
    /// effective priority is `priority + aging_per_second · wait_time`, so
    /// low-priority requests cannot starve behind a stream of urgent ones —
    /// any positive rate eventually lifts them to the front
    /// (`admission_never_starves` in this crate's tests).
    PriorityAging {
        /// Effective-priority units gained per modeled second of waiting.
        /// Must be positive for the no-starvation guarantee.
        aging_per_second: f64,
    },
    /// The baseline continuous batching replaced: one request at a time,
    /// FCFS, prefilled and decoded to completion before the next is
    /// admitted. Exists so `exp_serving` can measure what interleaving buys.
    RunToCompletion,
}

impl SchedPolicy {
    /// Short name for tables and legends.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::Fcfs => "CB-FCFS",
            SchedPolicy::PriorityAging { .. } => "CB-PriorityAging",
            SchedPolicy::RunToCompletion => "RunToCompletion",
        }
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedConfig {
    /// Queue-ordering policy.
    pub policy: SchedPolicy,
    /// Cap on concurrently admitted (running) requests. Must not exceed the
    /// engine's own session cap.
    pub max_sessions: usize,
    /// Prefill chunk size: at most this many prompt tokens of one session
    /// are forwarded per tick.
    pub chunk_tokens: usize,
    /// Per-tick token budget shared by decode steps (1 token each) and
    /// prefill chunks; decode is served first (tail latency), the remainder
    /// goes to prefill.
    pub tick_token_budget: usize,
    /// Admission bound on KV memory: the sum of every running request's
    /// worst-case KV footprint (`(prompt + max_new_tokens) ·
    /// kv_bytes_per_token`) never exceeds this. `None` disables the bound.
    pub kv_capacity: Option<Bytes>,
    /// Per-tick byte budget for speculative prefetch staging, divided
    /// evenly across the tick's decode batch (integer division — the split
    /// is deterministic in the batch size). `None` leaves the engine's own
    /// per-step cap untouched; irrelevant unless the engine was built with
    /// prefetch enabled (DESIGN.md §10).
    pub prefetch_bytes_per_tick: Option<Bytes>,
    /// Deterministic fault plan driving the scheduler's recovery seams:
    /// whole-session crash faults (checkpoint-release + bounded retry) and
    /// capacity-shrink pressure events (the degradation ladder). Defaults
    /// to [`FaultPlan::disabled`], under which every seam is a no-op.
    pub faults: FaultPlan,
    /// Cap on crash-retry re-admissions per request; a request that
    /// crashes more than this many times is reported as
    /// [`RequestOutcome::Cancelled`].
    pub max_retries: u32,
}

impl SchedConfig {
    /// A continuous-batching FCFS configuration with default chunk/budget
    /// sizes and no KV bound.
    pub fn fcfs(max_sessions: usize) -> Self {
        Self {
            policy: SchedPolicy::Fcfs,
            max_sessions,
            chunk_tokens: DEFAULT_CHUNK_TOKENS,
            tick_token_budget: DEFAULT_TICK_TOKEN_BUDGET,
            kv_capacity: None,
            prefetch_bytes_per_tick: None,
            faults: FaultPlan::disabled(),
            max_retries: 2,
        }
    }

    /// Replace the policy.
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the prefill chunk size.
    pub fn with_chunk_tokens(mut self, chunk_tokens: usize) -> Self {
        self.chunk_tokens = chunk_tokens;
        self
    }

    /// Replace the per-tick token budget.
    pub fn with_tick_token_budget(mut self, budget: usize) -> Self {
        self.tick_token_budget = budget;
        self
    }

    /// Bound admission by total worst-case KV bytes of running requests.
    pub fn with_kv_capacity(mut self, capacity: Bytes) -> Self {
        self.kv_capacity = Some(capacity);
        self
    }

    /// Cap speculative prefetch staging at `budget` bytes per tick, split
    /// evenly across the tick's decode batch.
    pub fn with_prefetch_bytes_per_tick(mut self, budget: Bytes) -> Self {
        self.prefetch_bytes_per_tick = Some(budget);
        self
    }

    /// Drive the scheduler's recovery seams from a fault plan (crash
    /// faults, pressure events).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replace the crash-retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }
}

/// Errors produced by the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The scheduler configuration failed validation.
    InvalidConfig(String),
    /// A submitted request can never be served (empty prompt, zero
    /// generation length, context overflow, or a worst-case KV footprint
    /// larger than the admission capacity).
    Unservable {
        /// Why the request was rejected.
        reason: String,
    },
    /// The underlying engine reported an error.
    Engine(EngineError),
    /// A tick made no progress although work remained (a bug guard; cannot
    /// happen for validated configurations).
    Stalled,
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::InvalidConfig(msg) => write!(f, "invalid scheduler config: {msg}"),
            SchedError::Unservable { reason } => write!(f, "unservable request: {reason}"),
            SchedError::Engine(e) => write!(f, "engine error: {e}"),
            SchedError::Stalled => write!(f, "scheduler stalled with work remaining"),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<EngineError> for SchedError {
    fn from(e: EngineError) -> Self {
        SchedError::Engine(e)
    }
}

/// A request waiting in the queue (arrived or future).
#[derive(Debug, Clone)]
struct Waiting {
    id: RequestId,
    prompt: Vec<usize>,
    max_new: usize,
    priority: u32,
    arrival: Seconds,
    /// Worst-case KV footprint reserved at admission.
    kv_bytes: Bytes,
    /// Modeled completion deadline (`None` = no timeout).
    deadline: Option<Seconds>,
    /// Crash retries consumed so far (0 for a fresh request; re-queued
    /// crash victims carry their count back into the queue).
    retries: u32,
    /// First admission time, preserved across crash-retry round trips so
    /// queueing-delay metrics charge the original admission decision.
    admitted_at: Option<Seconds>,
}

/// A request admitted into the engine.
#[derive(Debug)]
struct Running {
    id: RequestId,
    session: SessionId,
    prompt: Vec<usize>,
    max_new: usize,
    priority: u32,
    arrival: Seconds,
    admitted_at: Seconds,
    kv_bytes: Bytes,
    /// Prompt tokens forwarded so far (`fed == prompt.len()` ⇒ decodable).
    fed: usize,
    /// Generated token stream so far.
    tokens: Vec<usize>,
    first_token_at: Option<Seconds>,
    last_token_at: Seconds,
    /// Tick index of the last decode step this request ran (least recently
    /// served decodes first, so a tick budget smaller than the running set
    /// round-robins instead of starving the tail).
    last_decode_tick: u64,
    /// Modeled completion deadline (`None` = no timeout).
    deadline: Option<Seconds>,
    /// Crash retries consumed so far.
    retries: u32,
}

/// Final measurements of one completed request. All times are modeled
/// (roofline device model), not wall clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestMetrics {
    /// The request.
    pub id: RequestId,
    /// Arrival time of the request.
    pub arrival: Seconds,
    /// When the request was first admitted into the engine (crash retries
    /// keep the original admission time; for a request cancelled while
    /// still queued this equals its cancellation time).
    pub admitted_at: Seconds,
    /// When the first generated token completed (`None` for requests
    /// cancelled before generating anything).
    pub first_token_at: Option<Seconds>,
    /// When the last generated token completed — or, for cancelled /
    /// timed-out requests, when the scheduler abandoned them.
    pub finished_at: Seconds,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// The generated token stream (identical across scheduling policies).
    pub tokens: Vec<usize>,
    /// Priority class the request was submitted with.
    pub priority: u32,
    /// Token-level hit rate of the session's GPU cluster cache.
    pub cache_hit_rate: f64,
    /// Bytes recalled from CPU memory over PCIe.
    pub bytes_recalled: Bytes,
    /// Prompt positions served from the engine's cross-session prefix store
    /// (0 without a store, or for a cold prompt).
    pub shared_prefix_tokens: usize,
    /// Fraction of staged prefetch bytes a demand access later consumed
    /// (`0.0` when the engine never staged for this session — never NaN).
    pub prefetch_accuracy: f64,
    /// Fraction of the session's modeled PCIe time hidden behind compute by
    /// the overlap clock (`0.0` without prefetch — never NaN).
    pub hidden_transfer_fraction: f64,
    /// How the request ended (completed, retried-then-completed, timed
    /// out, or cancelled).
    pub outcome: RequestOutcome,
    /// Crash-retry re-admissions the request consumed.
    pub retries: u32,
    /// Fault-injection and KV-integrity accounting of the request's final
    /// session (checksum verifications, corruptions injected / detected /
    /// repaired, modeled transfer retries — DESIGN.md §11). Zero for
    /// requests cancelled before admission.
    pub integrity: IntegrityStats,
}

impl RequestMetrics {
    /// Time to first token: arrival → first generated token
    /// ([`Seconds::zero`] for requests cancelled before their first token —
    /// never negative, never NaN).
    pub fn ttft(&self) -> Seconds {
        match self.first_token_at {
            Some(first) => first - self.arrival,
            None => Seconds::zero(),
        }
    }

    /// Mean time between output tokens (zero for requests with fewer than
    /// two tokens, including cancelled ones that never generated).
    pub fn tbt_mean(&self) -> Seconds {
        let Some(first) = self.first_token_at else {
            return Seconds::zero();
        };
        if self.tokens.len() < 2 {
            return Seconds::zero();
        }
        (self.finished_at - first) * (1.0 / (self.tokens.len() - 1) as f64)
    }

    /// End-to-end latency: arrival → last generated token.
    pub fn e2e(&self) -> Seconds {
        self.finished_at - self.arrival
    }

    /// Export as the shared per-request row format of `clusterkv-metrics`.
    pub fn row(&self) -> RequestRow {
        RequestRow {
            id: self.id.0,
            ttft: self.ttft().get(),
            tbt: self.tbt_mean().get(),
            e2e: self.e2e().get(),
            hit_rate: self.cache_hit_rate,
            generated: self.tokens.len(),
        }
    }
}

/// What one tick did (for tests and progress displays).
#[derive(Debug, Clone, PartialEq)]
pub struct TickOutcome {
    /// Requests admitted this tick.
    pub admitted: Vec<RequestId>,
    /// Prompt tokens forwarded as prefill chunks.
    pub prefill_tokens: usize,
    /// Decode steps executed (1 token each).
    pub decode_tokens: usize,
    /// Modeled duration of the tick's work.
    pub elapsed: Seconds,
    /// Requests that finished this tick.
    pub completed: Vec<RequestId>,
    /// Requests that crashed this tick and were re-queued for retry.
    pub retried: Vec<RequestId>,
    /// Requests abandoned this tick (timed out or out of retries).
    pub cancelled: Vec<RequestId>,
    /// Degradation-ladder level the tick ran under: 0 = no pressure, 1 =
    /// staging shed, 2 = also demoted to the compressed tier, 3 = also shed
    /// admissions (DESIGN.md §11).
    pub pressure_level: u8,
}

impl TickOutcome {
    /// Whether the tick did any work (admission, prefill, decode, terminal
    /// state transitions, or weathering a capacity-pressure event — a tick
    /// that sheds admissions is progress through the fault schedule, not a
    /// stall).
    pub fn did_work(&self) -> bool {
        !self.admitted.is_empty()
            || self.prefill_tokens > 0
            || self.decode_tokens > 0
            || !self.retried.is_empty()
            || !self.cancelled.is_empty()
            || self.pressure_level > 0
    }
}

/// Aggregate outcome of serving a whole trace.
///
/// Latency and throughput emitters are *goodput* measures: they cover only
/// requests whose [`RequestOutcome::is_completed`] holds, so a report mixing
/// completed and cancelled requests never panics and never skews its TTFT /
/// TBT means with the zero timestamps of requests that generated nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Per-request metrics (every terminal state), ordered by request id.
    pub requests: Vec<RequestMetrics>,
    /// Modeled time from clock zero to the last terminal event.
    pub makespan: Seconds,
    /// Tokens generated by *completed* requests (goodput numerator; the
    /// partial streams of cancelled requests are not counted).
    pub total_generated: usize,
}

impl ServingReport {
    /// The completed requests (ordered by id, like `requests`).
    pub fn completed(&self) -> impl Iterator<Item = &RequestMetrics> {
        self.requests.iter().filter(|r| r.outcome.is_completed())
    }

    /// Goodput over the makespan: completed-request tokens per modeled
    /// second (0.0 for an empty or all-cancelled report — never NaN).
    pub fn throughput(&self) -> f64 {
        if self.makespan.get() > 0.0 {
            self.total_generated as f64 / self.makespan.get()
        } else {
            0.0
        }
    }

    /// Every *completed* request's TTFT in seconds, ordered by request id.
    pub fn ttfts(&self) -> Vec<f64> {
        self.completed().map(|r| r.ttft().get()).collect()
    }

    /// Every *completed* request's end-to-end latency in seconds, ordered
    /// by request id.
    pub fn e2es(&self) -> Vec<f64> {
        self.completed().map(|r| r.e2e().get()).collect()
    }

    /// Mean TTFT of completed requests in seconds (0 for a report with no
    /// completions — never NaN).
    pub fn mean_ttft(&self) -> f64 {
        clusterkv_metrics::mean(&self.ttfts())
    }

    /// Mean crash retries per request, over every terminal request (0.0 on
    /// an empty report — never NaN).
    pub fn retry_rate(&self) -> f64 {
        if self.requests.is_empty() {
            0.0
        } else {
            self.requests.iter().map(|r| r.retries as f64).sum::<f64>() / self.requests.len() as f64
        }
    }

    /// Fraction of requests that did *not* complete (timed out or
    /// cancelled), in `[0, 1]` (0.0 on an empty report — never NaN).
    pub fn cancelled_fraction(&self) -> f64 {
        if self.requests.is_empty() {
            0.0
        } else {
            self.requests
                .iter()
                .filter(|r| !r.outcome.is_completed())
                .count() as f64
                / self.requests.len() as f64
        }
    }

    /// Fraction of requests that delivered their full stream, in `[0, 1]`
    /// (0.0 on an empty report — never NaN).
    pub fn completed_fraction(&self) -> f64 {
        if self.requests.is_empty() {
            0.0
        } else {
            1.0 - self.cancelled_fraction()
        }
    }

    /// Fault-injection / KV-integrity accounting merged over every request
    /// (DESIGN.md §11). The exp_faults gate checks
    /// [`IntegrityStats::silent_corruptions`] is 0 here.
    pub fn integrity(&self) -> IntegrityStats {
        let mut total = IntegrityStats::default();
        for r in &self.requests {
            total.merge(&r.integrity);
        }
        total
    }

    /// Export every *completed* request as a `clusterkv-metrics` row,
    /// ordered by id (cancelled requests carry no meaningful latencies).
    pub fn request_rows(&self) -> Vec<RequestRow> {
        self.completed().map(RequestMetrics::row).collect()
    }
}

/// The continuous-batching scheduler (see the crate docs for the model).
pub struct Scheduler {
    engine: ServeEngine,
    config: SchedConfig,
    clock: Seconds,
    ticks: u64,
    next_id: u64,
    waiting: Vec<Waiting>,
    running: Vec<Running>,
    completed: Vec<RequestMetrics>,
    /// Modeled cost of streaming the weights once (one fused decode batch
    /// pays it once, not once per session) — see [`Scheduler::tick`].
    weight_stream: Seconds,
    /// Deterministic fault injector driving crash faults and pressure
    /// events (a disabled plan makes every recovery seam a no-op).
    injector: FaultInjector,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("config", &self.config)
            .field("clock", &self.clock)
            .field("waiting", &self.waiting.len())
            .field("running", &self.running.len())
            .field("completed", &self.completed.len())
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// Wrap an engine. The engine must have a default selection policy
    /// (sessions are created at admission) and session capacity for
    /// `config.max_sessions`.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] for zero chunk/budget/session sizes, a
    /// session cap above the engine's, an engine without a default policy,
    /// or a non-positive aging rate.
    pub fn new(engine: ServeEngine, config: SchedConfig) -> Result<Self, SchedError> {
        if config.max_sessions == 0 {
            return Err(SchedError::InvalidConfig("max_sessions must be > 0".into()));
        }
        if config.max_sessions > engine.max_sessions() {
            return Err(SchedError::InvalidConfig(format!(
                "max_sessions ({}) exceeds the engine's session cap ({})",
                config.max_sessions,
                engine.max_sessions()
            )));
        }
        if config.chunk_tokens == 0 {
            return Err(SchedError::InvalidConfig("chunk_tokens must be > 0".into()));
        }
        if config.tick_token_budget == 0 {
            return Err(SchedError::InvalidConfig(
                "tick_token_budget must be > 0".into(),
            ));
        }
        if let SchedPolicy::PriorityAging { aging_per_second } = config.policy {
            // NaN fails this comparison too, which is exactly what we want.
            if aging_per_second <= 0.0 || aging_per_second.is_nan() {
                return Err(SchedError::InvalidConfig(
                    "aging_per_second must be positive (zero reintroduces starvation)".into(),
                ));
            }
        }
        if !engine.has_default_policy() {
            return Err(SchedError::InvalidConfig(
                "engine needs a default selection policy (ServeEngineBuilder::policy)".into(),
            ));
        }
        config
            .faults
            .validate()
            .map_err(SchedError::InvalidConfig)?;
        let weight_stream = engine.latency_model().decode_step(
            0,
            &StepCost {
                scored_vectors_per_head: 0.0,
                attended_tokens: 0.0,
                transferred_tokens_per_head: 0.0,
                transferred_compressed_bytes: 0.0,
                staged_transfer_bytes: 0.0,
                retried_transfer_bytes: 0.0,
                retry_backoff_seconds: 0.0,
            },
        );
        Ok(Self {
            engine,
            config,
            clock: Seconds::zero(),
            ticks: 0,
            next_id: 0,
            waiting: Vec::new(),
            running: Vec::new(),
            completed: Vec::new(),
            weight_stream,
            injector: FaultInjector::new(config.faults),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// The modeled clock (monotone; starts at zero).
    pub fn clock(&self) -> Seconds {
        self.clock
    }

    /// Requests admitted and not yet completed.
    pub fn num_running(&self) -> usize {
        self.running.len()
    }

    /// Requests submitted and not yet admitted (arrived or future).
    pub fn num_waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Worst-case KV bytes reserved by the running requests (the quantity
    /// the `kv_capacity` admission bound caps).
    pub fn kv_reserved(&self) -> Bytes {
        self.running.iter().map(|r| r.kv_bytes).sum()
    }

    /// Whether every submitted request has completed.
    pub fn is_idle(&self) -> bool {
        self.waiting.is_empty() && self.running.is_empty()
    }

    /// Borrow the underlying engine (for inspection).
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }

    /// Submit a request (admission control, step 1): requests that can
    /// *never* be served — empty prompt, zero generation length, prompt +
    /// generation beyond the context window, or a worst-case KV footprint
    /// above `kv_capacity` — are rejected here, so the queue only ever holds
    /// requests admission can eventually place.
    ///
    /// # Errors
    ///
    /// [`SchedError::Unservable`] with the rejection reason.
    pub fn submit(&mut self, request: Request) -> Result<RequestId, SchedError> {
        let cfg = self.engine.config();
        if request.prompt.is_empty() {
            return Err(SchedError::Unservable {
                reason: "empty prompt".into(),
            });
        }
        if request.max_new_tokens == 0 {
            return Err(SchedError::Unservable {
                reason: "max_new_tokens must be at least 1".into(),
            });
        }
        let total = request.prompt.len() + request.max_new_tokens;
        if total > cfg.max_context {
            return Err(SchedError::Unservable {
                reason: format!(
                    "prompt + generation of {total} tokens exceeds the context window ({})",
                    cfg.max_context
                ),
            });
        }
        if let Some(&token) = request.prompt.iter().find(|&&t| t >= cfg.vocab_size) {
            return Err(SchedError::Unservable {
                reason: format!(
                    "token {token} outside vocabulary of size {}",
                    cfg.vocab_size
                ),
            });
        }
        let kv_bytes = Bytes(total as u64 * cfg.kv_bytes_per_token());
        if let Some(capacity) = self.config.kv_capacity {
            if kv_bytes > capacity {
                return Err(SchedError::Unservable {
                    reason: format!(
                        "worst-case KV of {kv_bytes} exceeds the admission capacity ({capacity})"
                    ),
                });
            }
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.waiting.push(Waiting {
            id,
            prompt: request.prompt,
            max_new: request.max_new_tokens,
            priority: request.priority,
            arrival: request.arrival_time,
            kv_bytes,
            deadline: request.deadline,
            retries: 0,
            admitted_at: None,
        });
        Ok(id)
    }

    /// Submit a whole trace, returning the ids in order.
    ///
    /// # Errors
    ///
    /// Fails on the first unservable request (earlier ones stay queued).
    pub fn submit_all(
        &mut self,
        requests: impl IntoIterator<Item = Request>,
    ) -> Result<Vec<RequestId>, SchedError> {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Effective queue priority of a waiting request at the current clock.
    fn effective_priority(&self, w: &Waiting) -> f64 {
        match self.config.policy {
            SchedPolicy::PriorityAging { aging_per_second } => {
                w.priority as f64 + aging_per_second * (self.clock - w.arrival).get().max(0.0)
            }
            // FCFS / run-to-completion order purely by arrival.
            SchedPolicy::Fcfs | SchedPolicy::RunToCompletion => 0.0,
        }
    }

    /// Admission control, step 2: move arrived requests from the queue into
    /// the engine, in policy order, while the session and KV bounds allow.
    /// Admission is head-of-line blocking: once the front candidate does not
    /// fit, nothing behind it is considered — later (smaller) requests
    /// cannot overtake indefinitely, which is what makes every request
    /// eventually admissible.
    ///
    /// With a prefix store, the worst-case reservation is shrunk by the
    /// prompt prefix the store can already serve: those bytes are charged to
    /// the store, not the session, so counting them again would double-bill
    /// and leave capacity idle. The discounted coverage is *pinned* at
    /// admission ([`ServeEngine::pin_session_prefix`]) — pinned pages cannot
    /// be evicted, so the discount can never exceed what prefill later
    /// reuses and the bound stays sound.
    /// Under a pressure event (`pressure < 1.0`) the admission bound is
    /// tightened to `pressure · kv_capacity`: running reservations are
    /// never revoked (pinned and resident pages are never dropped), but no
    /// new request is admitted past the shrunken bound until the event
    /// clears.
    fn admit(&mut self, pressure: f64) -> Result<Vec<RequestId>, SchedError> {
        let mut admitted = Vec::new();
        let bytes_per_token = self.engine.config().kv_bytes_per_token();
        loop {
            if self.running.len() >= self.config.max_sessions {
                break;
            }
            if self.config.policy == SchedPolicy::RunToCompletion && !self.running.is_empty() {
                break;
            }
            // Front of the queue among the *arrived* requests: highest
            // effective priority, ties by (arrival, id). FCFS degenerates to
            // (arrival, id) because effective priority is constant.
            let Some(front) = self
                .waiting
                .iter()
                .enumerate()
                .filter(|(_, w)| w.arrival <= self.clock)
                .max_by(|(_, a), (_, b)| {
                    self.effective_priority(a)
                        .total_cmp(&self.effective_priority(b))
                        .then_with(|| b.arrival.get().total_cmp(&a.arrival.get()))
                        .then_with(|| b.id.cmp(&a.id))
                })
                .map(|(i, _)| i)
            else {
                break;
            };
            let shareable = Bytes(
                self.engine.prefix_match_len(&self.waiting[front].prompt) as u64 * bytes_per_token,
            );
            let effective = Bytes(
                self.waiting[front]
                    .kv_bytes
                    .get()
                    .saturating_sub(shareable.get()),
            );
            let fits = match self.config.kv_capacity {
                Some(capacity) => {
                    // floor() of a finite non-negative product: deterministic
                    // at any thread count, and pressure == 1.0 reproduces the
                    // unscaled bound exactly.
                    let scaled = Bytes((capacity.get() as f64 * pressure).floor() as u64);
                    self.kv_reserved() + effective <= scaled
                }
                None => true,
            };
            if !fits {
                break;
            }
            let w = self.waiting.remove(front);
            let session = self.engine.create_session()?;
            // Pin what the discount assumed; the pin can only find at least
            // as much coverage as the peek above (coverage never shrinks),
            // so the recorded reservation never exceeds `effective`.
            let pinned = self.engine.pin_session_prefix(session, &w.prompt)?;
            let kv_bytes = Bytes(
                w.kv_bytes
                    .get()
                    .saturating_sub(pinned as u64 * bytes_per_token),
            );
            admitted.push(w.id);
            self.running.push(Running {
                id: w.id,
                session,
                prompt: w.prompt,
                max_new: w.max_new,
                priority: w.priority,
                arrival: w.arrival,
                // A crash-retry re-admission keeps its original admission
                // time: the queueing decision was made once.
                admitted_at: w.admitted_at.unwrap_or(self.clock),
                kv_bytes,
                fed: 0,
                tokens: Vec::new(),
                first_token_at: None,
                last_token_at: Seconds::zero(),
                last_decode_tick: 0,
                deadline: w.deadline,
                retries: w.retries,
            });
        }
        Ok(admitted)
    }

    /// Run one scheduler tick: admit arrived requests, assemble a mixed
    /// batch of decode steps and prefill chunks under the token budget,
    /// execute it against the engine, and advance the modeled clock by the
    /// batch's roofline cost. Decode steps are priced per session by
    /// diffing the engine's modeled decode time; a fused batch streams the
    /// model weights once, so `(k-1)` weight passes are credited back for a
    /// `k`-session decode batch — the throughput half of what continuous
    /// batching buys (the latency half comes from interleaving prefill
    /// chunks instead of blocking on whole prompts).
    ///
    /// If no request has arrived yet and nothing is running, the clock jumps
    /// to the next arrival instead (open-loop traffic).
    ///
    /// # Errors
    ///
    /// Propagates engine errors; [`SchedError::Stalled`] if work remained
    /// but the tick could not progress (a bug guard).
    pub fn tick(&mut self) -> Result<TickOutcome, SchedError> {
        self.ticks += 1;
        let tick = self.ticks;
        let mut outcome = TickOutcome {
            admitted: Vec::new(),
            prefill_tokens: 0,
            decode_tokens: 0,
            elapsed: Seconds::zero(),
            completed: Vec::new(),
            retried: Vec::new(),
            cancelled: Vec::new(),
            pressure_level: 0,
        };
        if self.is_idle() {
            return Ok(outcome);
        }
        // Open-loop gap: nothing runnable until the next arrival.
        if self.running.is_empty() {
            let next = self
                .waiting
                .iter()
                .map(|w| w.arrival.get())
                .fold(f64::INFINITY, f64::min);
            if next > self.clock.get() {
                self.clock = Seconds(next);
            }
        }

        // Degradation ladder (DESIGN.md §11): a pressure event shrinks the
        // effective capacity to `f · kv_capacity` and sheds reclaimable
        // state in order of how cheap it is to give up — staged prefetch
        // bytes first (pure accounting, re-stageable), then demotion of
        // resident pages to the compressed tier (recoverable quality /
        // bandwidth trade), and only at the deepest level new admissions.
        // Running requests are never evicted: pinned and resident pages
        // survive every level, so streams are unaffected.
        let pressure = self.injector.pressure_factor(tick);
        if pressure < 1.0 {
            outcome.pressure_level = 1;
            for i in 0..self.running.len() {
                let session = self.running[i].session;
                self.engine.shed_staging(session)?;
            }
            if pressure <= 0.75 {
                outcome.pressure_level = 2;
                for i in 0..self.running.len() {
                    let session = self.running[i].session;
                    self.engine.demote_session(session)?;
                }
            }
            if pressure <= 0.5 {
                outcome.pressure_level = 3;
            }
        }
        if outcome.pressure_level < 3 {
            outcome.admitted = self.admit(pressure)?;
        }

        // Assemble the tick's mixed batch under the token budget: decode
        // first (one token per decodable session, least recently served
        // first so an oversubscribed budget round-robins), prefill chunks
        // with the remainder (admission order).
        let mut budget = self.config.tick_token_budget;
        let mut decode_order: Vec<usize> = (0..self.running.len())
            .filter(|&i| self.running[i].fed == self.running[i].prompt.len())
            .collect();
        decode_order.sort_by_key(|&i| (self.running[i].last_decode_tick, self.running[i].id));
        decode_order.truncate(budget);
        budget -= decode_order.len();
        let mut prefill_jobs: Vec<(usize, usize)> = Vec::new(); // (running idx, take)
        for i in 0..self.running.len() {
            if budget == 0 {
                break;
            }
            let remaining = self.running[i].prompt.len() - self.running[i].fed;
            if remaining == 0 {
                continue;
            }
            let take = remaining.min(self.config.chunk_tokens).min(budget);
            budget -= take;
            prefill_jobs.push((i, take));
        }

        // Execute prefill chunks. A chunk covering prompt positions [a, b)
        // of one session costs prefill(b) − prefill(a) (prefill(0) ≡ 0), so
        // any chunking of a prompt telescopes to exactly the monolithic
        // prefill cost — run-to-completion and continuous batching pay
        // identical totals and differ only in interleaving. Positions the
        // prefix store fast-pathed were never forwarded, so they are priced
        // out of the chunk: only the `computed` deepest positions of [a, b)
        // are charged, which for a fully cold session reduces to the plain
        // telescoping rule.
        let lm = self.engine.latency_model().clone();
        let lm_prefill = move |tokens: usize| -> Seconds {
            if tokens == 0 {
                Seconds::zero()
            } else {
                lm.prefill(tokens)
            }
        };
        let mut elapsed = Seconds::zero();
        for &(i, take) in &prefill_jobs {
            let r = &self.running[i];
            let (from, to) = (r.fed, r.fed + take);
            let session = r.session;
            let chunk: Vec<usize> = r.prompt[from..to].to_vec();
            let (_, fast_before) = self.engine.session_prefix_tokens(session)?;
            self.engine.prefill_chunk(session, &chunk)?;
            let (_, fast_after) = self.engine.session_prefix_tokens(session)?;
            let computed = take - (fast_after - fast_before);
            let r = &mut self.running[i];
            r.fed = to;
            if r.fed == r.prompt.len() {
                self.engine.finish_prefill(session)?;
            }
            elapsed += lm_prefill(to) - lm_prefill(to - computed);
            outcome.prefill_tokens += take;
        }

        // Execute the decode steps as one fused batch.
        if !decode_order.is_empty() {
            let ids: Vec<SessionId> = decode_order
                .iter()
                .map(|&i| self.running[i].session)
                .collect();
            // Divide the tick's prefetch byte budget across the batch:
            // every decode step this tick may stage at most its even share
            // (integer division, so the split depends only on the batch
            // size — deterministic across runs and thread counts).
            if let Some(total) = self.config.prefetch_bytes_per_tick {
                self.engine
                    .set_prefetch_step_bytes(Bytes(total.get() / ids.len() as u64));
            }
            let before: Vec<Seconds> = ids
                .iter()
                .map(|&s| self.engine.modeled_decode_time(s))
                .collect::<Result<_, _>>()?;
            let outs = self.engine.decode_batch(&ids)?;
            let mut batch_time = Seconds::zero();
            let mut slowest = Seconds::zero();
            for (&s, &b) in ids.iter().zip(&before) {
                let step = self.engine.modeled_decode_time(s)? - b;
                batch_time += step;
                if step > slowest {
                    slowest = step;
                }
            }
            // Fused weight streaming: one pass for the whole batch instead
            // of one per session (never cheaper than the slowest member).
            batch_time = batch_time - self.weight_stream * (ids.len() - 1) as f64;
            if batch_time < slowest {
                batch_time = slowest;
            }
            elapsed += batch_time;
            outcome.decode_tokens = outs.len();
            self.clock += elapsed;
            for (&i, out) in decode_order.iter().zip(&outs) {
                let r = &mut self.running[i];
                r.tokens.push(out.next_token);
                r.last_decode_tick = tick;
                if r.first_token_at.is_none() {
                    r.first_token_at = Some(self.clock);
                }
                r.last_token_at = self.clock;
            }
        } else {
            self.clock += elapsed;
        }
        outcome.elapsed = elapsed;

        // Whole-session crash faults (DESIGN.md §11): every decode step of a
        // request draws from the crash stream, keyed by (request id, retry
        // round, step ordinal) — deterministic at any thread count, and a
        // retry draws a fresh schedule instead of replaying its crash
        // forever. A victim is checkpoint-released (with a prefix store its
        // prompt KV was donated at finish_prefill, so the retry re-adopts
        // those pages instead of recomputing them) and re-queued with its
        // original arrival and admission times; the engine is deterministic,
        // so the regenerated stream is byte-identical to an uninterrupted
        // run. A victim out of retries is cancelled instead.
        if self.injector.enabled() {
            let mut crashed: Vec<usize> = decode_order
                .iter()
                .copied()
                .filter(|&i| {
                    let r = &self.running[i];
                    let key = r.id.0 ^ (u64::from(r.retries) << 48);
                    self.injector.should_crash(key, r.tokens.len() as u64)
                })
                .collect();
            // Descending order keeps the remaining indices valid as
            // victims are removed.
            crashed.sort_unstable_by(|a, b| b.cmp(a));
            for i in crashed {
                let r = self.running.remove(i);
                let report = self.engine.release(r.session)?;
                if r.retries >= self.config.max_retries {
                    outcome.cancelled.push(r.id);
                    let reason = format!(
                        "crash retry budget exhausted ({} runs)",
                        u64::from(r.retries) + 1
                    );
                    self.record_terminal(r, RequestOutcome::Cancelled { reason }, Some(&report));
                } else {
                    outcome.retried.push(r.id);
                    self.requeue(r);
                }
            }
        }

        // Completions: release finished sessions and record their metrics.
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].tokens.len() >= self.running[i].max_new {
                let r = self.running.remove(i);
                let report = self.engine.release(r.session)?;
                outcome.completed.push(r.id);
                let terminal = if r.retries > 0 {
                    RequestOutcome::Retried { n: r.retries }
                } else {
                    RequestOutcome::Completed
                };
                let finished_at = r.last_token_at;
                self.completed.push(RequestMetrics {
                    id: r.id,
                    arrival: r.arrival,
                    admitted_at: r.admitted_at,
                    first_token_at: r.first_token_at,
                    finished_at,
                    prompt_len: r.prompt.len(),
                    tokens: r.tokens,
                    priority: r.priority,
                    cache_hit_rate: report.cache_hit_rate(),
                    bytes_recalled: report.bytes_recalled(),
                    shared_prefix_tokens: report.shared_prefix_tokens,
                    prefetch_accuracy: report.prefetch_accuracy(),
                    hidden_transfer_fraction: report.hidden_transfer_fraction(),
                    outcome: terminal,
                    retries: r.retries,
                    integrity: report.integrity,
                });
            } else {
                i += 1;
            }
        }

        // Timeout cancellation: requests past their deadline at the end of
        // the tick are abandoned — running ones release their session and
        // keep the partial stream in the metrics; queued ones are dropped
        // before wasting any prefill work. Completions above run first, so
        // a stream that finishes in the very tick its deadline expires is
        // still delivered.
        let now = self.clock;
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].deadline.is_some_and(|d| now > d) {
                let r = self.running.remove(i);
                let report = self.engine.release(r.session)?;
                outcome.cancelled.push(r.id);
                self.record_terminal(r, RequestOutcome::TimedOut, Some(&report));
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.waiting.len() {
            if self.waiting[i].deadline.is_some_and(|d| now > d) {
                let w = self.waiting.remove(i);
                outcome.cancelled.push(w.id);
                self.completed.push(RequestMetrics {
                    id: w.id,
                    arrival: w.arrival,
                    admitted_at: w.admitted_at.unwrap_or(now),
                    first_token_at: None,
                    finished_at: now,
                    prompt_len: w.prompt.len(),
                    tokens: Vec::new(),
                    priority: w.priority,
                    cache_hit_rate: 0.0,
                    bytes_recalled: Bytes(0),
                    shared_prefix_tokens: 0,
                    prefetch_accuracy: 0.0,
                    hidden_transfer_fraction: 0.0,
                    outcome: RequestOutcome::TimedOut,
                    retries: w.retries,
                    integrity: IntegrityStats::default(),
                });
            } else {
                i += 1;
            }
        }

        if !outcome.did_work() && !self.is_idle() {
            return Err(SchedError::Stalled);
        }
        Ok(outcome)
    }

    /// Record the terminal metrics of a request that did not run to
    /// completion (crash-cancelled or timed out), carrying over whatever
    /// the released session reported.
    // analyzer: recovery-path
    fn record_terminal(
        &mut self,
        r: Running,
        outcome: RequestOutcome,
        report: Option<&clusterkv_model::SessionReport>,
    ) {
        self.completed.push(RequestMetrics {
            id: r.id,
            arrival: r.arrival,
            admitted_at: r.admitted_at,
            first_token_at: r.first_token_at,
            finished_at: self.clock,
            prompt_len: r.prompt.len(),
            tokens: r.tokens,
            priority: r.priority,
            cache_hit_rate: report.map_or(0.0, |s| s.cache_hit_rate()),
            bytes_recalled: report.map_or(Bytes(0), |s| s.bytes_recalled()),
            shared_prefix_tokens: report.map_or(0, |s| s.shared_prefix_tokens),
            prefetch_accuracy: report.map_or(0.0, |s| s.prefetch_accuracy()),
            hidden_transfer_fraction: report.map_or(0.0, |s| s.hidden_transfer_fraction()),
            outcome,
            retries: r.retries,
            integrity: report.map_or_else(IntegrityStats::default, |s| s.integrity),
        });
    }

    /// Re-queue a crash victim for bounded retry, preserving its identity,
    /// arrival time and first admission time; the retry counter is bumped
    /// so the crash stream draws a fresh schedule next round.
    // analyzer: recovery-path
    fn requeue(&mut self, r: Running) {
        let bytes_per_token = self.engine.config().kv_bytes_per_token();
        let kv_bytes = Bytes((r.prompt.len() + r.max_new) as u64 * bytes_per_token);
        self.waiting.push(Waiting {
            id: r.id,
            prompt: r.prompt,
            max_new: r.max_new,
            priority: r.priority,
            arrival: r.arrival,
            kv_bytes,
            deadline: r.deadline,
            retries: r.retries + 1,
            admitted_at: Some(r.admitted_at),
        });
    }

    /// Tick until every submitted request has completed, then report.
    ///
    /// # Errors
    ///
    /// Propagates the first [`tick`](Self::tick) error.
    pub fn run(&mut self) -> Result<ServingReport, SchedError> {
        while !self.is_idle() {
            self.tick()?;
        }
        Ok(self.report())
    }

    /// Report over every terminal request so far (ordered by id).
    pub fn report(&self) -> ServingReport {
        let mut requests = self.completed.clone();
        requests.sort_by_key(|r| r.id);
        let makespan = Seconds(
            requests
                .iter()
                .map(|r| r.finished_at.get())
                .fold(0.0, f64::max),
        );
        // Goodput numerator: the partial streams of cancelled requests do
        // not count as delivered tokens.
        let total_generated = requests
            .iter()
            .filter(|r| r.outcome.is_completed())
            .map(|r| r.tokens.len())
            .sum();
        ServingReport {
            requests,
            makespan,
            total_generated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterkv_kvcache::types::Budget;
    use clusterkv_model::policy::OracleTopKFactory;
    use clusterkv_model::ModelConfig;
    use proptest::prelude::*;

    fn engine() -> ServeEngine {
        ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(13)
            .budget(Budget::new(16))
            .policy(Box::new(OracleTopKFactory))
            .build()
            .unwrap()
    }

    fn request(len: usize, new: usize, priority: u32, at: f64) -> Request {
        Request {
            prompt: (0..len).map(|i| (i * 7 + len) % 128).collect(),
            max_new_tokens: new,
            priority,
            arrival_time: Seconds(at),
            deadline: None,
        }
    }

    /// Test-only paged policy (mirrors the serving engine's own test
    /// double): exact top-k reported as four-token-aligned pages, so the
    /// cluster cache — and with it the speculative prefetcher — sees real
    /// page traffic without depending on the core crate.
    struct PagedTopKSelector {
        inner: clusterkv_model::policy::OracleTopKSelector,
    }

    impl clusterkv_model::TokenSelector for PagedTopKSelector {
        fn name(&self) -> &str {
            "PagedTopK"
        }
        fn observe(&mut self, event: clusterkv_model::ObserveEvent<'_>) {
            self.inner.observe(event);
        }
        fn plan(
            &mut self,
            request: clusterkv_model::SelectionRequest<'_>,
        ) -> clusterkv_model::SelectionPlan {
            let plan = self.inner.plan(request);
            if request.budget.covers(request.num_tokens) {
                return plan;
            }
            let pages: Vec<clusterkv_model::PageRequest> = plan
                .indices
                .iter()
                .map(|&t| clusterkv_model::PageRequest::new(t / 4, 4))
                .collect();
            let stats = plan.stats;
            clusterkv_model::SelectionPlan::new(plan.indices)
                .with_stats(stats)
                .with_pages(pages)
        }
    }

    struct PagedTopKFactory;

    impl clusterkv_model::SelectorFactory for PagedTopKFactory {
        fn name(&self) -> &str {
            "PagedTopK"
        }
        fn create(
            &self,
            ctx: clusterkv_model::policy::HeadContext,
        ) -> Box<dyn clusterkv_model::TokenSelector> {
            Box::new(PagedTopKSelector {
                inner: clusterkv_model::policy::OracleTopKSelector::new(ctx.head_dim),
            })
        }
    }

    fn paged_engine(prefetch: clusterkv_model::PrefetchConfig) -> ServeEngine {
        ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(13)
            .budget(Budget::new(8))
            .policy(Box::new(PagedTopKFactory))
            .kv_cache_capacity(Bytes(512))
            .prefetch(prefetch)
            .build()
            .unwrap()
    }

    #[test]
    fn prefetch_tick_budget_divides_across_the_batch_and_fills_metrics() {
        use clusterkv_model::PrefetchConfig;
        let run = |prefetch: PrefetchConfig, tick_budget: Option<Bytes>| {
            let mut cfg = SchedConfig::fcfs(4);
            if let Some(b) = tick_budget {
                cfg = cfg.with_prefetch_bytes_per_tick(b);
            }
            let mut sched = Scheduler::new(paged_engine(prefetch), cfg).unwrap();
            for i in 0..3 {
                sched
                    .submit(request(16 + i, 6, 0, i as f64 * 1e-6))
                    .unwrap();
            }
            sched.run().unwrap()
        };
        let off = run(PrefetchConfig::disabled(), None);
        let on = run(
            PrefetchConfig::reuse_last(Bytes(1 << 20)),
            Some(Bytes(1 << 20)),
        );
        let choked = run(PrefetchConfig::reuse_last(Bytes(1 << 20)), Some(Bytes(0)));
        for (a, b) in off.requests.iter().zip(&on.requests) {
            assert_eq!(a.tokens, b.tokens, "prefetch must not change tokens");
        }
        for (a, b) in off.requests.iter().zip(&choked.requests) {
            assert_eq!(a.tokens, b.tokens, "a zero budget must not change tokens");
        }
        // The budgeted run staged and promoted; its metrics carry the
        // ratios, both inside [0, 1] and never NaN.
        assert!(on.requests.iter().any(|r| r.prefetch_accuracy > 0.0));
        for r in &on.requests {
            assert!((0.0..=1.0).contains(&r.prefetch_accuracy));
            assert!((0.0..=1.0).contains(&r.hidden_transfer_fraction));
        }
        // Zero per-tick budget chokes staging entirely; prefetch-off
        // engines report hard zeros (PR 8 zero-guard convention).
        for r in choked.requests.iter().chain(&off.requests) {
            assert_eq!(r.prefetch_accuracy, 0.0);
            assert_eq!(r.hidden_transfer_fraction, 0.0);
            assert!(!r.prefetch_accuracy.is_nan());
        }
        // Determinism: the same budgeted run repeats bit-identically.
        let again = run(
            PrefetchConfig::reuse_last(Bytes(1 << 20)),
            Some(Bytes(1 << 20)),
        );
        assert_eq!(on, again);
    }

    #[test]
    fn config_validation() {
        let bad = |cfg: SchedConfig| Scheduler::new(engine(), cfg).unwrap_err();
        assert!(matches!(
            bad(SchedConfig::fcfs(0)),
            SchedError::InvalidConfig(_)
        ));
        assert!(matches!(
            bad(SchedConfig::fcfs(4).with_chunk_tokens(0)),
            SchedError::InvalidConfig(_)
        ));
        assert!(matches!(
            bad(SchedConfig::fcfs(4).with_tick_token_budget(0)),
            SchedError::InvalidConfig(_)
        ));
        assert!(matches!(
            bad(SchedConfig::fcfs(100_000)),
            SchedError::InvalidConfig(_)
        ));
        assert!(matches!(
            bad(
                SchedConfig::fcfs(4).with_policy(SchedPolicy::PriorityAging {
                    aging_per_second: 0.0
                })
            ),
            SchedError::InvalidConfig(_)
        ));
        // An engine without a default policy cannot admit.
        let no_policy = ServeEngine::builder(ModelConfig::tiny()).build().unwrap();
        assert!(matches!(
            Scheduler::new(no_policy, SchedConfig::fcfs(4)).unwrap_err(),
            SchedError::InvalidConfig(_)
        ));
    }

    #[test]
    fn submit_rejects_unservable_requests() {
        let mut sched = Scheduler::new(engine(), SchedConfig::fcfs(4)).unwrap();
        assert!(matches!(
            sched.submit(request(0, 4, 0, 0.0)).unwrap_err(),
            SchedError::Unservable { .. }
        ));
        assert!(matches!(
            sched.submit(request(8, 0, 0, 0.0)).unwrap_err(),
            SchedError::Unservable { .. }
        ));
        // tiny() has max_context 512.
        assert!(matches!(
            sched.submit(request(510, 8, 0, 0.0)).unwrap_err(),
            SchedError::Unservable { .. }
        ));
        let mut oversized = request(8, 4, 0, 0.0);
        oversized.prompt[3] = 9999; // out of vocabulary
        assert!(matches!(
            sched.submit(oversized).unwrap_err(),
            SchedError::Unservable { .. }
        ));
        // A request whose worst-case KV can never fit the admission bound.
        let kv_per_token = ModelConfig::tiny().kv_bytes_per_token();
        let mut tight = Scheduler::new(
            engine(),
            SchedConfig::fcfs(4).with_kv_capacity(Bytes(4 * kv_per_token)),
        )
        .unwrap();
        assert!(matches!(
            tight.submit(request(8, 4, 0, 0.0)).unwrap_err(),
            SchedError::Unservable { .. }
        ));
        assert!(tight.submit(request(2, 2, 0, 0.0)).is_ok());
    }

    #[test]
    fn fcfs_single_slot_serves_in_arrival_order() {
        let mut sched = Scheduler::new(engine(), SchedConfig::fcfs(1)).unwrap();
        // Submitted out of arrival order on purpose.
        sched.submit(request(8, 2, 0, 0.002)).unwrap(); // r0 arrives second
        sched.submit(request(8, 2, 0, 0.001)).unwrap(); // r1 arrives first
        sched.submit(request(8, 2, 0, 0.003)).unwrap(); // r2 arrives last
        let report = sched.run().unwrap();
        let mut by_finish: Vec<(f64, u64)> = report
            .requests
            .iter()
            .map(|r| (r.finished_at.get(), r.id.0))
            .collect();
        by_finish.sort_by(|a, b| a.0.total_cmp(&b.0));
        let order: Vec<u64> = by_finish.iter().map(|&(_, id)| id).collect();
        assert_eq!(order, vec![1, 0, 2], "completion must follow arrival");
    }

    #[test]
    fn aging_lifts_a_low_priority_request_over_later_urgent_ones() {
        let cfg = SchedConfig::fcfs(1).with_policy(SchedPolicy::PriorityAging {
            // Strong aging: any wait outweighs the priority gap.
            aging_per_second: 1e9,
        });
        let mut sched = Scheduler::new(engine(), cfg).unwrap();
        sched.submit(request(8, 2, 5, 0.0)).unwrap(); // r0: urgent, first
        sched.submit(request(8, 2, 0, 0.0)).unwrap(); // r1: background
        sched.submit(request(8, 2, 5, 0.000_1)).unwrap(); // r2: urgent, later
        let report = sched.run().unwrap();
        let finished = |id: u64| {
            report
                .requests
                .iter()
                .find(|r| r.id.0 == id)
                .unwrap()
                .finished_at
        };
        // r0 wins the empty queue; while it runs, r1 accrues age and must be
        // admitted before the later urgent r2.
        assert!(finished(1) < finished(2), "aged request served first");
    }

    #[test]
    fn without_aging_priority_is_ignored_by_fcfs() {
        let mut sched = Scheduler::new(engine(), SchedConfig::fcfs(1)).unwrap();
        sched.submit(request(8, 2, 0, 0.0)).unwrap();
        sched.submit(request(8, 2, 9, 0.000_1)).unwrap();
        let report = sched.run().unwrap();
        assert!(
            report.requests[0].finished_at < report.requests[1].finished_at,
            "FCFS serves by arrival regardless of priority"
        );
    }

    #[test]
    fn run_to_completion_is_exclusive() {
        let cfg = SchedConfig::fcfs(4).with_policy(SchedPolicy::RunToCompletion);
        let mut sched = Scheduler::new(engine(), cfg).unwrap();
        for i in 0..3 {
            sched.submit(request(10, 3, 0, 0.0001 * i as f64)).unwrap();
        }
        while !sched.is_idle() {
            sched.tick().unwrap();
            assert!(sched.num_running() <= 1, "RTC admits one request at a time");
        }
        assert_eq!(sched.report().requests.len(), 3);
    }

    #[test]
    fn tick_respects_the_token_budget_and_bounds() {
        let kv_per_token = ModelConfig::tiny().kv_bytes_per_token();
        let capacity = Bytes(40 * kv_per_token);
        let cfg = SchedConfig::fcfs(2)
            .with_chunk_tokens(3)
            .with_tick_token_budget(5)
            .with_kv_capacity(capacity);
        let mut sched = Scheduler::new(engine(), cfg).unwrap();
        for i in 0..5 {
            sched.submit(request(9 + i, 4, 0, 0.0)).unwrap();
        }
        let mut prefill_total = 0;
        while !sched.is_idle() {
            let out = sched.tick().unwrap();
            assert!(
                out.prefill_tokens + out.decode_tokens <= 5,
                "tick exceeded its token budget: {out:?}"
            );
            assert!(sched.num_running() <= 2, "max_sessions bound violated");
            assert!(sched.kv_reserved() <= capacity, "KV bound violated");
            prefill_total += out.prefill_tokens;
        }
        let report = sched.report();
        assert_eq!(report.requests.len(), 5);
        assert_eq!(
            prefill_total,
            (0..5).map(|i| 9 + i).sum::<usize>(),
            "every prompt token was prefilled exactly once"
        );
        for r in &report.requests {
            assert_eq!(r.tokens.len(), 4);
            assert!(r.ttft() > Seconds::zero());
            assert!(r.e2e() >= r.ttft());
            assert!(r.tbt_mean() > Seconds::zero());
        }
    }

    #[test]
    fn scheduling_policy_never_changes_token_streams() {
        let streams = |policy: SchedPolicy| {
            let cfg = SchedConfig::fcfs(3)
                .with_policy(policy)
                .with_chunk_tokens(4)
                .with_tick_token_budget(6);
            let mut sched = Scheduler::new(engine(), cfg).unwrap();
            for i in 0..4 {
                sched
                    .submit(request(8 + 3 * i, 5, (i % 2) as u32, 0.0005 * i as f64))
                    .unwrap();
            }
            let report = sched.run().unwrap();
            report
                .requests
                .iter()
                .map(|r| r.tokens.clone())
                .collect::<Vec<_>>()
        };
        let fcfs = streams(SchedPolicy::Fcfs);
        assert_eq!(
            fcfs,
            streams(SchedPolicy::RunToCompletion),
            "RTC must generate identical tokens"
        );
        assert_eq!(
            fcfs,
            streams(SchedPolicy::PriorityAging {
                aging_per_second: 10.0
            }),
            "aging must generate identical tokens"
        );
    }

    #[test]
    fn scheduler_is_deterministic() {
        let run = || {
            let mut sched = Scheduler::new(
                engine(),
                SchedConfig::fcfs(3)
                    .with_chunk_tokens(5)
                    .with_tick_token_budget(7),
            )
            .unwrap();
            for i in 0..5 {
                sched
                    .submit(request(7 + i, 4, 0, 0.0002 * i as f64))
                    .unwrap();
            }
            sched.run().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same trace must produce bit-identical reports");
        assert!(a.makespan > Seconds::zero());
        assert!(a.throughput() > 0.0);
        assert_eq!(a.total_generated, 20);
        assert_eq!(a.request_rows().len(), 5);
    }

    #[test]
    fn prefix_sharing_shrinks_reservations_and_speeds_ttft() {
        let cfg = ModelConfig::tiny();
        let prompt: Vec<usize> = (0..32).map(|i| (i * 5 + 2) % 128).collect();
        let new = 4;
        // Capacity for exactly one cold request's worst case: without the
        // prefix discount, requests can only ever run one at a time.
        let capacity = Bytes((prompt.len() + new) as u64 * cfg.kv_bytes_per_token());
        let store_engine = || {
            ServeEngine::builder(ModelConfig::tiny())
                .synthetic_weights(13)
                .budget(Budget::new(16))
                .policy(Box::new(OracleTopKFactory))
                .prefix_store(Bytes(1 << 20))
                .build()
                .unwrap()
        };
        let mut sched = Scheduler::new(
            store_engine(),
            SchedConfig::fcfs(4).with_kv_capacity(capacity),
        )
        .unwrap();
        let shared = |at: f64| Request {
            prompt: prompt.clone(),
            max_new_tokens: new,
            priority: 0,
            arrival_time: Seconds(at),
            deadline: None,
        };
        sched.submit(shared(0.0)).unwrap();
        while !sched.is_idle() {
            sched.tick().unwrap();
        }
        let after_cold = sched.clock().get();
        let cold = &sched.report().requests[0];
        assert_eq!(cold.shared_prefix_tokens, 0, "first request computes cold");
        let cold_ttft = cold.ttft();

        // The released session donated the prompt: two followers reserve
        // only their generation bytes and are admitted *together* under a
        // capacity that fits just one cold request.
        sched.submit(shared(after_cold)).unwrap();
        sched.submit(shared(after_cold)).unwrap();
        let out = sched.tick().unwrap();
        assert_eq!(out.admitted.len(), 2, "both fit via the prefix discount");
        assert_eq!(
            sched.kv_reserved(),
            Bytes(2 * new as u64 * cfg.kv_bytes_per_token()),
            "reservations exclude the pinned shared prefix"
        );
        while !sched.is_idle() {
            sched.tick().unwrap();
        }
        let report = sched.report();
        for r in &report.requests[1..] {
            assert_eq!(r.shared_prefix_tokens, prompt.len());
            assert_eq!(r.tokens, report.requests[0].tokens, "streams identical");
            assert!(
                r.ttft() < cold_ttft,
                "shared prefill is priced below cold: {} vs {}",
                r.ttft(),
                cold_ttft
            );
        }
    }

    #[test]
    fn prefix_scheduler_is_deterministic() {
        let run = || {
            let engine = ServeEngine::builder(ModelConfig::tiny())
                .synthetic_weights(13)
                .budget(Budget::new(16))
                .policy(Box::new(OracleTopKFactory))
                .prefix_store(Bytes(1 << 18))
                .build()
                .unwrap();
            let mut sched = Scheduler::new(
                engine,
                SchedConfig::fcfs(3)
                    .with_chunk_tokens(5)
                    .with_tick_token_budget(7),
            )
            .unwrap();
            // Alternating shared and unique prompts exercise hit, miss and
            // divergence paths of the store under interleaved chunks.
            for i in 0..6 {
                let prompt: Vec<usize> = if i % 2 == 0 {
                    (0..24).map(|t| (t * 3 + 1) % 128).collect()
                } else {
                    (0..9 + i).map(|t| (t * 7 + i) % 128).collect()
                };
                sched
                    .submit(Request {
                        prompt,
                        max_new_tokens: 4,
                        priority: 0,
                        arrival_time: Seconds(0.0003 * i as f64),
                        deadline: None,
                    })
                    .unwrap();
            }
            sched.run().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "prefix sharing must stay bit-deterministic");
        assert!(
            a.requests.iter().any(|r| r.shared_prefix_tokens > 0),
            "the shared prompts actually reused the store"
        );
    }

    #[test]
    fn clock_jumps_over_open_loop_gaps() {
        let mut sched = Scheduler::new(engine(), SchedConfig::fcfs(2)).unwrap();
        sched.submit(request(6, 1, 0, 5.0)).unwrap();
        let out = sched.tick().unwrap();
        assert_eq!(out.admitted, vec![RequestId(0)]);
        assert!(sched.clock() >= Seconds(5.0), "clock jumped to the arrival");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn admission_invariants_hold_and_nothing_starves(
            lens in proptest::collection::vec(1usize..24, 1..8),
            news in proptest::collection::vec(1usize..5, 1..8),
            prios in proptest::collection::vec(0u32..4, 1..8),
            policy_pick in 0usize..3,
            chunk in 1usize..9,
            budget in 1usize..12,
            max_sessions in 1usize..4,
        ) {
            let policy = match policy_pick {
                0 => SchedPolicy::Fcfs,
                1 => SchedPolicy::PriorityAging { aging_per_second: 50.0 },
                _ => SchedPolicy::RunToCompletion,
            };
            let kv_per_token = ModelConfig::tiny().kv_bytes_per_token();
            let capacity = Bytes(60 * kv_per_token);
            let cfg = SchedConfig::fcfs(max_sessions)
                .with_policy(policy)
                .with_chunk_tokens(chunk)
                .with_tick_token_budget(budget)
                .with_kv_capacity(capacity);
            let mut sched = Scheduler::new(engine(), cfg).unwrap();
            let n = lens.len().min(news.len()).min(prios.len());
            let mut expected = Vec::new();
            for i in 0..n {
                let r = request(lens[i].min(30), news[i], prios[i], 0.0003 * i as f64);
                expected.push((r.prompt.len(), r.max_new_tokens));
                sched.submit(r).unwrap();
            }
            let mut ticks = 0usize;
            while !sched.is_idle() {
                let out = sched.tick().unwrap();
                prop_assert!(out.prefill_tokens + out.decode_tokens <= budget);
                prop_assert!(sched.num_running() <= max_sessions);
                prop_assert!(sched.kv_reserved() <= capacity);
                ticks += 1;
                prop_assert!(ticks < 200_000, "runaway schedule");
            }
            // No starvation: every submitted request completed in full.
            let report = sched.report();
            prop_assert_eq!(report.requests.len(), n);
            for (r, &(plen, new)) in report.requests.iter().zip(&expected) {
                prop_assert_eq!(r.prompt_len, plen);
                prop_assert_eq!(r.tokens.len(), new);
                prop_assert!(r.first_token_at >= Some(r.admitted_at));
                prop_assert!(r.first_token_at.is_some_and(|t| r.finished_at >= t));
                prop_assert!(r.admitted_at >= r.arrival);
            }
        }
    }

    fn faulty_store_sched(plan: FaultPlan, max_retries: u32) -> Scheduler {
        let engine = ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(13)
            .budget(Budget::new(16))
            .policy(Box::new(OracleTopKFactory))
            .prefix_store(Bytes(1 << 20))
            .build()
            .unwrap();
        Scheduler::new(
            engine,
            SchedConfig::fcfs(4)
                .with_faults(plan)
                .with_max_retries(max_retries),
        )
        .unwrap()
    }

    /// Completed token streams keyed by request id, for parity checks.
    fn streams(report: &ServingReport) -> std::collections::BTreeMap<u64, Vec<usize>> {
        report
            .completed()
            .map(|r| (r.id.0, r.tokens.clone()))
            .collect()
    }

    #[test]
    fn empty_report_ratios_are_zero_not_nan() {
        let sched = Scheduler::new(engine(), SchedConfig::fcfs(1)).unwrap();
        let report = sched.report();
        assert_eq!(report.retry_rate(), 0.0);
        assert_eq!(report.cancelled_fraction(), 0.0);
        assert_eq!(report.completed_fraction(), 0.0);
        assert_eq!(report.mean_ttft(), 0.0);
        assert_eq!(report.throughput(), 0.0);
        assert_eq!(report.integrity(), IntegrityStats::default());
        assert!(report.ttfts().is_empty());
        assert!(report.e2es().is_empty());
        assert!(report.request_rows().is_empty());
    }

    #[test]
    fn mixed_completed_and_cancelled_requests_report_cleanly() {
        let mut sched = Scheduler::new(engine(), SchedConfig::fcfs(4)).unwrap();
        sched.submit(request(8, 4, 0, 0.0)).unwrap();
        let mut doomed = request(10, 4, 0, 0.0);
        doomed.deadline = Some(Seconds(0.0));
        sched.submit(doomed).unwrap();
        sched.submit(request(12, 4, 0, 0.0)).unwrap();
        let report = sched.run().unwrap();
        assert_eq!(report.requests.len(), 3);
        let timed_out: Vec<_> = report
            .requests
            .iter()
            .filter(|r| r.outcome == RequestOutcome::TimedOut)
            .collect();
        assert_eq!(timed_out.len(), 1, "the zero-deadline request timed out");
        assert_eq!(timed_out[0].id, RequestId(1));
        // The percentile/throughput emitters cover completed requests only
        // and stay well-formed in the presence of a cancelled request.
        assert_eq!(report.ttfts().len(), 2);
        assert_eq!(report.e2es().len(), 2);
        assert_eq!(report.request_rows().len(), 2);
        assert_eq!(report.total_generated, 8);
        assert!(report.mean_ttft().is_finite() && report.mean_ttft() > 0.0);
        assert!(report.throughput().is_finite() && report.throughput() > 0.0);
        assert!((report.cancelled_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((report.completed_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn queued_requests_past_their_deadline_are_shed_without_admission() {
        let cfg = ModelConfig::tiny();
        // Capacity for exactly one request's worst case: the second waits.
        let capacity = Bytes((16 + 8) as u64 * cfg.kv_bytes_per_token());
        let mut sched =
            Scheduler::new(engine(), SchedConfig::fcfs(4).with_kv_capacity(capacity)).unwrap();
        sched.submit(request(16, 8, 0, 0.0)).unwrap();
        let mut doomed = request(16, 8, 0, 0.0);
        doomed.deadline = Some(Seconds(1e-9));
        sched.submit(doomed).unwrap();
        let report = sched.run().unwrap();
        let shed = &report.requests[1];
        assert_eq!(shed.outcome, RequestOutcome::TimedOut);
        assert!(shed.tokens.is_empty(), "never ran, no partial stream");
        assert_eq!(shed.first_token_at, None);
        assert_eq!(report.requests[0].outcome, RequestOutcome::Completed);
    }

    #[test]
    fn crash_faults_retry_deterministically_and_preserve_streams() {
        let plan = FaultPlan {
            crash_rate: 0.08,
            ..FaultPlan::disabled().with_seed(41)
        };
        let run = |plan: FaultPlan| {
            let mut sched = faulty_store_sched(plan, 8);
            for i in 0..6 {
                sched
                    .submit(request(10 + i, 6, 0, 0.0002 * i as f64))
                    .unwrap();
            }
            sched.run().unwrap()
        };
        let faulty = run(plan);
        let clean = run(FaultPlan::disabled());
        assert!(
            faulty.retry_rate() > 0.0,
            "crash faults actually fired at rate 0.08"
        );
        // Retries change *when*, never *what*: every completed stream is
        // byte-identical to the uninterrupted run (checkpoint/restore via
        // the prefix store plus deterministic replay).
        let clean_streams = streams(&clean);
        for (id, tokens) in streams(&faulty) {
            assert_eq!(
                Some(&tokens),
                clean_streams.get(&id),
                "request {id} diverged after crash recovery"
            );
        }
        let again = run(plan);
        assert_eq!(faulty, again, "crash schedules are bit-identical");
    }

    #[test]
    fn crash_retry_budget_exhaustion_cancels_the_request() {
        let plan = FaultPlan {
            crash_rate: 0.99,
            ..FaultPlan::disabled().with_seed(7)
        };
        let mut sched = faulty_store_sched(plan, 2);
        sched.submit(request(8, 6, 0, 0.0)).unwrap();
        let report = sched.run().unwrap();
        assert_eq!(report.requests.len(), 1);
        let r = &report.requests[0];
        assert!(
            matches!(r.outcome, RequestOutcome::Cancelled { .. }),
            "rate-1.0 crashes exhaust the retry budget, got {:?}",
            r.outcome
        );
        assert_eq!(r.retries, 2, "both retries were consumed first");
        assert_eq!(report.completed_fraction(), 0.0);
        assert_eq!(report.total_generated, 0, "goodput counts completions only");
        assert!(sched.is_idle());
        assert_eq!(sched.kv_reserved(), Bytes(0), "no leaked reservations");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        // Degradation-ladder invariants: capacity pressure may delay or
        // throttle requests but never drops one, never overcommits the
        // scaled KV bound, and never perturbs a token stream.
        #[test]
        fn pressure_ladder_never_drops_or_perturbs_requests(
            seed in 0u64..512,
            rate in 0.1f64..0.9,
        ) {
            let plan = FaultPlan {
                pressure_rate: rate,
                pressure_floor: 0.5,
                ..FaultPlan::disabled().with_seed(seed)
            };
            let kv_per_token = ModelConfig::tiny().kv_bytes_per_token();
            let capacity = Bytes(60 * kv_per_token);
            let run = |plan: FaultPlan| {
                let mut sched = Scheduler::new(
                    engine(),
                    SchedConfig::fcfs(3)
                        .with_kv_capacity(capacity)
                        .with_faults(plan),
                )
                .unwrap();
                for i in 0..5 {
                    sched.submit(request(8 + i, 4, 0, 0.0003 * i as f64)).unwrap();
                }
                let mut max_level = 0u8;
                while !sched.is_idle() {
                    let out = sched.tick().unwrap();
                    max_level = max_level.max(out.pressure_level);
                    prop_assert!(out.pressure_level <= 3);
                    prop_assert!(sched.kv_reserved() <= capacity);
                }
                Ok((sched.report(), max_level))
            };
            let (faulty, level) = run(plan)?;
            let (clean, _) = run(FaultPlan::disabled())?;
            prop_assert!(level >= 1, "pressure at rate {rate} fired at least once");
            // Pinned/resident state is never dropped: every request still
            // delivers its full stream, byte-identical to the calm run.
            prop_assert_eq!(faulty.cancelled_fraction(), 0.0);
            prop_assert_eq!(streams(&faulty), streams(&clean));
        }

        // Checkpoint/restore parity: a crashed request re-admitted through
        // the prefix-store checkpoint regenerates exactly the stream an
        // uninterrupted run would have produced, bitwise.
        #[test]
        fn checkpoint_restore_replay_matches_uninterrupted_runs(
            seed in 0u64..512,
            rate in 0.02f64..0.2,
        ) {
            let plan = FaultPlan {
                crash_rate: rate,
                ..FaultPlan::disabled().with_seed(seed)
            };
            let run = |plan: FaultPlan| {
                let mut sched = faulty_store_sched(plan, 6);
                for i in 0..4 {
                    sched.submit(request(9 + i, 5, 0, 0.0002 * i as f64)).unwrap();
                }
                sched.run().unwrap()
            };
            let faulty = run(plan);
            let clean = run(FaultPlan::disabled());
            let clean_streams = streams(&clean);
            for (id, tokens) in streams(&faulty) {
                prop_assert_eq!(Some(&tokens), clean_streams.get(&id));
            }
        }
    }
}
