//! Aggregation and report formatting for the experiment harness.
//!
//! Every benchmark binary in `clusterkv-bench` prints the rows/series the
//! corresponding paper table or figure reports. This crate provides the small
//! shared pieces: summary statistics, a markdown table builder and a named
//! data series that serialises to JSON for plotting.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Mean of a slice; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation; `0.0` for fewer than two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Geometric mean of positive values; `0.0` if any value is non-positive or
/// the slice is empty.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// A named series of `(x, y)` points — one line in a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (method name).
    pub label: String,
    /// X/Y points in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Serialise to a compact JSON string (for plotting outside Rust).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("series serialisation cannot fail")
    }
}

/// Markdown table builder used by the experiment binaries to print rows the
/// same way the paper's tables lay them out.
///
/// # Examples
///
/// ```
/// use clusterkv_metrics::Table;
///
/// let mut t = Table::new(vec!["Method", "256", "512"]);
/// t.row(vec!["Quest".into(), "35.6".into(), "40.8".into()]);
/// let text = t.render();
/// assert!(text.contains("| Method | 256 | 512 |"));
/// assert!(text.contains("Quest"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Self {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as GitHub-flavoured markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

/// Format a float with a fixed number of decimals (helper for table cells).
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_std_of_known_values() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_behaviour() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[1.0, -2.0]), 0.0);
    }

    #[test]
    fn series_round_trips_through_json() {
        let mut s = Series::new("ClusterKV");
        s.push(256.0, 46.7);
        s.push(512.0, 48.0);
        let json = s.to_json();
        let back: Series = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(vec!["a", "b"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        t.row(vec!["2".into(), "3".into(), "4".into()]);
        assert_eq!(t.len(), 2);
        let md = t.render();
        assert!(md.starts_with("| a | b |"));
        assert!(md.contains("| 1 |  |"));
        assert!(md.contains("| 2 | 3 |"));
        assert!(!md.contains('4'));
    }

    #[test]
    fn fmt_controls_decimals() {
        assert_eq!(fmt(3.14159, 2), "3.14");
        assert_eq!(fmt(2.0, 0), "2");
    }

    proptest! {
        #[test]
        fn mean_is_within_min_max(v in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
            let m = mean(&v);
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }

        #[test]
        fn std_dev_is_non_negative(v in proptest::collection::vec(-100.0f64..100.0, 0..50)) {
            prop_assert!(std_dev(&v) >= 0.0);
        }
    }
}
