//! Aggregation and report formatting for the experiment harness.
//!
//! Every benchmark binary in `clusterkv-bench` prints the rows/series the
//! corresponding paper table or figure reports. This crate provides the small
//! shared pieces: summary statistics, a markdown table builder and a named
//! data series that serialises to JSON for plotting.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Mean of a slice; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation; `0.0` for fewer than two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Geometric mean of positive values; `0.0` if any value is non-positive or
/// the slice is empty.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Nearest-rank percentile (`p` in `[0, 100]`); `0.0` for an empty slice.
/// NaN values sort last (total order), so degenerate inputs cannot panic.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_of_sorted(&sorted, p)
}

/// Nearest-rank percentile of an already ascending-sorted slice.
fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Mean / p50 / p95 / p99 of one latency distribution (seconds, or any
/// consistent unit) — the summary every serving experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
}

impl LatencySummary {
    /// Summarise a set of values (all zeros for an empty slice).
    pub fn from_values(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self {
            mean: mean(values),
            p50: percentile_of_sorted(&sorted, 50.0),
            p95: percentile_of_sorted(&sorted, 95.0),
            p99: percentile_of_sorted(&sorted, 99.0),
        }
    }

    /// The summary as table cells `[mean, p50, p95, p99]`, each formatted in
    /// milliseconds with the given number of decimals (inputs are seconds).
    pub fn millis_cells(&self, decimals: usize) -> Vec<String> {
        [self.mean, self.p50, self.p95, self.p99]
            .iter()
            .map(|v| fmt(v * 1e3, decimals))
            .collect()
    }
}

/// One served request's end-to-end measurements, the row format every
/// serving experiment shares (emitted by `clusterkv-sched` from its
/// per-request metrics) so bench binaries stop hand-formatting report
/// fields. Times are in seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRow {
    /// Request id (submission order).
    pub id: u64,
    /// Time to first token: arrival → first generated token.
    pub ttft: f64,
    /// Mean time between output tokens (0 for single-token requests).
    pub tbt: f64,
    /// End-to-end latency: arrival → last token.
    pub e2e: f64,
    /// Token-level hit rate of the session's GPU cluster cache in `[0, 1]`.
    pub hit_rate: f64,
    /// Number of generated tokens.
    pub generated: usize,
}

/// Render per-request rows as a markdown table (TTFT/TBT/E2E in ms).
pub fn request_table(rows: &[RequestRow]) -> Table {
    let mut t = Table::new(vec![
        "Request",
        "TTFT (ms)",
        "TBT (ms)",
        "E2E (ms)",
        "Hit rate",
        "Tokens",
    ]);
    for r in rows {
        t.row(vec![
            format!("r{}", r.id),
            fmt(r.ttft * 1e3, 2),
            fmt(r.tbt * 1e3, 3),
            fmt(r.e2e * 1e3, 2),
            format!("{}%", fmt(r.hit_rate * 100.0, 1)),
            r.generated.to_string(),
        ]);
    }
    t
}

/// Extract one per-request metric as a plottable [`Series`] (x = request
/// id, y = `metric(row)`), e.g.
/// `request_series("TTFT", &rows, |r| r.ttft)`.
pub fn request_series(
    label: impl Into<String>,
    rows: &[RequestRow],
    metric: impl Fn(&RequestRow) -> f64,
) -> Series {
    let mut s = Series::new(label);
    for r in rows {
        s.push(r.id as f64, metric(r));
    }
    s
}

/// A named series of `(x, y)` points — one line in a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (method name).
    pub label: String,
    /// X/Y points in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Serialise to a compact JSON string (for plotting outside Rust).
    ///
    /// The format matches what `serde_json` would produce for this struct:
    /// `{"label":"...","points":[[x,y],...]}`. JSON is emitted by hand so the
    /// crate works without registry access (see `crates/shims/README.md`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"label\":\"");
        for ch in self.label.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str("\",\"points\":[");
        for (i, (x, y)) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{}]", fmt_json_f64(*x), fmt_json_f64(*y)));
        }
        out.push_str("]}");
        out
    }

    /// Parse a series back from the JSON produced by [`Series::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem encountered.
    pub fn from_json(json: &str) -> Result<Series, String> {
        let mut p = JsonParser::new(json);
        p.expect('{')?;
        p.expect_str("\"label\"")?;
        p.expect(':')?;
        let label = p.parse_string()?;
        p.expect(',')?;
        p.expect_str("\"points\"")?;
        p.expect(':')?;
        p.expect('[')?;
        let mut points = Vec::new();
        if !p.try_consume(']') {
            loop {
                p.expect('[')?;
                let x = p.parse_number()?;
                p.expect(',')?;
                let y = p.parse_number()?;
                p.expect(']')?;
                points.push((x, y));
                if !p.try_consume(',') {
                    p.expect(']')?;
                    break;
                }
            }
        }
        p.expect('}')?;
        Ok(Series { label, points })
    }
}

/// Render an `f64` so it round-trips through [`str::parse`] (shortest
/// representation; JSON has no non-finite literals, which the series never
/// contains in practice — non-finite values are emitted as `null`).
fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal recursive-descent parser for the subset of JSON emitted by
/// [`Series::to_json`].
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{c}' at byte {}", self.pos))
        }
    }

    fn try_consume(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_str(&mut self, s: &str) -> Result<(), String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(format!("expected '{s}' at byte {}", self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        }
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Continue a (possibly multi-byte) UTF-8 sequence.
                    let start = self.pos - 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        // `to_json` emits non-finite values as `null` (JSON has no NaN /
        // Infinity literals); accept it back as NaN so round-trips of
        // degenerate series do not error.
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(f64::NAN);
        }
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

/// Markdown table builder used by the experiment binaries to print rows the
/// same way the paper's tables lay them out.
///
/// # Examples
///
/// ```
/// use clusterkv_metrics::Table;
///
/// let mut t = Table::new(vec!["Method", "256", "512"]);
/// t.row(vec!["Quest".into(), "35.6".into(), "40.8".into()]);
/// let text = t.render();
/// assert!(text.contains("| Method | 256 | 512 |"));
/// assert!(text.contains("Quest"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Self {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as GitHub-flavoured markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

/// Format a float with a fixed number of decimals (helper for table cells).
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_std_of_known_values() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_behaviour() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[1.0, -2.0]), 0.0);
    }

    #[test]
    fn series_round_trips_through_json() {
        let mut s = Series::new("ClusterKV");
        s.push(256.0, 46.7);
        s.push(512.0, 48.0);
        let json = s.to_json();
        assert_eq!(
            json,
            r#"{"label":"ClusterKV","points":[[256,46.7],[512,48]]}"#
        );
        let back = Series::from_json(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_series_and_escaped_labels_round_trip() {
        let empty = Series::new("quote \" backslash \\ newline \n");
        let back = Series::from_json(&empty.to_json()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn non_finite_points_round_trip_as_null() {
        let mut s = Series::new("degenerate");
        s.push(f64::NAN, 1.0);
        s.push(2.0, f64::INFINITY);
        let json = s.to_json();
        assert_eq!(
            json,
            r#"{"label":"degenerate","points":[[null,1],[2,null]]}"#
        );
        let back = Series::from_json(&json).unwrap();
        assert!(back.points[0].0.is_nan());
        assert_eq!(back.points[0].1, 1.0);
        assert_eq!(back.points[1].0, 2.0);
        assert!(back.points[1].1.is_nan());
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(Series::from_json("{\"label\":\"x\"").is_err());
        assert!(Series::from_json("[]").is_err());
        assert!(Series::from_json("{\"label\":\"x\",\"points\":[[1]]}").is_err());
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(vec!["a", "b"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        t.row(vec!["2".into(), "3".into(), "4".into()]);
        assert_eq!(t.len(), 2);
        let md = t.render();
        assert!(md.starts_with("| a | b |"));
        assert!(md.contains("| 1 |  |"));
        assert!(md.contains("| 2 | 3 |"));
        assert!(!md.contains('4'));
    }

    #[test]
    fn fmt_controls_decimals() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(2.0, 0), "2");
    }

    #[test]
    fn percentile_nearest_rank_on_known_values() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn latency_summary_from_values() {
        let s = LatencySummary::from_values(&[0.001, 0.002, 0.003, 0.004]);
        assert!((s.mean - 0.0025).abs() < 1e-12);
        assert_eq!(s.p50, 0.002);
        assert_eq!(s.p99, 0.004);
        let cells = s.millis_cells(1);
        assert_eq!(cells, vec!["2.5", "2.0", "4.0", "4.0"]);
        let empty = LatencySummary::from_values(&[]);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.p99, 0.0);
    }

    #[test]
    fn request_rows_render_as_table_and_series() {
        let rows = vec![
            RequestRow {
                id: 0,
                ttft: 0.010,
                tbt: 0.002,
                e2e: 0.050,
                hit_rate: 0.75,
                generated: 20,
            },
            RequestRow {
                id: 1,
                ttft: 0.020,
                tbt: 0.003,
                e2e: 0.080,
                hit_rate: 0.5,
                generated: 21,
            },
        ];
        let table = request_table(&rows).render();
        assert!(table.contains("| Request | TTFT (ms) |"));
        assert!(table.contains("| r0 | 10.00 | 2.000 | 50.00 | 75.0% | 20 |"));
        let series = request_series("TTFT", &rows, |r| r.ttft);
        assert_eq!(series.label, "TTFT");
        assert_eq!(series.points, vec![(0.0, 0.010), (1.0, 0.020)]);
    }

    proptest! {
        #[test]
        fn percentile_is_within_min_max(v in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
                let x = percentile(&v, p);
                prop_assert!(x >= lo && x <= hi);
            }
        }

        #[test]
        fn mean_is_within_min_max(v in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
            let m = mean(&v);
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }

        #[test]
        fn std_dev_is_non_negative(v in proptest::collection::vec(-100.0f64..100.0, 0..50)) {
            prop_assert!(std_dev(&v) >= 0.0);
        }
    }
}
