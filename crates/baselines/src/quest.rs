//! Quest: query-aware page-granular KV selection (Tang et al., ICML 2024).
//!
//! Quest divides the token sequence into fixed-size *pages* of consecutive
//! tokens and keeps, for every page, the per-channel element-wise maximum and
//! minimum of its key vectors. At each decoding step the query is scored
//! against this metadata to obtain an *upper bound* of the attention weight
//! any token in the page could achieve; the top pages are selected until the
//! token budget is filled. Selection is recallable, but because pages are cut
//! purely by position a selected page may contain mostly unimportant tokens —
//! the internal-fragmentation problem ClusterKV addresses (Fig. 3b).
//!
//! In the tiered serving stack Quest pages KV at its own positional-page
//! granularity: plans carry one [`PageRequest`] per selected page, so a
//! session with a bounded GPU cluster cache recalls whole pages on a miss,
//! while a cache large enough for the full KV reproduces Quest's usual
//! all-GPU deployment (no PCIe traffic).

use clusterkv_model::policy::{
    HeadContext, KvResidency, ObserveEvent, PageRequest, PolicyStats, SelectionPlan,
    SelectionRequest, SelectorFactory, TokenSelector,
};
use clusterkv_tensor::vector::argsort_descending;
use serde::{Deserialize, Serialize};

/// Page size used by Quest (16 tokens in the original paper and in the
/// ClusterKV evaluation).
pub const DEFAULT_PAGE_SIZE: usize = 16;

/// Per-page metadata: element-wise max and min of the member keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PageMeta {
    start: usize,
    len: usize,
    max_key: Vec<f32>,
    min_key: Vec<f32>,
}

impl PageMeta {
    /// Upper bound of `q·k` over any key in the page: for each channel take
    /// the larger of `q_c · max_c` and `q_c · min_c` (handles negative query
    /// channels), then sum.
    fn score(&self, q: &[f32]) -> f32 {
        q.iter()
            .zip(self.max_key.iter().zip(&self.min_key))
            .map(|(&qc, (&mx, &mn))| (qc * mx).max(qc * mn))
            .sum()
    }
}

/// Quest selection state for one attention head.
#[derive(Debug, Clone)]
pub struct QuestSelector {
    page_size: usize,
    head_dim: usize,
    pages: Vec<PageMeta>,
    num_tokens: usize,
}

impl QuestSelector {
    /// Create a Quest selector with the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn new(page_size: usize, head_dim: usize) -> Self {
        assert!(page_size > 0, "page_size must be > 0");
        Self {
            page_size,
            head_dim,
            pages: Vec::new(),
            num_tokens: 0,
        }
    }

    /// Number of pages currently tracked.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    fn add_key(&mut self, position: usize, key: &[f32]) {
        debug_assert_eq!(position, self.num_tokens, "keys must arrive in order");
        if self.num_tokens.is_multiple_of(self.page_size) {
            self.pages.push(PageMeta {
                start: position,
                len: 1,
                max_key: key.to_vec(),
                min_key: key.to_vec(),
            });
        } else {
            let page = self
                .pages
                .last_mut()
                .expect("page exists for non-boundary token");
            page.len += 1;
            for ((mx, mn), &k) in page
                .max_key
                .iter_mut()
                .zip(page.min_key.iter_mut())
                .zip(key)
            {
                if k > *mx {
                    *mx = k;
                }
                if k < *mn {
                    *mn = k;
                }
            }
        }
        self.num_tokens += 1;
    }
}

impl TokenSelector for QuestSelector {
    fn name(&self) -> &str {
        "Quest"
    }

    fn observe(&mut self, event: ObserveEvent<'_>) {
        match event {
            // Page metadata builds token by token, so chunked prefill is
            // naturally incremental: each chunk extends the page min/max
            // exactly as a monolithic prefill would.
            ObserveEvent::Prefill { keys } | ObserveEvent::PrefillChunk { keys, .. } => {
                assert_eq!(keys.cols(), self.head_dim, "key dim mismatch");
                for i in 0..keys.rows() {
                    self.add_key(self.num_tokens, keys.row(i));
                }
            }
            ObserveEvent::PrefillDone { total_tokens } => {
                debug_assert_eq!(
                    total_tokens, self.num_tokens,
                    "chunks must cover the prompt"
                );
            }
            ObserveEvent::Append { key, .. } => {
                assert_eq!(key.len(), self.head_dim, "key dim mismatch");
                self.add_key(self.num_tokens, key);
            }
        }
    }

    fn plan(&mut self, request: SelectionRequest<'_>) -> SelectionPlan {
        let n = request.num_tokens.min(self.num_tokens);
        if request.budget.covers(n) {
            return SelectionPlan::full(n);
        }
        let scores: Vec<f32> = self.pages.iter().map(|p| p.score(request.query)).collect();
        let scored = scores.len() as u64;
        let order = argsort_descending(&scores);

        let budget_tokens = request.budget.tokens();
        let mut selected = Vec::with_capacity(budget_tokens);
        let mut pages = Vec::new();
        for &page_idx in &order {
            if selected.len() >= budget_tokens {
                break;
            }
            let page = &self.pages[page_idx];
            let remaining = budget_tokens - selected.len();
            let take = page.len.min(remaining);
            selected.extend(page.start..page.start + take);
            // Recall at page granularity: the attended prefix of the page
            // must be materialised on the GPU.
            pages.push(PageRequest::new(page_idx, take));
        }
        selected.retain(|&t| t < n);
        SelectionPlan::new(selected)
            .with_stats(PolicyStats {
                scored_vectors: scored,
                ..PolicyStats::default()
            })
            .with_pages(pages)
    }

    fn page_table(&self) -> KvResidency {
        KvResidency::Paged(
            self.pages
                .iter()
                .enumerate()
                .map(|(i, p)| PageRequest::new(i, p.len))
                .collect(),
        )
    }
}

/// Factory for [`QuestSelector`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QuestFactory {
    /// Page size in tokens.
    pub page_size: usize,
}

impl Default for QuestFactory {
    fn default() -> Self {
        Self {
            page_size: DEFAULT_PAGE_SIZE,
        }
    }
}

impl QuestFactory {
    /// Create a factory with a custom page size.
    pub fn new(page_size: usize) -> Self {
        Self { page_size }
    }
}

impl SelectorFactory for QuestFactory {
    fn name(&self) -> &str {
        "Quest"
    }

    fn create(&self, ctx: HeadContext) -> Box<dyn TokenSelector> {
        Box::new(QuestSelector::new(self.page_size, ctx.head_dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterkv_kvcache::types::Budget;
    use clusterkv_tensor::Matrix;

    fn prefill(q: &mut QuestSelector, keys: &Matrix) {
        q.observe(ObserveEvent::Prefill { keys });
    }

    fn append(q: &mut QuestSelector, position: usize, key: &[f32]) {
        q.observe(ObserveEvent::Append { position, key });
    }

    fn keys_with_hot_token(n: usize, dim: usize, hot: usize) -> Matrix {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let mut v = vec![0.01; dim];
                if i == hot {
                    v[0] = 10.0;
                }
                v
            })
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn pages_cover_all_tokens() {
        let mut q = QuestSelector::new(4, 8);
        prefill(&mut q, &keys_with_hot_token(10, 8, 0));
        assert_eq!(q.num_pages(), 3); // 4 + 4 + 2
        append(&mut q, 10, &[0.0; 8]);
        append(&mut q, 11, &[0.0; 8]);
        append(&mut q, 12, &[0.0; 8]);
        assert_eq!(q.num_pages(), 4); // the 3rd page filled, a 4th started
    }

    #[test]
    fn selects_the_page_containing_the_hot_token() {
        let mut q = QuestSelector::new(4, 8);
        // Hot token at position 9 => page 2 (tokens 8..12).
        prefill(&mut q, &keys_with_hot_token(20, 8, 9));
        let query = {
            let mut v = vec![0.0; 8];
            v[0] = 1.0;
            v
        };
        let out = q
            .plan(SelectionRequest::new(&query, 20, Budget::new(4)))
            .indices;
        assert_eq!(out.len(), 4);
        assert!(
            out.contains(&9),
            "hot token's page must be selected: {out:?}"
        );
        assert!(out.contains(&8) && out.contains(&10) && out.contains(&11));
    }

    #[test]
    fn page_upper_bound_handles_negative_query_channels() {
        let meta = PageMeta {
            start: 0,
            len: 2,
            max_key: vec![1.0, 5.0],
            min_key: vec![-3.0, 0.0],
        };
        // q = [-1, 1]: channel 0 bound = max(-1*1, -1*-3) = 3; channel 1 = 5.
        assert!((meta.score(&[-1.0, 1.0]) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn internal_fragmentation_wastes_budget() {
        // Two important tokens in different pages: with budget 8 and page
        // size 16, Quest selects one full page (16 > 8 trimmed to 8) and the
        // second important token is missed — the Fig. 3b fragmentation.
        let dim = 8;
        let mut rows = vec![vec![0.01f32; dim]; 64];
        rows[3][0] = 10.0; // important token in page 0
        rows[40][0] = 9.0; // important token in page 2
        let mut q = QuestSelector::new(16, dim);
        prefill(&mut q, &Matrix::from_rows(rows).unwrap());
        let mut query = vec![0.0; dim];
        query[0] = 1.0;
        let out = q
            .plan(SelectionRequest::new(&query, 64, Budget::new(8)))
            .indices;
        assert_eq!(out.len(), 8);
        assert!(out.contains(&3));
        assert!(
            !out.contains(&40),
            "with page granularity the second hot token is sacrificed"
        );
    }

    #[test]
    fn budget_covering_context_returns_all() {
        let mut q = QuestSelector::new(4, 8);
        prefill(&mut q, &keys_with_hot_token(6, 8, 1));
        let plan = q.plan(SelectionRequest::new(&[1.0; 8], 6, Budget::new(16)));
        assert_eq!(plan.indices, (0..6).collect::<Vec<_>>());
        assert_eq!(
            plan.stats.scored_vectors, 0,
            "covered context scores nothing"
        );
    }

    #[test]
    fn plan_stats_count_scored_pages_per_call() {
        let mut q = QuestSelector::new(4, 8);
        prefill(&mut q, &keys_with_hot_token(32, 8, 0));
        let first = q.plan(SelectionRequest::new(&[1.0; 8], 32, Budget::new(4)));
        assert_eq!(first.stats.scored_vectors, 8); // 32 tokens / page 4
        let second = q.plan(SelectionRequest::new(&[1.0; 8], 32, Budget::new(4)));
        assert_eq!(
            second.stats.scored_vectors, 8,
            "stats are per call, not cumulative"
        );
    }

    #[test]
    fn plans_page_kv_at_page_granularity() {
        let mut q = QuestSelector::new(4, 8);
        prefill(&mut q, &keys_with_hot_token(20, 8, 9));
        let mut query = vec![0.0; 8];
        query[0] = 1.0;
        let plan = q.plan(SelectionRequest::new(&query, 20, Budget::new(6)));
        let KvResidency::Paged(pages) = &plan.residency else {
            panic!("Quest selections must be paged, got {:?}", plan.residency);
        };
        // Budget 6 with page size 4: one full page plus a trimmed one; the
        // page requests cover exactly the attended prefixes.
        assert_eq!(pages.iter().map(|p| p.tokens).sum::<usize>(), 6);
        assert!(pages.iter().all(|p| p.page < q.num_pages()));
        // The page table advertises every page at its full size.
        let KvResidency::Paged(table) = q.page_table() else {
            panic!("page table must be paged");
        };
        assert_eq!(table.len(), q.num_pages());
        assert_eq!(table.iter().map(|p| p.tokens).sum::<usize>(), 20);
    }

    #[test]
    fn factory_respects_page_size() {
        let f = QuestFactory::new(8);
        assert_eq!(f.name(), "Quest");
        let sel = f.create(HeadContext {
            layer: 0,
            head: 0,
            head_dim: 4,
        });
        assert_eq!(sel.name(), "Quest");
        assert_eq!(QuestFactory::default().page_size, DEFAULT_PAGE_SIZE);
    }
}
