//! InfiniGen: per-token KV recall with low-rank partial keys (Lee et al.,
//! OSDI 2024).
//!
//! InfiniGen makes selection recallable by scoring *every* previous token at
//! every step, but reduces the cost of that scoring by projecting queries and
//! keys into a low-dimensional subspace derived offline with an SVD of the
//! query/key weights. The selection cost still scales linearly with the
//! context length `L`, which is the inefficiency the ClusterKV paper points
//! out (§II-C); it also has to store the partial keys in addition to the
//! originals.
//!
//! In this reproduction the projection is obtained from an SVD of the prefill
//! keys of the head (a faithful stand-in for the offline weight SVD: both
//! yield the dominant key subspace), keeping a configurable fraction of the
//! head dimension.
//!
//! In the tiered serving stack InfiniGen pages KV at **token** granularity
//! (it recalls exactly the selected tokens from CPU memory): plans carry one
//! single-token [`PageRequest`] per selected position, so a bounded GPU
//! cluster cache doubles as its speculative-prefetch buffer — stable top-k
//! sets hit the cache, shifts in attention pay per-token recalls.

use clusterkv_model::policy::{
    HeadContext, KvResidency, ObserveEvent, PageRequest, PolicyStats, SelectionPlan,
    SelectionRequest, SelectorFactory, TokenSelector,
};
use clusterkv_tensor::svd::svd;
use clusterkv_tensor::vector::top_k_indices;
use clusterkv_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Fraction of the head dimension kept by the partial projection
/// (InfiniGen's default partial-weight ratio).
pub const DEFAULT_PARTIAL_RATIO: f64 = 0.25;

/// InfiniGen selection state for one attention head.
#[derive(Debug, Clone)]
pub struct InfiniGenSelector {
    head_dim: usize,
    partial_dims: usize,
    /// Projection matrix (`head_dim × partial_dims`), built at prefill.
    projection: Option<Matrix>,
    /// Partial (projected) keys of every token seen so far.
    partial_keys: Matrix,
    /// Raw keys buffered before the projection exists (pre-prefill appends).
    raw_keys: Matrix,
    /// Prompt keys accumulated across `PrefillChunk` events. The partial
    /// projection comes from an SVD over *all* prompt keys, so chunked
    /// prefill buffers and reconciles on `PrefillDone` — the only strategy
    /// whose projection (and hence every later partial key) is
    /// byte-identical to a monolithic prefill.
    chunk_buffer: Matrix,
}

impl InfiniGenSelector {
    /// Create a selector keeping `ceil(partial_ratio · head_dim)` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `partial_ratio` is not in `(0, 1]`.
    pub fn new(partial_ratio: f64, head_dim: usize) -> Self {
        assert!(
            partial_ratio > 0.0 && partial_ratio <= 1.0,
            "partial_ratio must be in (0, 1]"
        );
        let partial_dims = ((head_dim as f64 * partial_ratio).ceil() as usize).max(1);
        Self {
            head_dim,
            partial_dims,
            projection: None,
            partial_keys: Matrix::zeros(0, partial_dims),
            raw_keys: Matrix::zeros(0, head_dim),
            chunk_buffer: Matrix::zeros(0, head_dim),
        }
    }

    /// Number of dimensions kept by the partial projection.
    pub fn partial_dims(&self) -> usize {
        self.partial_dims
    }

    fn project(&self, v: &[f32]) -> Vec<f32> {
        match &self.projection {
            Some(p) => {
                // v (1×d) · P (d×r) = partial vector (1×r).
                (0..p.cols())
                    .map(|c| (0..p.rows()).map(|r| v[r] * p.get(r, c)).sum())
                    .collect()
            }
            // Before the projection exists, truncate (degenerate fallback).
            None => v.iter().take(self.partial_dims).copied().collect(),
        }
    }

    /// The global prefill pass: derive the partial projection from an SVD of
    /// the full prompt keys, then project and record every prompt key.
    /// Called directly for a monolithic `Prefill` and on `PrefillDone` for
    /// buffered chunks.
    fn prefill_full(&mut self, keys: &Matrix) {
        assert_eq!(keys.cols(), self.head_dim, "key dim mismatch");
        // Build the partial projection from the dominant right-singular
        // vectors of the prefill keys (stand-in for the offline weight SVD).
        if keys.rows() >= 2 {
            if let Ok(decomp) = svd(keys) {
                let truncated = decomp.truncate(self.partial_dims);
                self.projection = Some(truncated.v);
            }
        }
        for i in 0..keys.rows() {
            let partial = self.project(keys.row(i));
            self.partial_keys
                .push_row(&partial)
                .expect("partial dims consistent");
            self.raw_keys
                .push_row(keys.row(i))
                .expect("raw dims consistent");
        }
    }
}

impl TokenSelector for InfiniGenSelector {
    fn name(&self) -> &str {
        "InfiniGen"
    }

    fn observe(&mut self, event: ObserveEvent<'_>) {
        match event {
            ObserveEvent::Prefill { keys } => self.prefill_full(keys),
            ObserveEvent::PrefillChunk { start, keys } => {
                assert_eq!(keys.cols(), self.head_dim, "key dim mismatch");
                debug_assert_eq!(start, self.chunk_buffer.rows(), "chunks must be contiguous");
                for row in keys.iter_rows() {
                    self.chunk_buffer
                        .push_row(row)
                        .expect("chunk key dims consistent");
                }
            }
            ObserveEvent::PrefillDone { total_tokens } => {
                debug_assert_eq!(
                    total_tokens,
                    self.chunk_buffer.rows(),
                    "chunks must cover the prompt"
                );
                let keys =
                    std::mem::replace(&mut self.chunk_buffer, Matrix::zeros(0, self.head_dim));
                self.prefill_full(&keys);
            }
            ObserveEvent::Append { key, .. } => {
                assert_eq!(key.len(), self.head_dim, "key dim mismatch");
                let partial = self.project(key);
                self.partial_keys
                    .push_row(&partial)
                    .expect("partial dims consistent");
                self.raw_keys.push_row(key).expect("raw dims consistent");
            }
        }
    }

    fn plan(&mut self, request: SelectionRequest<'_>) -> SelectionPlan {
        let n = request.num_tokens.min(self.partial_keys.rows());
        if request.budget.covers(n) {
            return SelectionPlan::full(n);
        }
        // Score every token with the partial query/key product — the
        // per-token selection whose O(L) cost the ClusterKV paper criticises.
        let pq = self.project(request.query);
        let scores: Vec<f32> = (0..n)
            .map(|i| clusterkv_tensor::vector::dot(self.partial_keys.row(i), &pq))
            .collect();
        let indices = top_k_indices(&scores, request.budget.tokens());
        // Recall at token granularity: one single-token page per selection.
        let pages = indices.iter().map(|&t| PageRequest::new(t, 1)).collect();
        SelectionPlan::new(indices)
            .with_stats(PolicyStats {
                scored_vectors: n as u64,
                ..PolicyStats::default()
            })
            .with_pages(pages)
    }

    fn page_table(&self) -> KvResidency {
        KvResidency::Paged(
            (0..self.partial_keys.rows())
                .map(|t| PageRequest::new(t, 1))
                .collect(),
        )
    }
}

/// Factory for [`InfiniGenSelector`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct InfiniGenFactory {
    /// Fraction of the head dimension kept by the partial projection.
    pub partial_ratio: f64,
}

impl Default for InfiniGenFactory {
    fn default() -> Self {
        Self {
            partial_ratio: DEFAULT_PARTIAL_RATIO,
        }
    }
}

impl InfiniGenFactory {
    /// Create a factory with a custom partial-weight ratio.
    pub fn new(partial_ratio: f64) -> Self {
        Self { partial_ratio }
    }
}

impl SelectorFactory for InfiniGenFactory {
    fn name(&self) -> &str {
        "InfiniGen"
    }

    fn create(&self, ctx: HeadContext) -> Box<dyn TokenSelector> {
        Box::new(InfiniGenSelector::new(self.partial_ratio, ctx.head_dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterkv_kvcache::types::Budget;
    use clusterkv_tensor::rng::{gaussian_vec, seeded};

    fn prefill(s: &mut InfiniGenSelector, keys: &Matrix) {
        s.observe(ObserveEvent::Prefill { keys });
    }

    fn select(s: &mut InfiniGenSelector, query: &[f32], n: usize, budget: usize) -> Vec<usize> {
        s.plan(SelectionRequest::new(query, n, Budget::new(budget)))
            .indices
    }

    fn random_keys(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        Matrix::from_rows(
            (0..n)
                .map(|_| gaussian_vec(&mut rng, dim, 0.0, 1.0))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn partial_dims_respects_ratio() {
        assert_eq!(InfiniGenSelector::new(0.25, 16).partial_dims(), 4);
        assert_eq!(InfiniGenSelector::new(1.0, 16).partial_dims(), 16);
        assert_eq!(InfiniGenSelector::new(0.01, 16).partial_dims(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_ratio_panics() {
        InfiniGenSelector::new(0.0, 16);
    }

    #[test]
    fn full_ratio_matches_exact_top_k() {
        // With the full head dimension the partial scores equal the exact
        // scores up to an orthonormal change of basis, so top-k must match.
        let keys = random_keys(48, 8, 3);
        let q = gaussian_vec(&mut seeded(4), 8, 0.0, 1.0);
        let mut infinigen = InfiniGenSelector::new(1.0, 8);
        prefill(&mut infinigen, &keys);
        let picked = select(&mut infinigen, &q, 48, 8);

        let exact_scores: Vec<f32> = (0..48)
            .map(|i| clusterkv_tensor::vector::dot(keys.row(i), &q))
            .collect();
        let exact: std::collections::HashSet<usize> =
            top_k_indices(&exact_scores, 8).into_iter().collect();
        let overlap = picked.iter().filter(|t| exact.contains(t)).count();
        assert!(overlap >= 7, "overlap {overlap} of 8");
    }

    #[test]
    fn partial_projection_recovers_most_important_tokens() {
        // Keys living mostly in a low-dimensional subspace: a quarter of the
        // dims is enough to identify the top tokens reasonably well.
        let mut rng = seeded(5);
        let rows: Vec<Vec<f32>> = (0..64)
            .map(|i| {
                let mut v = gaussian_vec(&mut rng, 16, 0.0, 0.05);
                v[0] = (i % 7) as f32; // dominant channel
                v[1] = ((i * 3) % 5) as f32; // second dominant channel
                v
            })
            .collect();
        let keys = Matrix::from_rows(rows).unwrap();
        let mut q = vec![0.0f32; 16];
        q[0] = 1.0;
        q[1] = 0.5;

        let mut infinigen = InfiniGenSelector::new(0.25, 16);
        prefill(&mut infinigen, &keys);
        let picked = select(&mut infinigen, &q, 64, 16);

        let exact_scores: Vec<f32> = (0..64)
            .map(|i| clusterkv_tensor::vector::dot(keys.row(i), &q))
            .collect();
        let exact: std::collections::HashSet<usize> =
            top_k_indices(&exact_scores, 16).into_iter().collect();
        let overlap = picked.iter().filter(|t| exact.contains(t)).count();
        assert!(overlap >= 12, "overlap {overlap} of 16");
    }

    #[test]
    fn selection_cost_scales_with_context_length() {
        let mut infinigen = InfiniGenSelector::new(0.25, 8);
        prefill(&mut infinigen, &random_keys(100, 8, 6));
        let q = gaussian_vec(&mut seeded(7), 8, 0.0, 1.0);
        let first = infinigen.plan(SelectionRequest::new(&q, 100, Budget::new(10)));
        assert_eq!(first.stats.scored_vectors, 100, "O(L) per-call scoring");
        let key = gaussian_vec(&mut seeded(8), 8, 0.0, 1.0);
        infinigen.observe(ObserveEvent::Append {
            position: 100,
            key: &key,
        });
        let second = infinigen.plan(SelectionRequest::new(&q, 101, Budget::new(10)));
        assert_eq!(
            second.stats.scored_vectors, 101,
            "cost grows with the context"
        );
    }

    #[test]
    fn appends_are_recallable() {
        let mut infinigen = InfiniGenSelector::new(0.5, 8);
        prefill(&mut infinigen, &random_keys(32, 8, 9));
        // Append a key that is strongly aligned with the later query.
        let mut hot = vec![0.0f32; 8];
        hot[2] = 10.0;
        infinigen.observe(ObserveEvent::Append {
            position: 32,
            key: &hot,
        });
        let mut q = vec![0.0f32; 8];
        q[2] = 1.0;
        let picked = select(&mut infinigen, &q, 33, 4);
        assert!(
            picked.contains(&32),
            "appended hot token must be recallable"
        );
    }

    #[test]
    fn plans_page_kv_at_token_granularity() {
        let mut infinigen = InfiniGenSelector::new(0.5, 8);
        prefill(&mut infinigen, &random_keys(32, 8, 11));
        let q = gaussian_vec(&mut seeded(12), 8, 0.0, 1.0);
        let plan = infinigen.plan(SelectionRequest::new(&q, 32, Budget::new(6)));
        let KvResidency::Paged(pages) = &plan.residency else {
            panic!(
                "InfiniGen selections must be paged, got {:?}",
                plan.residency
            );
        };
        assert_eq!(pages.len(), plan.indices.len());
        for (page, &token) in pages.iter().zip(&plan.indices) {
            assert_eq!(page.page, token);
            assert_eq!(page.tokens, 1);
        }
        let KvResidency::Paged(table) = infinigen.page_table() else {
            panic!("page table must be paged");
        };
        assert_eq!(table.len(), 32, "one single-token page per token seen");
    }

    #[test]
    fn factory_default_ratio() {
        let f = InfiniGenFactory::default();
        assert!((f.partial_ratio - DEFAULT_PARTIAL_RATIO).abs() < 1e-12);
        assert_eq!(f.name(), "InfiniGen");
        let sel = f.create(HeadContext {
            layer: 0,
            head: 0,
            head_dim: 8,
        });
        assert_eq!(sel.name(), "InfiniGen");
    }
}
