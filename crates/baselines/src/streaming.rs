//! StreamingLLM: attention sinks plus a sliding window (Xiao et al.,
//! ICLR 2024).
//!
//! StreamingLLM keeps the first few tokens (attention sinks) and the most
//! recent tokens, dropping everything in between. It is the simplest
//! fixed-pattern, non-recallable compression scheme (the "fixed patterns"
//! reference [9] of the paper) and serves as a lower bound for selection
//! quality in the recall experiments.

use clusterkv_kvcache::types::Budget;
use clusterkv_model::policy::{HeadContext, PolicyStats, SelectorFactory, TokenSelector};
use clusterkv_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Number of attention-sink tokens retained by default (matches the 16 sink
/// tokens ClusterKV also retains).
pub const DEFAULT_SINK_TOKENS: usize = 16;

/// StreamingLLM selection state for one attention head.
#[derive(Debug, Clone)]
pub struct StreamingSelector {
    sink_tokens: usize,
    num_tokens: usize,
}

impl StreamingSelector {
    /// Create a selector retaining `sink_tokens` initial tokens.
    pub fn new(sink_tokens: usize) -> Self {
        Self {
            sink_tokens,
            num_tokens: 0,
        }
    }
}

impl TokenSelector for StreamingSelector {
    fn name(&self) -> &str {
        "StreamingLLM"
    }

    fn on_prefill(&mut self, keys: &Matrix) {
        self.num_tokens = keys.rows();
    }

    fn on_append(&mut self, position: usize, _key: &[f32]) {
        self.num_tokens = self.num_tokens.max(position + 1);
    }

    fn select(&mut self, _query: &[f32], num_tokens: usize, budget: Budget) -> Vec<usize> {
        let n = num_tokens.min(self.num_tokens.max(num_tokens));
        if budget.covers(n) {
            return (0..n).collect();
        }
        let sinks = self.sink_tokens.min(budget.tokens()).min(n);
        let window = budget.tokens() - sinks;
        let mut selected: Vec<usize> = (0..sinks).collect();
        let window_start = n.saturating_sub(window).max(sinks);
        selected.extend(window_start..n);
        selected
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats::default()
    }
}

/// Factory for [`StreamingSelector`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StreamingFactory {
    /// Number of attention-sink tokens to retain.
    pub sink_tokens: usize,
}

impl Default for StreamingFactory {
    fn default() -> Self {
        Self {
            sink_tokens: DEFAULT_SINK_TOKENS,
        }
    }
}

impl StreamingFactory {
    /// Create a factory with a custom sink count.
    pub fn new(sink_tokens: usize) -> Self {
        Self { sink_tokens }
    }
}

impl SelectorFactory for StreamingFactory {
    fn name(&self) -> &str {
        "StreamingLLM"
    }

    fn create(&self, _ctx: HeadContext) -> Box<dyn TokenSelector> {
        Box::new(StreamingSelector::new(self.sink_tokens))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_sinks_and_recent_window() {
        let mut s = StreamingSelector::new(4);
        s.on_prefill(&Matrix::zeros(100, 8));
        let out = s.select(&[0.0; 8], 100, Budget::new(12));
        assert_eq!(out.len(), 12);
        assert_eq!(&out[..4], &[0, 1, 2, 3]);
        assert_eq!(&out[4..], &(92..100).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn short_context_selects_everything() {
        let mut s = StreamingSelector::new(4);
        s.on_prefill(&Matrix::zeros(6, 8));
        assert_eq!(s.select(&[0.0; 8], 6, Budget::new(16)), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn no_duplicate_indices_when_window_meets_sinks() {
        let mut s = StreamingSelector::new(8);
        s.on_prefill(&Matrix::zeros(10, 4));
        let out = s.select(&[0.0; 4], 10, Budget::new(9));
        let set: std::collections::HashSet<_> = out.iter().collect();
        assert_eq!(set.len(), out.len());
        assert!(out.len() <= 9);
    }

    #[test]
    fn middle_tokens_are_never_selected() {
        let mut s = StreamingSelector::new(4);
        s.on_prefill(&Matrix::zeros(1000, 4));
        s.on_append(1000, &[0.0; 4]);
        let out = s.select(&[0.0; 4], 1001, Budget::new(20));
        assert!(out.iter().all(|&t| t < 4 || t >= 985));
    }

    #[test]
    fn budget_smaller_than_sinks_is_clamped() {
        let mut s = StreamingSelector::new(16);
        s.on_prefill(&Matrix::zeros(100, 4));
        let out = s.select(&[0.0; 4], 100, Budget::new(8));
        assert_eq!(out.len(), 8);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn factory_creates_named_selector() {
        let f = StreamingFactory::default();
        assert_eq!(f.sink_tokens, DEFAULT_SINK_TOKENS);
        let sel = f.create(HeadContext { layer: 0, head: 0, head_dim: 4 });
        assert_eq!(sel.name(), "StreamingLLM");
        assert_eq!(StreamingFactory::new(2).sink_tokens, 2);
    }
}
