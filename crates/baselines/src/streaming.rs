//! StreamingLLM: attention sinks plus a sliding window (Xiao et al.,
//! ICLR 2024).
//!
//! StreamingLLM keeps the first few tokens (attention sinks) and the most
//! recent tokens, dropping everything in between. It is the simplest
//! fixed-pattern, non-recallable compression scheme (the "fixed patterns"
//! reference \[9\] of the paper) and serves as a lower bound for selection
//! quality in the recall experiments.
//!
//! In the tiered serving stack StreamingLLM is **cache-trivially resident**
//! ([`KvResidency::Resident`](clusterkv_model::policy::KvResidency)): its
//! working set only ever gains the token just produced on the GPU and drops
//! tokens permanently, so nothing is ever recalled over PCIe and its plans
//! carry no page requests.

use clusterkv_model::policy::{
    HeadContext, ObserveEvent, SelectionPlan, SelectionRequest, SelectorFactory, TokenSelector,
};
use serde::{Deserialize, Serialize};

/// Number of attention-sink tokens retained by default (matches the 16 sink
/// tokens ClusterKV also retains).
pub const DEFAULT_SINK_TOKENS: usize = 16;

/// StreamingLLM selection state for one attention head.
#[derive(Debug, Clone)]
pub struct StreamingSelector {
    sink_tokens: usize,
    num_tokens: usize,
}

impl StreamingSelector {
    /// Create a selector retaining `sink_tokens` initial tokens.
    pub fn new(sink_tokens: usize) -> Self {
        Self {
            sink_tokens,
            num_tokens: 0,
        }
    }
}

impl TokenSelector for StreamingSelector {
    fn name(&self) -> &str {
        "StreamingLLM"
    }

    fn observe(&mut self, event: ObserveEvent<'_>) {
        match event {
            ObserveEvent::Prefill { keys } => self.num_tokens = keys.rows(),
            ObserveEvent::PrefillChunk { start, keys } => {
                self.num_tokens = self.num_tokens.max(start + keys.rows());
            }
            ObserveEvent::PrefillDone { total_tokens } => {
                debug_assert_eq!(
                    total_tokens, self.num_tokens,
                    "chunks must cover the prompt"
                );
            }
            ObserveEvent::Append { position, .. } => {
                self.num_tokens = self.num_tokens.max(position + 1);
            }
        }
    }

    fn plan(&mut self, request: SelectionRequest<'_>) -> SelectionPlan {
        let n = request
            .num_tokens
            .min(self.num_tokens.max(request.num_tokens));
        if request.budget.covers(n) {
            return SelectionPlan::full(n);
        }
        let budget_tokens = request.budget.tokens();
        let sinks = self.sink_tokens.min(budget_tokens).min(n);
        let window = budget_tokens - sinks;
        let mut selected: Vec<usize> = (0..sinks).collect();
        let window_start = n.saturating_sub(window).max(sinks);
        selected.extend(window_start..n);
        SelectionPlan::new(selected)
    }
}

/// Factory for [`StreamingSelector`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StreamingFactory {
    /// Number of attention-sink tokens to retain.
    pub sink_tokens: usize,
}

impl Default for StreamingFactory {
    fn default() -> Self {
        Self {
            sink_tokens: DEFAULT_SINK_TOKENS,
        }
    }
}

impl StreamingFactory {
    /// Create a factory with a custom sink count.
    pub fn new(sink_tokens: usize) -> Self {
        Self { sink_tokens }
    }
}

impl SelectorFactory for StreamingFactory {
    fn name(&self) -> &str {
        "StreamingLLM"
    }

    fn create(&self, _ctx: HeadContext) -> Box<dyn TokenSelector> {
        Box::new(StreamingSelector::new(self.sink_tokens))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterkv_kvcache::types::Budget;
    use clusterkv_tensor::Matrix;

    fn prefill(s: &mut StreamingSelector, keys: &Matrix) {
        s.observe(ObserveEvent::Prefill { keys });
    }

    fn select(s: &mut StreamingSelector, n: usize, budget: usize) -> Vec<usize> {
        s.plan(SelectionRequest::new(&[0.0; 8], n, Budget::new(budget)))
            .indices
    }

    #[test]
    fn selects_sinks_and_recent_window() {
        let mut s = StreamingSelector::new(4);
        prefill(&mut s, &Matrix::zeros(100, 8));
        let out = select(&mut s, 100, 12);
        assert_eq!(out.len(), 12);
        assert_eq!(&out[..4], &[0, 1, 2, 3]);
        assert_eq!(&out[4..], &(92..100).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn short_context_selects_everything() {
        let mut s = StreamingSelector::new(4);
        prefill(&mut s, &Matrix::zeros(6, 8));
        assert_eq!(select(&mut s, 6, 16), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn no_duplicate_indices_when_window_meets_sinks() {
        let mut s = StreamingSelector::new(8);
        prefill(&mut s, &Matrix::zeros(10, 4));
        let out = select(&mut s, 10, 9);
        let set: std::collections::HashSet<_> = out.iter().collect();
        assert_eq!(set.len(), out.len());
        assert!(out.len() <= 9);
    }

    #[test]
    fn middle_tokens_are_never_selected() {
        let mut s = StreamingSelector::new(4);
        prefill(&mut s, &Matrix::zeros(1000, 4));
        s.observe(ObserveEvent::Append {
            position: 1000,
            key: &[0.0; 4],
        });
        let out = select(&mut s, 1001, 20);
        assert!(out.iter().all(|&t| !(4..985).contains(&t)));
    }

    #[test]
    fn budget_smaller_than_sinks_is_clamped() {
        let mut s = StreamingSelector::new(16);
        prefill(&mut s, &Matrix::zeros(100, 4));
        let out = select(&mut s, 100, 8);
        assert_eq!(out.len(), 8);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn plans_are_trivially_resident() {
        use clusterkv_model::policy::KvResidency;
        let mut s = StreamingSelector::new(4);
        prefill(&mut s, &Matrix::zeros(100, 8));
        let plan = s.plan(SelectionRequest::new(&[0.0; 8], 100, Budget::new(12)));
        assert_eq!(plan.residency, KvResidency::Resident);
        assert_eq!(s.page_table(), KvResidency::Resident);
        assert_eq!(plan.stats.transfer.transfers, 0);
    }

    #[test]
    fn factory_creates_named_selector() {
        let f = StreamingFactory::default();
        assert_eq!(f.sink_tokens, DEFAULT_SINK_TOKENS);
        let sel = f.create(HeadContext {
            layer: 0,
            head: 0,
            head_dim: 4,
        });
        assert_eq!(sel.name(), "StreamingLLM");
        assert_eq!(StreamingFactory::new(2).sink_tokens, 2);
    }
}
