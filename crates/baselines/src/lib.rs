//! Baseline KV-cache compression policies the paper compares against.
//!
//! Each baseline implements the same [`TokenSelector`](clusterkv_model::TokenSelector)
//! interface as ClusterKV so experiments can swap methods with a single
//! factory argument:
//!
//! * [`quest`] — Quest (ICML'24): recallable selection at the granularity of
//!   fixed-size *pages* of consecutive tokens, scored with per-channel
//!   min/max key metadata.
//! * [`infinigen`] — InfiniGen (OSDI'24): recallable per-token selection
//!   using low-rank (SVD-derived) partial queries and keys.
//! * [`h2o`] — H2O (NeurIPS'23): non-recallable eviction keeping "heavy
//!   hitter" tokens with the largest accumulated attention weights.
//! * [`streaming`] — StreamingLLM (ICLR'24): attention sinks plus a sliding
//!   window of recent tokens (non-recallable, position-based).
//!
//! The [`BaselineKind`] enum provides a uniform way for the benchmark
//! harness to enumerate methods.

#![warn(missing_docs)]

pub mod h2o;
pub mod infinigen;
pub mod quest;
pub mod streaming;

pub use h2o::{H2oFactory, H2oSelector};
pub use infinigen::{InfiniGenFactory, InfiniGenSelector};
pub use quest::{QuestFactory, QuestSelector};
pub use streaming::{StreamingFactory, StreamingSelector};

use clusterkv_model::policy::SelectorFactory;
use serde::{Deserialize, Serialize};

/// The comparison methods of the paper's evaluation, including the trivial
/// full-KV configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaselineKind {
    /// Exact attention over the full KV cache (upper bound).
    FullKv,
    /// Quest page-granular selection.
    Quest,
    /// InfiniGen partial-weight per-token selection.
    InfiniGen,
    /// H2O heavy-hitter eviction (non-recallable).
    H2o,
    /// StreamingLLM sinks + sliding window (non-recallable).
    StreamingLlm,
}

impl BaselineKind {
    /// All baselines, in the order used in experiment tables.
    pub fn all() -> [BaselineKind; 5] {
        [
            BaselineKind::Quest,
            BaselineKind::InfiniGen,
            BaselineKind::H2o,
            BaselineKind::StreamingLlm,
            BaselineKind::FullKv,
        ]
    }

    /// Build the selector factory for this baseline with its default
    /// configuration.
    pub fn factory(self) -> Box<dyn SelectorFactory> {
        match self {
            BaselineKind::FullKv => Box::new(clusterkv_model::policy::FullAttentionFactory),
            BaselineKind::Quest => Box::new(QuestFactory::default()),
            BaselineKind::InfiniGen => Box::new(InfiniGenFactory::default()),
            BaselineKind::H2o => Box::new(H2oFactory::default()),
            BaselineKind::StreamingLlm => Box::new(StreamingFactory::default()),
        }
    }

    /// Method name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::FullKv => "Full KV",
            BaselineKind::Quest => "Quest",
            BaselineKind::InfiniGen => "InfiniGen",
            BaselineKind::H2o => "H2O",
            BaselineKind::StreamingLlm => "StreamingLLM",
        }
    }
}

impl std::fmt::Display for BaselineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterkv_kvcache::types::Budget;
    use clusterkv_model::policy::{HeadContext, ObserveEvent, SelectionRequest};
    use clusterkv_tensor::rng::{gaussian_vec, seeded};
    use clusterkv_tensor::Matrix;

    #[test]
    fn every_baseline_produces_a_working_selector() {
        let ctx = HeadContext {
            layer: 2,
            head: 1,
            head_dim: 16,
        };
        let mut rng = seeded(1);
        let keys = Matrix::from_rows(
            (0..64)
                .map(|_| gaussian_vec(&mut rng, 16, 0.0, 1.0))
                .collect(),
        )
        .unwrap();
        let q = gaussian_vec(&mut rng, 16, 0.0, 1.0);
        for kind in BaselineKind::all() {
            let factory = kind.factory();
            let mut sel = factory.create(ctx);
            sel.observe(ObserveEvent::Prefill { keys: &keys });
            let key = gaussian_vec(&mut rng, 16, 0.0, 1.0);
            sel.observe(ObserveEvent::Append {
                position: 64,
                key: &key,
            });
            let plan = sel.plan(SelectionRequest::new(&q, 65, Budget::new(16)));
            let out = &plan.indices;
            assert!(!out.is_empty(), "{kind} selected nothing");
            assert!(out.iter().all(|&t| t < 65), "{kind} selected out of range");
            if kind != BaselineKind::FullKv {
                assert!(out.len() <= 16, "{kind} exceeded the budget: {}", out.len());
            }
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(BaselineKind::Quest.to_string(), "Quest");
        assert_eq!(BaselineKind::FullKv.to_string(), "Full KV");
        assert_eq!(BaselineKind::all().len(), 5);
    }
}
