//! H2O: heavy-hitter-oracle eviction (Zhang et al., NeurIPS 2023).
//!
//! H2O keeps a fixed-size cache containing the most recent tokens plus the
//! "heavy hitters" — tokens whose *accumulated* attention weights are
//! largest. Tokens evicted from this cache are gone for good: H2O is the
//! canonical **non-recallable** compression method of Fig. 1b, and its
//! inability to bring back tokens whose importance rises later is exactly the
//! behaviour ClusterKV's motivation study (Fig. 3a) targets.
//!
//! In the tiered serving stack H2O is **cache-trivially resident**
//! ([`KvResidency::Resident`](clusterkv_model::policy::KvResidency)): the
//! retained set only shrinks by permanent eviction and grows by the token
//! just produced on the GPU, so nothing is ever recalled over PCIe and its
//! plans carry no page requests.

use clusterkv_model::policy::{
    HeadContext, ObserveEvent, PolicyStats, SelectionPlan, SelectionRequest, SelectorFactory,
    TokenSelector,
};
use clusterkv_tensor::ops::attention_weights;
use serde::{Deserialize, Serialize};

/// Fraction of the budget reserved for the most recent tokens (the rest goes
/// to heavy hitters). H2O uses an even split by default.
pub const DEFAULT_RECENT_FRACTION: f64 = 0.5;

/// A token retained by H2O, with its key and accumulated attention score.
#[derive(Debug, Clone)]
struct Retained {
    position: usize,
    key: Vec<f32>,
    accumulated: f32,
}

/// H2O selection state for one attention head.
#[derive(Debug, Clone)]
pub struct H2oSelector {
    head_dim: usize,
    recent_fraction: f64,
    retained: Vec<Retained>,
}

impl H2oSelector {
    /// Create an H2O selector.
    ///
    /// # Panics
    ///
    /// Panics if `recent_fraction` is not in `[0, 1]`.
    pub fn new(recent_fraction: f64, head_dim: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&recent_fraction),
            "recent_fraction must be in [0, 1]"
        );
        Self {
            head_dim,
            recent_fraction,
            retained: Vec::new(),
        }
    }

    /// Positions currently retained (for tests / analysis).
    pub fn retained_positions(&self) -> Vec<usize> {
        self.retained.iter().map(|r| r.position).collect()
    }

    /// Evict down to `budget` tokens: keep the most recent
    /// `recent_fraction · budget` tokens unconditionally, fill the rest with
    /// the largest accumulated scores. Evicted tokens are dropped permanently.
    fn evict_to(&mut self, budget: usize) {
        if self.retained.len() <= budget {
            return;
        }
        let recent_quota = ((budget as f64 * self.recent_fraction).round() as usize).min(budget);
        let heavy_quota = budget - recent_quota;

        // Most recent tokens (positions are strictly increasing).
        self.retained.sort_by_key(|r| r.position);
        let recent_cutoff = self.retained.len() - recent_quota;
        let recent: Vec<Retained> = self.retained.split_off(recent_cutoff);

        // Heavy hitters among the remainder, under a total order: NaN
        // scores rank strictly last (never as heavy hitters) and ties break
        // toward the earlier position, matching the position-sorted input.
        self.retained.sort_by(
            |a, b| match (a.accumulated.is_nan(), b.accumulated.is_nan()) {
                (false, false) => b
                    .accumulated
                    .total_cmp(&a.accumulated)
                    .then(a.position.cmp(&b.position)),
                (true, true) => a.position.cmp(&b.position),
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
            },
        );
        self.retained.truncate(heavy_quota);
        self.retained.extend(recent);
        self.retained.sort_by_key(|r| r.position);
    }
}

impl TokenSelector for H2oSelector {
    fn name(&self) -> &str {
        "H2O"
    }

    fn observe(&mut self, event: ObserveEvent<'_>) {
        match event {
            ObserveEvent::Prefill { keys } => {
                assert_eq!(keys.cols(), self.head_dim, "key dim mismatch");
                for i in 0..keys.rows() {
                    self.retained.push(Retained {
                        position: i,
                        key: keys.row(i).to_vec(),
                        accumulated: 0.0,
                    });
                }
            }
            // Retention is per token with zero initial score, so chunked
            // prefill appends incrementally (positions offset by the chunk
            // start) and needs no reconcile.
            ObserveEvent::PrefillChunk { start, keys } => {
                assert_eq!(keys.cols(), self.head_dim, "key dim mismatch");
                for i in 0..keys.rows() {
                    self.retained.push(Retained {
                        position: start + i,
                        key: keys.row(i).to_vec(),
                        accumulated: 0.0,
                    });
                }
            }
            ObserveEvent::PrefillDone { total_tokens } => {
                debug_assert_eq!(
                    total_tokens,
                    self.retained.len(),
                    "chunks must cover the prompt"
                );
            }
            ObserveEvent::Append { position, key } => {
                assert_eq!(key.len(), self.head_dim, "key dim mismatch");
                self.retained.push(Retained {
                    position,
                    key: key.to_vec(),
                    accumulated: 0.0,
                });
            }
        }
    }

    fn plan(&mut self, request: SelectionRequest<'_>) -> SelectionPlan {
        // Accumulate attention weights over the *retained* tokens only (the
        // defining approximation of non-recallable methods: evicted tokens
        // are never re-scored).
        let weights = attention_weights(
            request.query,
            self.retained.iter().map(|r| r.key.as_slice()),
        );
        let scored = self.retained.len() as u64;
        for (r, w) in self.retained.iter_mut().zip(&weights) {
            r.accumulated += w;
        }
        self.evict_to(request.budget.tokens());
        let indices = self
            .retained
            .iter()
            .map(|r| r.position)
            .filter(|&p| p < request.num_tokens)
            .collect();
        SelectionPlan::new(indices).with_stats(PolicyStats {
            scored_vectors: scored,
            ..PolicyStats::default()
        })
    }
}

/// Factory for [`H2oSelector`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct H2oFactory {
    /// Fraction of the budget reserved for recent tokens.
    pub recent_fraction: f64,
}

impl Default for H2oFactory {
    fn default() -> Self {
        Self {
            recent_fraction: DEFAULT_RECENT_FRACTION,
        }
    }
}

impl H2oFactory {
    /// Create a factory with a custom recent-token fraction.
    pub fn new(recent_fraction: f64) -> Self {
        Self { recent_fraction }
    }
}

impl SelectorFactory for H2oFactory {
    fn name(&self) -> &str {
        "H2O"
    }

    fn create(&self, ctx: HeadContext) -> Box<dyn TokenSelector> {
        Box::new(H2oSelector::new(self.recent_fraction, ctx.head_dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterkv_kvcache::types::Budget;
    use clusterkv_tensor::Matrix;

    fn prefill(h: &mut dyn TokenSelector, keys: &Matrix) {
        h.observe(ObserveEvent::Prefill { keys });
    }

    fn select(h: &mut dyn TokenSelector, query: &[f32], n: usize, budget: usize) -> Vec<usize> {
        h.plan(SelectionRequest::new(query, n, Budget::new(budget)))
            .indices
    }

    fn uniform_keys(n: usize, dim: usize) -> Matrix {
        Matrix::from_rows((0..n).map(|i| vec![0.01 * (i % 3) as f32; dim]).collect()).unwrap()
    }

    #[test]
    fn selection_respects_budget() {
        let mut h = H2oSelector::new(0.5, 8);
        prefill(&mut h, &uniform_keys(64, 8));
        let out = select(&mut h, &[0.1; 8], 64, 16);
        assert_eq!(out.len(), 16);
        assert!(out.iter().all(|&t| t < 64));
    }

    #[test]
    fn heavy_hitter_is_kept() {
        let dim = 8;
        let mut rows = vec![vec![0.01f32; dim]; 40];
        rows[5][0] = 8.0; // token 5 gets huge attention for q = e0
        let mut h = H2oSelector::new(0.25, dim);
        prefill(&mut h, &Matrix::from_rows(rows).unwrap());
        let mut q = vec![0.0f32; dim];
        q[0] = 1.0;
        let out = select(&mut h, &q, 40, 8);
        assert!(out.contains(&5), "heavy hitter must survive eviction");
    }

    #[test]
    fn recent_tokens_are_kept() {
        let mut h = H2oSelector::new(0.5, 4);
        prefill(&mut h, &uniform_keys(32, 4));
        let out = select(&mut h, &[0.1; 4], 32, 8);
        // Half the budget goes to the most recent tokens 28..32.
        for t in 28..32 {
            assert!(out.contains(&t), "recent token {t} missing: {out:?}");
        }
    }

    #[test]
    fn eviction_is_permanent_not_recallable() {
        // A token that looks unimportant at the first step but would be very
        // important for a later query stays evicted — the failure mode that
        // motivates recallable compression (Fig. 3a).
        let dim = 4;
        let mut rows = vec![vec![0.01f32; dim]; 40];
        rows[2][1] = 9.0; // only important for a q along e1
        for row in rows.iter_mut().take(20).skip(10) {
            row[0] = 2.0; // clearly important for the first query (along e0)
        }
        let mut h = H2oSelector::new(0.5, dim);
        prefill(&mut h, &Matrix::from_rows(rows).unwrap());

        // First query along e0: token 2 looks unimportant and gets evicted.
        let mut q0 = vec![0.0f32; dim];
        q0[0] = 1.0;
        let first = select(&mut h, &q0, 40, 8);
        assert!(!first.contains(&2));

        // Later query along e1: token 2 would now be the most important, but
        // H2O can no longer recall it.
        let mut q1 = vec![0.0f32; dim];
        q1[1] = 1.0;
        let second = select(&mut h, &q1, 40, 8);
        assert!(
            !second.contains(&2),
            "H2O must not be able to recall the evicted token"
        );
    }

    #[test]
    fn appended_tokens_enter_the_cache() {
        let mut h = H2oSelector::new(0.5, 4);
        prefill(&mut h, &uniform_keys(16, 4));
        h.observe(ObserveEvent::Append {
            position: 16,
            key: &[5.0, 0.0, 0.0, 0.0],
        });
        let out = select(&mut h, &[1.0, 0.0, 0.0, 0.0], 17, 6);
        assert!(out.contains(&16));
        assert!(out.len() <= 6);
    }

    #[test]
    fn small_context_is_left_alone() {
        let mut h = H2oSelector::new(0.5, 4);
        prefill(&mut h, &uniform_keys(4, 4));
        let out = select(&mut h, &[0.1; 4], 4, 16);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn factory_and_plan_stats() {
        let f = H2oFactory::default();
        assert_eq!(f.name(), "H2O");
        let mut sel = f.create(HeadContext {
            layer: 0,
            head: 0,
            head_dim: 4,
        });
        prefill(sel.as_mut(), &uniform_keys(8, 4));
        let plan = sel.plan(SelectionRequest::new(&[0.1; 4], 8, Budget::new(4)));
        assert!(plan.stats.scored_vectors >= 8);
    }

    #[test]
    #[should_panic]
    fn invalid_recent_fraction_panics() {
        H2oSelector::new(1.5, 4);
    }

    #[test]
    fn nan_scores_rank_last_and_never_displace_heavy_hitters() {
        // A NaN query poisons every accumulated score with NaN except where
        // the key dot product is driven by a non-NaN lane. Construct the NaN
        // directly instead: poison two accumulated scores and check that
        // eviction (a) does not panic, (b) keeps the genuine heavy hitter,
        // and (c) drops the NaN-scored tokens first.
        let dim = 4;
        let mut h = H2oSelector::new(0.0, dim); // all budget to heavy hitters
        prefill(&mut h, &uniform_keys(12, dim));
        for r in h.retained.iter_mut() {
            r.accumulated = r.position as f32;
        }
        h.retained[3].accumulated = f32::NAN;
        h.retained[7].accumulated = f32::NAN;
        h.evict_to(6);
        let kept = h.retained_positions();
        assert_eq!(kept, vec![5, 6, 8, 9, 10, 11], "largest non-NaN scores win");
        assert!(!kept.contains(&3) && !kept.contains(&7), "NaN ranks last");
        let mut h2 = H2oSelector::new(0.0, dim);
        prefill(&mut h2, &uniform_keys(4, dim));
        for r in h2.retained.iter_mut() {
            r.accumulated = f32::NAN;
        }
        h2.evict_to(2);
        assert_eq!(
            h2.retained_positions(),
            vec![0, 1],
            "all-NaN ties break by position, deterministically"
        );
    }

    #[test]
    fn plans_are_trivially_resident() {
        use clusterkv_model::policy::KvResidency;
        let mut h = H2oSelector::new(0.5, 8);
        prefill(&mut h, &uniform_keys(64, 8));
        let plan = h.plan(SelectionRequest::new(&[0.1; 8], 64, Budget::new(16)));
        assert_eq!(plan.residency, KvResidency::Resident);
        assert_eq!(h.page_table(), KvResidency::Resident);
        assert_eq!(plan.stats.transfer.transfers, 0);
    }
}
