//! Seeded random generation helpers.
//!
//! Every experiment in the workspace must be reproducible, so all random
//! tensors (synthetic model weights, synthetic key/query geometry, workload
//! content) are drawn through these helpers from an explicitly seeded
//! [`rand::rngs::StdRng`].

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Create a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// let mut a = clusterkv_tensor::rng::seeded(42);
/// let mut b = clusterkv_tensor::rng::seeded(42);
/// use rand::Rng;
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream label.
///
/// Used to give each layer/head/experiment its own independent stream while
/// keeping a single top-level seed. The mixing follows splitmix64 so nearby
/// labels produce uncorrelated streams.
pub fn derive_seed(parent: u64, label: u64) -> u64 {
    let mut z = parent ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sample a vector of i.i.d. Gaussian values.
///
/// # Panics
///
/// Panics if `std` is negative or not finite.
pub fn gaussian_vec(rng: &mut StdRng, len: usize, mean: f32, std: f32) -> Vec<f32> {
    let normal = Normal::new(mean, std).expect("invalid gaussian parameters");
    (0..len).map(|_| normal.sample(rng)).collect()
}

/// Sample a matrix of i.i.d. Gaussian values.
pub fn gaussian_matrix(rng: &mut StdRng, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
    let normal = Normal::new(mean, std).expect("invalid gaussian parameters");
    let data = (0..rows * cols).map(|_| normal.sample(rng)).collect();
    Matrix::from_flat(rows, cols, data).expect("gaussian_matrix produced correct size")
}

/// Sample a matrix with Xavier/Glorot-style scaling (`std = sqrt(2/(in+out))`),
/// the initialisation used for the synthetic transformer weights.
pub fn xavier_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let std = (2.0 / (rows + cols) as f32).sqrt();
    gaussian_matrix(rng, rows, cols, 0.0, std)
}

/// Sample `count` distinct indices from `0..n` (reservoir-style).
///
/// Used for k-means++-free random centroid initialisation as in the paper
/// ("we first randomly sample key vectors as the initial centroids").
///
/// # Panics
///
/// Panics if `count > n`.
pub fn sample_distinct_indices(rng: &mut StdRng, n: usize, count: usize) -> Vec<usize> {
    assert!(
        count <= n,
        "cannot sample {count} distinct indices from {n}"
    );
    // Partial Fisher-Yates over an index vector.
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..count {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(count);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = gaussian_vec(&mut seeded(7), 16, 0.0, 1.0);
        let b = gaussian_vec(&mut seeded(7), 16, 0.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = gaussian_vec(&mut seeded(7), 16, 0.0, 1.0);
        let b = gaussian_vec(&mut seeded(8), 16, 0.0, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn derive_seed_changes_with_label() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_eq!(derive_seed(1, 5), derive_seed(1, 5));
    }

    #[test]
    fn gaussian_matrix_has_expected_shape_and_rough_moments() {
        let m = gaussian_matrix(&mut seeded(3), 64, 64, 0.0, 1.0);
        assert_eq!(m.shape(), (64, 64));
        let mean: f32 = m.as_slice().iter().sum::<f32>() / (64.0 * 64.0);
        assert!(mean.abs() < 0.1, "sample mean {mean} too far from 0");
        let var: f32 = m.as_slice().iter().map(|x| x * x).sum::<f32>() / (64.0 * 64.0);
        assert!(
            (var - 1.0).abs() < 0.2,
            "sample variance {var} too far from 1"
        );
    }

    #[test]
    fn xavier_matrix_scales_down_with_size() {
        let small = xavier_matrix(&mut seeded(1), 4, 4);
        let large = xavier_matrix(&mut seeded(1), 256, 256);
        let var = |m: &Matrix| {
            m.as_slice().iter().map(|x| x * x).sum::<f32>() / m.as_slice().len() as f32
        };
        assert!(var(&small) > var(&large));
    }

    #[test]
    fn sample_distinct_indices_are_distinct_and_in_range() {
        let idx = sample_distinct_indices(&mut seeded(11), 100, 20);
        assert_eq!(idx.len(), 20);
        let set: HashSet<_> = idx.iter().collect();
        assert_eq!(set.len(), 20);
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_all_indices_is_a_permutation() {
        let idx = sample_distinct_indices(&mut seeded(2), 10, 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn sampling_more_than_population_panics() {
        sample_distinct_indices(&mut seeded(0), 3, 4);
    }
}
