//! Numerical operations used by the transformer simulator: softmax,
//! RMS normalisation and activation functions.

/// Numerically stable softmax over a slice, in place.
///
/// An empty slice is a no-op. All-`-inf` inputs produce a uniform
/// distribution to avoid NaN propagation.
///
/// # Examples
///
/// ```
/// use clusterkv_tensor::ops::softmax_in_place;
/// let mut v = vec![1.0_f32, 2.0, 3.0];
/// softmax_in_place(&mut v);
/// assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// assert!(v[2] > v[1] && v[1] > v[0]);
/// ```
pub fn softmax_in_place(v: &mut [f32]) {
    if v.is_empty() {
        return;
    }
    let max = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        let uniform = 1.0 / v.len() as f32;
        v.iter_mut().for_each(|x| *x = uniform);
        return;
    }
    let mut sum = 0.0f32;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

/// Softmax returning a new vector; see [`softmax_in_place`].
pub fn softmax(v: &[f32]) -> Vec<f32> {
    let mut out = v.to_vec();
    softmax_in_place(&mut out);
    out
}

/// Scaled-dot-product attention weights: `softmax(q·Kᵀ / sqrt(d))`.
///
/// `keys` is an iterator of key vectors; `q.len()` must equal every key's
/// length. The scale is `1/sqrt(q.len())` as in the paper's formulation.
pub fn attention_weights<'a, I>(q: &[f32], keys: I) -> Vec<f32>
where
    I: IntoIterator<Item = &'a [f32]>,
{
    let scale = 1.0 / (q.len() as f32).sqrt();
    let mut logits: Vec<f32> = keys
        .into_iter()
        .map(|k| crate::vector::dot(q, k) * scale)
        .collect();
    softmax_in_place(&mut logits);
    logits
}

/// RMS normalisation (`x / rms(x) * weight`), the normalisation used by
/// Llama-family models.
///
/// # Panics
///
/// Panics if `x.len() != weight.len()`.
pub fn rms_norm(x: &[f32], weight: &[f32], eps: f32) -> Vec<f32> {
    assert_eq!(x.len(), weight.len(), "rms_norm: length mismatch");
    let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len().max(1) as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    x.iter().zip(weight).map(|(v, w)| v * inv * w).collect()
}

/// SiLU (sigmoid-weighted linear unit) activation, `x * sigmoid(x)`.
#[inline]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// GELU activation (tanh approximation).
#[inline]
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + ((0.797_884_6) * (x + 0.044_715 * x * x * x)).tanh())
}

/// Element-wise SiLU over a slice, in place.
pub fn silu_in_place(v: &mut [f32]) {
    for x in v.iter_mut() {
        *x = silu(*x);
    }
}

/// Weighted sum of value vectors: `Σ w_i · v_i`.
///
/// Used to compute the attention output `softmax(qKᵀ/√d)·V` once the weights
/// have been computed. Returns a zero vector of length `dim` when there are
/// no values.
///
/// # Panics
///
/// Panics if a value vector's length differs from `dim` or the number of
/// weights differs from the number of values.
pub fn weighted_sum<'a, I>(weights: &[f32], values: I, dim: usize) -> Vec<f32>
where
    I: IntoIterator<Item = &'a [f32]>,
{
    let mut out = vec![0.0f32; dim];
    let mut n = 0usize;
    for (w, v) in weights.iter().zip(values) {
        assert_eq!(v.len(), dim, "weighted_sum: value dim mismatch");
        crate::vector::axpy(&mut out, *w, v);
        n += 1;
    }
    assert_eq!(
        n,
        weights.len(),
        "weighted_sum: weight/value count mismatch"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_sums_to_one() {
        let v = softmax(&[0.5, -1.0, 3.0, 2.0]);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_of_empty_is_empty() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_of_all_neg_infinity_is_uniform() {
        let v = softmax(&[f32::NEG_INFINITY, f32::NEG_INFINITY]);
        assert_eq!(v, vec![0.5, 0.5]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn attention_weights_prefer_aligned_key() {
        let q = [1.0, 0.0];
        let keys: Vec<Vec<f32>> = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, 0.0]];
        let w = attention_weights(&q, keys.iter().map(|k| k.as_slice()));
        assert_eq!(w.len(), 3);
        assert!(w[0] > w[1] && w[1] > w[2]);
    }

    #[test]
    fn rms_norm_unit_weight_has_unit_rms() {
        let x = vec![1.0f32, 2.0, 3.0, 4.0];
        let w = vec![1.0f32; 4];
        let y = rms_norm(&x, &w, 1e-6);
        let rms = (y.iter().map(|v| v * v).sum::<f32>() / 4.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-3);
    }

    #[test]
    fn silu_and_gelu_are_monotone_near_zero() {
        assert!(silu(1.0) > silu(0.0));
        assert!(gelu(1.0) > gelu(0.0));
        assert!(silu(0.0).abs() < 1e-6);
        assert!(gelu(0.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_sum_known_value() {
        let values: Vec<Vec<f32>> = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let out = weighted_sum(&[0.25, 0.75], values.iter().map(|v| v.as_slice()), 2);
        assert_eq!(out, vec![0.25, 0.75]);
    }

    #[test]
    fn weighted_sum_of_nothing_is_zero() {
        let out = weighted_sum(&[], std::iter::empty::<&[f32]>(), 3);
        assert_eq!(out, vec![0.0, 0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn softmax_outputs_are_probabilities(v in proptest::collection::vec(-20.0f32..20.0, 1..64)) {
            let s = softmax(&v);
            let sum: f32 = s.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for x in s {
                prop_assert!((0.0..=1.0 + 1e-6).contains(&x));
            }
        }

        #[test]
        fn softmax_preserves_ordering(v in proptest::collection::vec(-20.0f32..20.0, 2..32)) {
            let s = softmax(&v);
            for i in 0..v.len() {
                for j in 0..v.len() {
                    if v[i] > v[j] {
                        prop_assert!(s[i] >= s[j] - 1e-6);
                    }
                }
            }
        }

        #[test]
        fn attention_weights_sum_to_one(
            q in proptest::collection::vec(-3.0f32..3.0, 4),
            keys in proptest::collection::vec(proptest::collection::vec(-3.0f32..3.0, 4), 1..16),
        ) {
            let w = attention_weights(&q, keys.iter().map(|k| k.as_slice()));
            prop_assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }
}
