//! Blocked, zero-allocation kernels for the decode hot path.
//!
//! The scalar helpers in [`vector`](crate::vector) walk one row at a time and
//! return freshly allocated `Vec`s — fine for experiments, too slow for the
//! serving hot loop, where every decode step scores centroids, ranks them,
//! gathers the selected KV and reduces it. This module provides the same
//! operations as *blocked* kernels that
//!
//! 1. write into caller-owned buffers (a [`Workspace`]), so steady-state
//!    decode performs no heap allocation in the attention/selection loop, and
//! 2. break the floating-point dependency chain of the naive dot product
//!    with [`LANES`] independent accumulators, which lets the compiler
//!    autovectorize the inner loop (one `f32` FMA chain per cycle becomes a
//!    full SIMD register per cycle).
//!
//! # Numerics contract
//!
//! Every kernel computes each output element with a **canonical per-row
//! arithmetic order** that depends only on the row's data and the operand
//! vector — never on which rows share a block, which chunk of a parallel
//! split the row landed in, or whether the row was addressed contiguously or
//! through a gather index. Consequences the rest of the workspace relies on:
//!
//! * gathering rows `[0, 1, …, n-1]` is bit-identical to the contiguous
//!   no-index path (`attend_full` == `attend_selected` over all indices);
//! * chunked parallel sweeps are bit-identical at every thread count
//!   (DESIGN.md §4);
//! * results *differ* from the scalar `*_reference` kernels (a different —
//!   but fixed — summation order), which is why the references are kept:
//!   property tests pin `blocked == reference` within `1e-5` relative error
//!   (see `blocked_matches_reference_*` below and DESIGN.md §6).

use crate::matrix::Matrix;
use crate::ops::softmax_in_place;

/// Independent accumulator lanes of the blocked dot product. Eight `f32`
/// lanes fill two SSE / one AVX register and break the add chain enough for
/// the compiler to keep one FMA port busy.
pub const LANES: usize = 8;

/// Reusable scratch buffers for the decode hot path.
///
/// One `Workspace` belongs to one *worker*: a serving session owns one per
/// attention head (heads run data-parallel), each `ClusterKV` selector owns
/// one for its k-means sweeps and centroid scoring, and benches own one per
/// measurement loop. Buffers only ever grow — after a warm-up step their
/// capacity covers the steady state and the kernels below stop allocating
/// (asserted by the counting-allocator test `tests/zero_alloc.rs` at the
/// workspace root — it also drives the kvcache/model layers, so it cannot
/// live inside this crate).
///
/// Fields are plain public buffers rather than an opaque arena so callers
/// can split disjoint `&mut` borrows (e.g. score into `scores` while the
/// ranking lives in `idx`).
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Selection scores / attention logits (one per scored row).
    pub scores: Vec<f32>,
    /// Attention weights (post-softmax logits).
    pub weights: Vec<f32>,
    /// Dense output vector (attention output, projection result).
    pub out: Vec<f32>,
    /// Projected query of the current step.
    pub q: Vec<f32>,
    /// Cached squared row norms (`‖x‖²`).
    pub row_norms: Vec<f32>,
    /// Cached squared centroid norms (`‖c‖²`) or their square roots.
    pub centroid_norms: Vec<f32>,
    /// Index scratch (rankings, orderings).
    pub idx: Vec<usize>,
    /// Label scratch for assignment sweeps.
    pub labels: Vec<usize>,
}

impl Workspace {
    /// A fresh workspace with no capacity (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total heap capacity currently held by the workspace, in bytes. Stable
    /// across steady-state decode steps — the workspace-reuse tests watch
    /// this to pin the "no allocation in the hot loop" property.
    pub fn allocated_bytes(&self) -> usize {
        std::mem::size_of::<f32>()
            * (self.scores.capacity()
                + self.weights.capacity()
                + self.out.capacity()
                + self.q.capacity()
                + self.row_norms.capacity()
                + self.centroid_norms.capacity())
            + std::mem::size_of::<usize>() * (self.idx.capacity() + self.labels.capacity())
    }
}

/// Blocked dot product: [`LANES`] independent accumulator chains over the
/// bulk, a scalar tail, and a fixed-order lane reduction.
///
/// This is the canonical per-row arithmetic of every kernel in this module.
/// It is *not* bit-identical to [`dot`](crate::vector::dot) (different
/// summation order); it is bit-identical to itself for a given `(a, b)`
/// whatever the surrounding blocking or chunking.
///
/// # Panics
///
/// Panics if the slices have different lengths.
// analyzer: hot-path — zero-allocation contract (tests/zero_alloc.rs)
#[inline(always)]
pub fn dot_blocked(a: &[f32], b: &[f32]) -> f32 {
    assert!(a.len() == b.len(), "dot_blocked: length mismatch");
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        // Fixed-size array views: the compiler sees the exact extent and
        // vectorizes the lane loop without bounds checks (measured ~30%
        // faster than slice indexing at d = 64).
        let xa: &[f32; LANES] = xa.try_into().expect("chunks_exact yields LANES");
        let xb: &[f32; LANES] = xb.try_into().expect("chunks_exact yields LANES");
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    // Fixed-order pairwise reduction of the lanes.
    let s0 = (acc[0] + acc[4]) + (acc[2] + acc[6]);
    let s1 = (acc[1] + acc[5]) + (acc[3] + acc[7]);
    (s0 + s1) + tail
}

/// Squared L2 norm `‖a‖²` with the blocked accumulation order.
// analyzer: hot-path — zero-allocation contract (tests/zero_alloc.rs)
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    dot_blocked(a, a)
}

/// `v · m[rows]ᵀ` into `out`: one blocked dot per row of the half-open row
/// range, overwriting `out` (cleared, then filled; no allocation once
/// `out.capacity()` covers the range).
///
/// # Panics
///
/// Panics if `v.len() != m.cols()` or the range exceeds `m.rows()`.
// analyzer: hot-path — zero-allocation contract (tests/zero_alloc.rs)
pub fn matvec_rows_into(m: &Matrix, rows: std::ops::Range<usize>, v: &[f32], out: &mut Vec<f32>) {
    assert_eq!(v.len(), m.cols(), "matvec_rows_into: dim mismatch");
    assert!(rows.end <= m.rows(), "matvec_rows_into: row range oob");
    let d = m.cols();
    let data = m.as_slice();
    out.clear();
    out.reserve(rows.len());
    for r in rows {
        out.push(dot_blocked(&data[r * d..(r + 1) * d], v));
    }
}

/// `v · mᵀ` into `out` — the blocked replacement for
/// [`Matrix::matvec_t`], covering every row.
// analyzer: hot-path — zero-allocation contract (tests/zero_alloc.rs)
pub fn matvec_t_into(m: &Matrix, v: &[f32], out: &mut Vec<f32>) {
    matvec_rows_into(m, 0..m.rows(), v, out);
}

/// `v · m[rows]ᵀ` with the row range split into **constant-size** chunks
/// fanned across the thread pool — the one implementation of the
/// determinism-critical pattern every parallel scoring/projection sweep
/// uses (`select_clusters`, the serving projections). Chunk boundaries
/// depend only on `chunk_rows` (never on the thread count) and per-row
/// arithmetic is canonical, so the result is bit-identical at every
/// `RAYON_NUM_THREADS`. At or below `chunk_rows` rows the sweep stays
/// sequential on the calling thread; above it, each chunk carries its own
/// per-worker output buffer.
///
/// # Panics
///
/// Panics if `chunk_rows == 0`, `v.len() != m.cols()` or the range exceeds
/// `m.rows()`.
pub fn par_matvec_rows(
    m: &Matrix,
    rows: std::ops::Range<usize>,
    v: &[f32],
    chunk_rows: usize,
) -> Vec<f32> {
    use rayon::prelude::*;
    assert!(chunk_rows > 0, "par_matvec_rows: chunk_rows must be > 0");
    let n = rows.len();
    if n <= chunk_rows {
        let mut out = Vec::with_capacity(n);
        matvec_rows_into(m, rows, v, &mut out);
        return out;
    }
    let end = rows.end;
    let starts: Vec<usize> = (rows.start..end).step_by(chunk_rows).collect();
    let chunks: Vec<Vec<f32>> = starts
        .into_par_iter()
        .with_min_len(1)
        .map(|start| {
            let stop = (start + chunk_rows).min(end);
            let mut part = Vec::with_capacity(stop - start);
            matvec_rows_into(m, start..stop, v, &mut part);
            part
        })
        .collect();
    chunks.concat()
}

/// Fused gather + scoring: `out[j] = m.row(indices[j]) · v`, without
/// materializing the gathered rows. Per-row arithmetic is identical to
/// [`matvec_t_into`], so gathering `[0..n]` reproduces it bit-for-bit.
///
/// # Panics
///
/// Panics if `v.len() != m.cols()` or an index is out of bounds.
// analyzer: hot-path — zero-allocation contract (tests/zero_alloc.rs)
pub fn gather_matvec_t_into(m: &Matrix, indices: &[usize], v: &[f32], out: &mut Vec<f32>) {
    assert_eq!(v.len(), m.cols(), "gather_matvec_t_into: dim mismatch");
    out.clear();
    out.reserve(indices.len());
    for &i in indices {
        out.push(dot_blocked(m.row(i), v));
    }
}

/// Squared row norms `‖m.row(i)‖²` into `out` (blocked accumulation order).
// analyzer: hot-path — zero-allocation contract (tests/zero_alloc.rs)
pub fn row_norms_sq_into(m: &Matrix, out: &mut Vec<f32>) {
    let d = m.cols();
    let data = m.as_slice();
    out.clear();
    out.reserve(m.rows());
    for r in 0..m.rows() {
        let row = &data[r * d..(r + 1) * d];
        out.push(dot_blocked(row, row));
    }
}

/// Number of value rows one pass of the blocked weighted sum consumes.
const WSUM_BLOCK: usize = 4;

/// Weighted sum of (optionally gathered) rows of `m` into `out`:
/// `out = Σ_j weights[j] · m.row(index_of(j))`, blocked four rows per pass.
///
/// The per-element accumulation order depends only on the *sequence* of
/// (weight, row) pairs — identical for the gather and contiguous paths, so
/// `attend_full` and `attend_selected` over all indices agree bit-for-bit.
/// `out` is overwritten (resized to `m.cols()`, no allocation once capacity
/// covers it).
///
/// # Panics
///
/// Panics if `indices` (when given) and `weights` differ in length, or an
/// index is out of bounds.
// analyzer: hot-path — zero-allocation contract (tests/zero_alloc.rs)
pub fn weighted_sum_rows_into(
    m: &Matrix,
    indices: Option<&[usize]>,
    weights: &[f32],
    out: &mut Vec<f32>,
) {
    if let Some(ix) = indices {
        assert_eq!(
            ix.len(),
            weights.len(),
            "weighted_sum_rows_into: index/weight count mismatch"
        );
    } else {
        assert!(
            weights.len() <= m.rows(),
            "weighted_sum_rows_into: more weights than rows"
        );
    }
    let d = m.cols();
    out.clear();
    out.resize(d, 0.0);
    weighted_sum_rows_core(m, indices, weights, out);
}

/// The single copy of the order-sensitive blocked accumulation both
/// [`weighted_sum_rows_into`] and [`attend_into`] run: `out` (length
/// `m.cols()`, pre-zeroed by the caller) accumulates four (weight, row)
/// pairs per pass, then a row-sequential tail — so the per-element order
/// depends only on the pair sequence, never on blocking or on whether `out`
/// is an owned `Vec` or a slice of a concat buffer.
// analyzer: hot-path — zero-allocation contract (tests/zero_alloc.rs)
fn weighted_sum_rows_core(m: &Matrix, indices: Option<&[usize]>, weights: &[f32], out: &mut [f32]) {
    let row_of = |j: usize| -> &[f32] {
        match indices {
            Some(ix) => m.row(ix[j]),
            None => m.row(j),
        }
    };
    let n = weights.len();
    let blocks = n / WSUM_BLOCK * WSUM_BLOCK;
    let mut j = 0;
    while j < blocks {
        let (w0, w1, w2, w3) = (weights[j], weights[j + 1], weights[j + 2], weights[j + 3]);
        let (r0, r1, r2, r3) = (row_of(j), row_of(j + 1), row_of(j + 2), row_of(j + 3));
        for (e, o) in out.iter_mut().enumerate() {
            *o += w0 * r0[e] + w1 * r1[e] + w2 * r2[e] + w3 * r3[e];
        }
        j += WSUM_BLOCK;
    }
    while j < n {
        let w = weights[j];
        let r = row_of(j);
        for (o, x) in out.iter_mut().zip(r) {
            *o += w * x;
        }
        j += 1;
    }
}

/// Scaled-dot-product attention weights over (optionally gathered) key rows:
/// `softmax(q · K_Sᵀ / √d)` into `weights` — the blocked, buffer-reusing
/// replacement for [`attention_weights`](crate::ops::attention_weights).
///
/// # Panics
///
/// Panics if `q.len() != keys.cols()` or an index is out of bounds.
// analyzer: hot-path — zero-allocation contract (tests/zero_alloc.rs)
pub fn attention_weights_into(
    keys: &Matrix,
    indices: Option<&[usize]>,
    q: &[f32],
    weights: &mut Vec<f32>,
) {
    match indices {
        Some(ix) => gather_matvec_t_into(keys, ix, q, weights),
        None => matvec_t_into(keys, q, weights),
    }
    let scale = 1.0 / (q.len() as f32).sqrt();
    for w in weights.iter_mut() {
        *w *= scale;
    }
    softmax_in_place(weights);
}

/// Fused single-head attention over (optionally gathered) KV rows:
/// computes `weights = softmax(q·K_Sᵀ/√d)` and `out = weights · V_S` without
/// materializing gathered rows or allocating. `out` must have length
/// `values.cols()` (e.g. one head's slice of a concat buffer).
///
/// # Panics
///
/// Panics if shapes disagree or an index is out of bounds.
// analyzer: hot-path — zero-allocation contract (tests/zero_alloc.rs)
pub fn attend_into(
    keys: &Matrix,
    values: &Matrix,
    indices: Option<&[usize]>,
    q: &[f32],
    weights: &mut Vec<f32>,
    out: &mut [f32],
) {
    assert_eq!(
        keys.shape(),
        values.shape(),
        "attend_into: key/value shape mismatch"
    );
    assert_eq!(out.len(), values.cols(), "attend_into: output dim mismatch");
    attention_weights_into(keys, indices, q, weights);
    out.fill(0.0);
    weighted_sum_rows_core(values, indices, weights, out);
}

// ---------------------------------------------------------------------------
// Reference kernels: the straight-line scalar implementations the blocked
// kernels replaced. Kept (not cfg(test)-gated) so property tests and the
// `exp_hotpath` / criterion benches can compare against them on identical
// data.
// ---------------------------------------------------------------------------

/// Scalar reference for [`matvec_t_into`]: one [`dot`](crate::vector::dot)
/// per row, collected into a fresh `Vec` — exactly the pre-kernel-layer
/// `Matrix::matvec_t`.
pub fn matvec_t_reference(m: &Matrix, v: &[f32]) -> Vec<f32> {
    assert_eq!(v.len(), m.cols(), "matvec_t_reference: dim mismatch");
    m.iter_rows().map(|r| crate::vector::dot(r, v)).collect()
}

/// Scalar reference for the gather + scoring fusion: materializes nothing
/// but scores with the scalar `dot`, allocating the score vector.
pub fn gather_matvec_t_reference(m: &Matrix, indices: &[usize], v: &[f32]) -> Vec<f32> {
    assert_eq!(v.len(), m.cols(), "gather_matvec_t_reference: dim mismatch");
    indices
        .iter()
        .map(|&i| crate::vector::dot(m.row(i), v))
        .collect()
}

/// Scalar reference for [`weighted_sum_rows_into`]: row-sequential `axpy`
/// accumulation (the pre-kernel `ops::weighted_sum` order).
pub fn weighted_sum_rows_reference(
    m: &Matrix,
    indices: Option<&[usize]>,
    weights: &[f32],
) -> Vec<f32> {
    let mut out = vec![0.0f32; m.cols()];
    for (j, &w) in weights.iter().enumerate() {
        let row = match indices {
            Some(ix) => m.row(ix[j]),
            None => m.row(j),
        };
        crate::vector::axpy(&mut out, w, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{gaussian_vec, seeded};
    use proptest::prelude::*;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        Matrix::from_flat(rows, cols, gaussian_vec(&mut rng, rows * cols, 0.0, 1.0)).unwrap()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let scale = x.abs().max(y.abs()).max(1.0);
            assert!(
                (x - y).abs() <= tol * scale,
                "element {i}: {x} vs {y} (tol {tol})"
            );
        }
    }

    #[test]
    fn dot_blocked_matches_scalar_dot() {
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 257] {
            let mut rng = seeded(len as u64 + 1);
            let a = gaussian_vec(&mut rng, len, 0.0, 1.0);
            let b = gaussian_vec(&mut rng, len, 0.0, 1.0);
            let blocked = dot_blocked(&a, &b);
            let scalar = crate::vector::dot(&a, &b);
            let scale = scalar.abs().max(1.0);
            assert!(
                (blocked - scalar).abs() <= 1e-5 * scale,
                "len {len}: {blocked} vs {scalar}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn dot_blocked_length_mismatch_panics() {
        dot_blocked(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn matvec_exact_small_integers() {
        // Integer-valued data: every summation order is exact, so blocked
        // equals reference bit-for-bit.
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![-4.0, 5.0, 0.5]]).unwrap();
        let v = [2.0, 1.0, 2.0];
        let mut out = Vec::new();
        matvec_t_into(&m, &v, &mut out);
        assert_eq!(out, vec![10.0, -2.0]);
        assert_eq!(out, matvec_t_reference(&m, &v));
    }

    #[test]
    fn gather_identity_is_bit_identical_to_contiguous() {
        let m = random_matrix(37, 19, 3);
        let v = gaussian_vec(&mut seeded(4), 19, 0.0, 1.0);
        let identity: Vec<usize> = (0..m.rows()).collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        matvec_t_into(&m, &v, &mut a);
        gather_matvec_t_into(&m, &identity, &v, &mut b);
        // Bit-identical, not merely close: the per-row arithmetic is the
        // same function of (row, v) on both paths.
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_sum_gather_identity_is_bit_identical() {
        let m = random_matrix(23, 8, 5);
        let w = gaussian_vec(&mut seeded(6), 23, 0.0, 1.0);
        let identity: Vec<usize> = (0..23).collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        weighted_sum_rows_into(&m, None, &w, &mut a);
        weighted_sum_rows_into(&m, Some(&identity), &w, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn attend_into_matches_reference_pipeline() {
        let keys = random_matrix(40, 16, 7);
        let values = random_matrix(40, 16, 8);
        let q = gaussian_vec(&mut seeded(9), 16, 0.0, 1.0);
        let indices: Vec<usize> = vec![3, 0, 17, 39, 21];
        let mut weights = Vec::new();
        let mut out = vec![0.0f32; 16];
        attend_into(&keys, &values, Some(&indices), &q, &mut weights, &mut out);
        // Reference: scalar logits -> softmax -> row-sequential axpy.
        let mut ref_logits = gather_matvec_t_reference(&keys, &indices, &q);
        let scale = 1.0 / (16f32).sqrt();
        for l in ref_logits.iter_mut() {
            *l *= scale;
        }
        softmax_in_place(&mut ref_logits);
        assert_close(&weights, &ref_logits, 1e-5);
        let ref_out = weighted_sum_rows_reference(&values, Some(&indices), &ref_logits);
        assert_close(&out, &ref_out, 1e-4);
        assert!((weights.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn workspace_reuse_keeps_capacity_stable() {
        let m = random_matrix(256, 32, 10);
        let v = gaussian_vec(&mut seeded(11), 32, 0.0, 1.0);
        let mut ws = Workspace::new();
        matvec_t_into(&m, &v, &mut ws.scores);
        row_norms_sq_into(&m, &mut ws.row_norms);
        let warm = ws.allocated_bytes();
        assert!(warm > 0);
        for _ in 0..50 {
            matvec_t_into(&m, &v, &mut ws.scores);
            row_norms_sq_into(&m, &mut ws.row_norms);
        }
        assert_eq!(ws.allocated_bytes(), warm, "steady state must not grow");
    }

    #[test]
    fn row_norms_match_per_row_norm_sq() {
        let m = random_matrix(17, 9, 12);
        let mut norms = Vec::new();
        row_norms_sq_into(&m, &mut norms);
        for (i, row) in m.iter_rows().enumerate() {
            assert_eq!(norms[i], norm_sq(row));
        }
    }

    proptest! {
        #[test]
        fn blocked_matches_reference_matvec(
            rows in 1usize..24,
            cols in 1usize..48,
            seed in 0u64..500,
        ) {
            let m = random_matrix(rows, cols, seed);
            let v = gaussian_vec(&mut seeded(seed ^ 0xFFFF), cols, 0.0, 1.0);
            let mut blocked = Vec::new();
            matvec_t_into(&m, &v, &mut blocked);
            let reference = matvec_t_reference(&m, &v);
            prop_assert_eq!(blocked.len(), reference.len());
            for (b, r) in blocked.iter().zip(&reference) {
                let scale = b.abs().max(r.abs()).max(1.0);
                prop_assert!((b - r).abs() <= 1e-5 * scale, "{} vs {}", b, r);
            }
        }

        #[test]
        fn blocked_matches_reference_weighted_sum(
            rows in 1usize..24,
            cols in 1usize..32,
            seed in 0u64..500,
        ) {
            let m = random_matrix(rows, cols, seed);
            let w = gaussian_vec(&mut seeded(seed ^ 0xABCD), rows, 0.0, 0.5);
            let mut blocked = Vec::new();
            weighted_sum_rows_into(&m, None, &w, &mut blocked);
            let reference = weighted_sum_rows_reference(&m, None, &w);
            for (b, r) in blocked.iter().zip(&reference) {
                let scale = b.abs().max(r.abs()).max(1.0);
                prop_assert!((b - r).abs() <= 1e-4 * scale, "{} vs {}", b, r);
            }
        }

        #[test]
        fn gather_subset_matches_per_row_dots(
            rows in 1usize..24,
            cols in 1usize..32,
            picks in proptest::collection::vec(0usize..24, 0..16),
            seed in 0u64..200,
        ) {
            let m = random_matrix(rows, cols, seed);
            let v = gaussian_vec(&mut seeded(seed ^ 0x1234), cols, 0.0, 1.0);
            let indices: Vec<usize> = picks.into_iter().map(|p| p % rows).collect();
            let mut out = Vec::new();
            gather_matvec_t_into(&m, &indices, &v, &mut out);
            prop_assert_eq!(out.len(), indices.len());
            for (j, &i) in indices.iter().enumerate() {
                prop_assert_eq!(out[j], dot_blocked(m.row(i), &v));
            }
        }
    }
}
