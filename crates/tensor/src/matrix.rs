//! A small row-major dense `f32` matrix.
//!
//! [`Matrix`] is used throughout the workspace to hold key/value tensors
//! (`L × d`), projection weights (`d × d`) and centroid tables (`C × d`).
//! It intentionally supports only the operations the reproduction needs.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// Dense row-major `f32` matrix.
///
/// # Examples
///
/// ```
/// use clusterkv_tensor::Matrix;
///
/// let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 2);
/// assert_eq!(m.row(1), &[3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a zero-filled matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                expected: format!("{} elements ({}x{})", rows * cols, rows, cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Build a matrix from a list of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when rows have differing
    /// lengths, or [`TensorError::InvalidArgument`] when `rows` is empty.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Result<Self> {
        if rows.is_empty() {
            return Err(TensorError::InvalidArgument(
                "from_rows requires at least one row".into(),
            ));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(TensorError::ShapeMismatch {
                    expected: format!("row of length {cols}"),
                    found: format!("row {i} of length {}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix and return the underlying buffer.
    pub fn into_inner(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks(self.cols.max(1)).take(self.rows)
    }

    /// Append a row to the bottom of the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the row length does not
    /// match the matrix width. An empty (0×0) matrix adopts the row's length.
    pub fn push_row(&mut self, row: &[f32]) -> Result<()> {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        if row.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                expected: format!("row of length {}", self.cols),
                found: format!("row of length {}", row.len()),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Reserve capacity for `additional` more rows, so a known-length run of
    /// [`push_row`](Self::push_row) / [`extend_rows`](Self::extend_rows)
    /// performs at most one reallocation instead of amortized growth.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional * self.cols);
    }

    /// Append every row of `other` in one bulk copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the column counts differ.
    /// An empty (0×0) matrix adopts `other`'s width.
    pub fn extend_rows(&mut self, other: &Matrix) -> Result<()> {
        if self.rows == 0 && self.cols == 0 {
            self.cols = other.cols;
        }
        if other.cols != self.cols {
            return Err(TensorError::ShapeMismatch {
                expected: format!("rows of length {}", self.cols),
                found: format!("rows of length {}", other.cols),
            });
        }
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
        Ok(())
    }

    /// Append rows `start..end` of `other` in one bulk copy, without
    /// materialising an intermediate sub-matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the column counts differ.
    /// An empty (0×0) matrix adopts `other`'s width.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > other.rows()`.
    pub fn extend_rows_range(&mut self, other: &Matrix, start: usize, end: usize) -> Result<()> {
        assert!(
            start <= end && end <= other.rows,
            "invalid row range {start}..{end}"
        );
        if self.rows == 0 && self.cols == 0 {
            self.cols = other.cols;
        }
        if other.cols != self.cols {
            return Err(TensorError::ShapeMismatch {
                expected: format!("rows of length {}", self.cols),
                found: format!("rows of length {}", other.cols),
            });
        }
        self.data
            .extend_from_slice(&other.data[start * self.cols..end * self.cols]);
        self.rows += end - start;
        Ok(())
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                expected: format!("rhs with {} rows", self.cols),
                found: format!("rhs with {} rows", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &b) in orow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        Ok(out)
    }

    /// `vec · selfᵀ`: multiply a row vector of length `cols()` by the
    /// transpose of this matrix, yielding one score per row. This is the
    /// exact shape of the "query against keys/centroids" operation.
    ///
    /// Routed through the blocked kernel
    /// [`matvec_t_into`](crate::kernels::matvec_t_into); the pre-kernel
    /// scalar path survives as
    /// [`matvec_t_reference`](crate::kernels::matvec_t_reference).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `v.len() != self.cols()`.
    pub fn matvec_t(&self, v: &[f32]) -> Result<Vec<f32>> {
        if v.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", v.len()),
            });
        }
        let mut out = Vec::new();
        crate::kernels::matvec_t_into(self, v, &mut out);
        Ok(out)
    }

    /// `self · vec`: multiply this matrix by a column vector of length
    /// `cols()`; used for weight projections (`W · x`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f32]) -> Result<Vec<f32>> {
        self.matvec_t(v)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Copy of the rows at the given indices, in the given order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &src in indices {
            data.extend_from_slice(self.row(src));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Sub-matrix consisting of rows `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > rows()`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "invalid row range {start}..{end}"
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Per-column maximum over all rows — the page-representation used by the
    /// Quest baseline ("per-channel maximal keys").
    ///
    /// Returns a zero vector when the matrix has no rows.
    pub fn column_max(&self) -> Vec<f32> {
        let mut out = vec![f32::NEG_INFINITY; self.cols];
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        for row in self.iter_rows() {
            for (o, &v) in out.iter_mut().zip(row) {
                if v > *o {
                    *o = v;
                }
            }
        }
        out
    }

    /// Per-column minimum over all rows (used by Quest's min/max metadata).
    ///
    /// Returns a zero vector when the matrix has no rows.
    pub fn column_min(&self) -> Vec<f32> {
        let mut out = vec![f32::INFINITY; self.cols];
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        for row in self.iter_rows() {
            for (o, &v) in out.iter_mut().zip(row) {
                if v < *o {
                    *o = v;
                }
            }
        }
        out
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty_input() {
        assert!(Matrix::from_rows(vec![]).is_err());
    }

    #[test]
    fn from_flat_checks_size() {
        assert!(Matrix::from_flat(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_flat(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let id = Matrix::identity(2);
        assert_eq!(m.matmul(&id).unwrap(), m);
        assert_eq!(id.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(vec![vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_t_scores_each_row() {
        let keys = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let q = [2.0, 3.0];
        assert_eq!(keys.matvec_t(&q).unwrap(), vec![2.0, 3.0, 5.0]);
        assert!(keys.matvec_t(&[1.0]).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose().row(0), &[1.0, 4.0]);
    }

    #[test]
    fn select_rows_preserves_order() {
        let m = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
    }

    #[test]
    fn slice_rows_basic() {
        let m = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let s = m.slice_rows(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), &[1.0]);
    }

    #[test]
    fn extend_rows_matches_repeated_push() {
        let other = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut bulk = Matrix::from_rows(vec![vec![9.0, 8.0]]).unwrap();
        bulk.reserve_rows(other.rows());
        bulk.extend_rows(&other).unwrap();
        let mut one_by_one = Matrix::from_rows(vec![vec![9.0, 8.0]]).unwrap();
        for r in other.iter_rows() {
            one_by_one.push_row(r).unwrap();
        }
        assert_eq!(bulk, one_by_one);
        // Width mismatch is rejected; an empty matrix adopts the width.
        assert!(bulk.extend_rows(&Matrix::zeros(1, 3)).is_err());
        let mut empty = Matrix::default();
        empty.extend_rows(&other).unwrap();
        assert_eq!(empty, other);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::default();
        m.push_row(&[1.0, 2.0]).unwrap();
        m.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert!(m.push_row(&[5.0]).is_err());
    }

    #[test]
    fn column_max_and_min() {
        let m = Matrix::from_rows(vec![vec![1.0, -5.0], vec![3.0, 2.0], vec![-2.0, 0.0]]).unwrap();
        assert_eq!(m.column_max(), vec![3.0, 2.0]);
        assert_eq!(m.column_min(), vec![-2.0, -5.0]);
        let empty = Matrix::zeros(0, 2);
        assert_eq!(empty.column_max(), vec![0.0, 0.0]);
        assert_eq!(empty.column_min(), vec![0.0, 0.0]);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_rows(vec![vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn matmul_is_associative_with_identity(
            rows in 1usize..6, cols in 1usize..6,
            seed in proptest::collection::vec(-5.0f32..5.0, 36),
        ) {
            let data: Vec<f32> = seed.into_iter().take(rows * cols).collect();
            prop_assume!(data.len() == rows * cols);
            let m = Matrix::from_flat(rows, cols, data).unwrap();
            let id = Matrix::identity(cols);
            prop_assert_eq!(m.matmul(&id).unwrap(), m);
        }

        #[test]
        fn transpose_is_involutive(
            rows in 1usize..6, cols in 1usize..6,
            seed in proptest::collection::vec(-5.0f32..5.0, 36),
        ) {
            let data: Vec<f32> = seed.into_iter().take(rows * cols).collect();
            prop_assume!(data.len() == rows * cols);
            let m = Matrix::from_flat(rows, cols, data).unwrap();
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn column_max_dominates_all_rows(
            rows in 1usize..6, cols in 1usize..6,
            seed in proptest::collection::vec(-5.0f32..5.0, 36),
        ) {
            let data: Vec<f32> = seed.into_iter().take(rows * cols).collect();
            prop_assume!(data.len() == rows * cols);
            let m = Matrix::from_flat(rows, cols, data).unwrap();
            let cmax = m.column_max();
            for row in m.iter_rows() {
                for (c, v) in row.iter().enumerate() {
                    prop_assert!(cmax[c] >= *v);
                }
            }
        }
    }
}
