//! Minimal dense `f32` linear algebra for the ClusterKV reproduction.
//!
//! The crate provides exactly the operations the rest of the workspace needs:
//!
//! * [`vector`] — dot products, norms, cosine similarity, top-k selection and
//!   other 1-D helpers used by the clustering and selection algorithms.
//! * [`kernels`] — blocked, zero-allocation kernels (scoring, gather +
//!   attend, norm caching) plus the reusable [`Workspace`] scratch arena the
//!   serving hot path runs on.
//! * [`matrix`] — a small row-major [`Matrix`] type with
//!   matrix multiplication, transposition and row views, used to hold key /
//!   value / weight tensors.
//! * [`ops`] — softmax, RMS normalisation and activation functions used by
//!   the transformer simulator.
//! * [`svd`] — a one-sided Jacobi singular value decomposition used by the
//!   InfiniGen baseline to build partial query/key projections.
//! * [`rng`] — seeded Gaussian sampling helpers so every experiment in the
//!   workspace is deterministic.
//!
//! # Examples
//!
//! ```
//! use clusterkv_tensor::vector::{cosine_similarity, dot};
//!
//! let a = [1.0_f32, 0.0, 0.0];
//! let b = [0.0_f32, 1.0, 0.0];
//! assert_eq!(dot(&a, &b), 0.0);
//! assert!(cosine_similarity(&a, &b).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod kernels;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod svd;
pub mod vector;

pub use kernels::Workspace;
pub use matrix::Matrix;

/// Error type for shape mismatches and invalid arguments in tensor routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Human readable description of the expected shape.
        expected: String,
        /// Human readable description of the shape that was provided.
        found: String,
    },
    /// An argument was outside its valid domain (e.g. zero dimensions).
    InvalidArgument(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenient result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let err = TensorError::ShapeMismatch {
            expected: "3x4".into(),
            found: "4x3".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("3x4"));
        assert!(msg.contains("4x3"));

        let err = TensorError::InvalidArgument("k must be > 0".into());
        assert!(err.to_string().contains("k must be > 0"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
