//! 1-D vector helpers: dot products, norms, distances and top-k selection.
//!
//! These are the primitive operations used by the clustering (`clusterkv`),
//! selection and baseline crates. All functions operate on `&[f32]` slices so
//! callers can use rows of a [`Matrix`](crate::Matrix), `Vec<f32>` or arrays
//! interchangeably.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use clusterkv_tensor::vector::dot;
/// assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    let mut acc = 0.0f32;
    // Manual 4-way unroll: the hot loops of selection score thousands of
    // centroids per decoding step.
    let chunks = a.len() / 4 * 4;
    let mut i = 0;
    while i < chunks {
        acc += a[i] * b[i] + a[i + 1] * b[i + 1] + a[i + 2] * b[i + 2] + a[i + 3] * b[i + 3];
        i += 4;
    }
    while i < a.len() {
        acc += a[i] * b[i];
        i += 1;
    }
    acc
}

/// Euclidean (L2) norm of a slice.
///
/// # Examples
///
/// ```
/// use clusterkv_tensor::vector::norm;
/// assert_eq!(norm(&[3.0, 4.0]), 5.0);
/// ```
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Squared L2 distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn l2_distance_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_distance_sq: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// L2 distance between two equal-length slices.
#[inline]
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    l2_distance_sq(a, b).sqrt()
}

/// Cosine similarity `⟨a,b⟩ / (|a|·|b|)`.
///
/// Returns `0.0` when either vector has zero norm, which keeps the semantic
/// distance `1 - cos` well defined for degenerate inputs.
///
/// # Examples
///
/// ```
/// use clusterkv_tensor::vector::cosine_similarity;
/// let s = cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]);
/// assert!((s - 1.0).abs() < 1e-6);
/// ```
#[inline]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// Cosine distance `1 - cosine_similarity`, the semantic distance of the
/// paper (§III-B): smaller for vectors pointing in similar directions.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    1.0 - cosine_similarity(a, b)
}

/// `a += alpha * b` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(a: &mut [f32], alpha: f32, b: &[f32]) {
    assert_eq!(a.len(), b.len(), "axpy: length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
}

/// Scale a slice in place by `alpha`.
#[inline]
pub fn scale(a: &mut [f32], alpha: f32) {
    for x in a.iter_mut() {
        *x *= alpha;
    }
}

/// Normalise a slice to unit L2 norm in place. Zero vectors are left
/// untouched.
#[inline]
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        scale(a, 1.0 / n);
    }
}

/// Index of the maximum element. Returns `None` for an empty slice; NaN
/// entries are never selected over non-NaN entries.
pub fn argmax(a: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element. Returns `None` for an empty slice; NaN
/// entries are never selected over non-NaN entries.
pub fn argmin(a: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v >= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Total descending order over the indices of `a`: larger values first, NaN
/// values (of either sign) ranked strictly last, ties broken by the lower
/// index. Being total (unlike `partial_cmp` with a NaN-to-`Equal` fallback,
/// which is not transitive and may panic `sort_by`), it is safe for every
/// `sort`/`select_nth` primitive and makes rankings of NaN-bearing scores
/// deterministic.
#[inline]
fn cmp_desc_nan_last(a: &[f32], i: usize, j: usize) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a[i].is_nan(), a[j].is_nan()) {
        (false, false) => a[j].total_cmp(&a[i]).then(i.cmp(&j)),
        (true, true) => i.cmp(&j),
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
    }
}

/// Indices of the `k` largest elements, in descending order of value.
///
/// When `k >= a.len()` all indices are returned. Ties are broken by the lower
/// index first so the result is deterministic; NaN entries rank strictly
/// last, so they are only emitted once every finite value is exhausted.
///
/// Uses `select_nth_unstable_by` partial selection: the `O(n)` partition
/// moves the top `k` to the front and only that prefix is sorted, so a
/// per-step top-k over a long context costs `O(n + k log k)` rather than a
/// full `O(n log n)` argsort (see the `top_k` group in
/// `crates/bench/benches/microbench.rs`).
///
/// # Examples
///
/// ```
/// use clusterkv_tensor::vector::top_k_indices;
/// assert_eq!(top_k_indices(&[0.1, 0.9, 0.5], 2), vec![1, 2]);
/// ```
pub fn top_k_indices(a: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len()).collect();
    let k = k.min(a.len());
    if k == 0 {
        return Vec::new();
    }
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, |&i, &j| cmp_desc_nan_last(a, i, j));
        idx.truncate(k);
    }
    idx.sort_unstable_by(|&i, &j| cmp_desc_nan_last(a, i, j));
    idx
}

/// Indices sorted by descending value (a full argsort); used when the caller
/// needs the complete importance ranking rather than only the top-k. NaN
/// entries rank strictly last, ties break toward the lower index.
pub fn argsort_descending(a: &[f32]) -> Vec<usize> {
    let mut idx = Vec::new();
    argsort_descending_into(a, &mut idx);
    idx
}

/// [`argsort_descending`] into a caller-owned buffer (cleared, then filled):
/// the zero-allocation variant the selection hot path uses with a reusable
/// [`Workspace`](crate::kernels::Workspace) index buffer.
pub fn argsort_descending_into(a: &[f32], idx: &mut Vec<usize>) {
    idx.clear();
    idx.extend(0..a.len());
    idx.sort_unstable_by(|&i, &j| cmp_desc_nan_last(a, i, j));
}

/// Mean of a set of equal-length vectors.
///
/// Returns a zero vector of length `dim` when `vectors` is empty.
pub fn mean_of<'a, I>(vectors: I, dim: usize) -> Vec<f32>
where
    I: IntoIterator<Item = &'a [f32]>,
{
    let mut acc = vec![0.0f32; dim];
    let mut count = 0usize;
    for v in vectors {
        axpy(&mut acc, 1.0, v);
        count += 1;
    }
    if count > 0 {
        scale(&mut acc, 1.0 / count as f32);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_handles_non_multiple_of_four_lengths() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(dot(&a, &b), 15.0);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 2.0]), 1.0);
    }

    #[test]
    fn cosine_distance_of_parallel_vectors_is_zero() {
        let a = [2.0, 4.0, 6.0];
        let b = [1.0, 2.0, 3.0];
        assert!(cosine_distance(&a, &b).abs() < 1e-6);
    }

    #[test]
    fn cosine_distance_of_opposite_vectors_is_two() {
        let a = [1.0, 0.0];
        let b = [-1.0, 0.0];
        assert!((cosine_distance(&a, &b) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_and_argmin_basic() {
        let v = [3.0, -1.0, 7.0, 2.0];
        assert_eq!(argmax(&v), Some(2));
        assert_eq!(argmin(&v), Some(1));
        assert_eq!(argmax(&[] as &[f32]), None);
        assert_eq!(argmin(&[] as &[f32]), None);
    }

    #[test]
    fn argmax_skips_nan() {
        let v = [1.0, f32::NAN, 0.5];
        assert_eq!(argmax(&v), Some(0));
        assert_eq!(argmin(&v), Some(2));
    }

    #[test]
    fn top_k_returns_descending_order() {
        let v = [0.2, 0.9, 0.4, 0.7];
        assert_eq!(top_k_indices(&v, 3), vec![1, 3, 2]);
        assert_eq!(top_k_indices(&v, 10), vec![1, 3, 2, 0]);
        assert_eq!(top_k_indices(&v, 0), Vec::<usize>::new());
    }

    #[test]
    fn top_k_breaks_ties_by_lower_index() {
        let v = [0.5, 0.5, 0.5];
        assert_eq!(top_k_indices(&v, 2), vec![0, 1]);
    }

    #[test]
    fn top_k_ranks_nan_strictly_last() {
        let v = [1.0, f32::NAN, 2.0, -f32::NAN, 0.5];
        // Finite values fill the top-k before any NaN appears.
        assert_eq!(top_k_indices(&v, 2), vec![2, 0]);
        assert_eq!(top_k_indices(&v, 3), vec![2, 0, 4]);
        // Asking for more than the finite count appends NaNs, lower index
        // first, regardless of NaN sign.
        assert_eq!(top_k_indices(&v, 5), vec![2, 0, 4, 1, 3]);
        assert_eq!(argsort_descending(&v), vec![2, 0, 4, 1, 3]);
    }

    #[test]
    fn all_nan_scores_rank_by_index() {
        let v = [f32::NAN; 4];
        assert_eq!(top_k_indices(&v, 2), vec![0, 1]);
        assert_eq!(argsort_descending(&v), vec![0, 1, 2, 3]);
    }

    #[test]
    fn nan_heavy_inputs_never_panic_the_sort() {
        // The previous comparator (`partial_cmp().unwrap_or(Equal)`) was not
        // a total order, for which `sort_by` may panic ("user-provided
        // comparison function does not correctly implement a total order").
        // Exercise many NaN/finite interleavings to pin the fix.
        for n in [3usize, 17, 64, 257] {
            let v: Vec<f32> = (0..n)
                .map(|i| {
                    if i % 3 == 0 {
                        f32::NAN
                    } else {
                        (i as f32 * 7.3) % 5.0 - 2.5
                    }
                })
                .collect();
            for k in [1, 2, n / 2, n] {
                let idx = top_k_indices(&v, k);
                assert_eq!(idx.len(), k.min(n));
                let unique: std::collections::HashSet<_> = idx.iter().collect();
                assert_eq!(unique.len(), idx.len());
                // Deterministic: a second ranking is identical.
                assert_eq!(idx, top_k_indices(&v, k));
            }
        }
    }

    #[test]
    fn partial_selection_matches_full_argsort_prefix() {
        let v: Vec<f32> = (0..512)
            .map(|i| ((i * 37) % 101) as f32 * 0.7 - 30.0)
            .collect();
        let full = argsort_descending(&v);
        for k in [1usize, 7, 32, 100, 511, 512] {
            assert_eq!(top_k_indices(&v, k), full[..k.min(v.len())]);
        }
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let m = mean_of(std::iter::empty::<&[f32]>(), 3);
        assert_eq!(m, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn mean_of_two_vectors() {
        let a = vec![1.0f32, 3.0];
        let b = vec![3.0f32, 5.0];
        let m = mean_of([a.as_slice(), b.as_slice()], 2);
        assert_eq!(m, vec![2.0, 4.0]);
    }

    #[test]
    fn normalize_makes_unit_norm() {
        let mut v = vec![3.0f32, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0f32, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn dot_is_commutative(a in proptest::collection::vec(-10.0f32..10.0, 1..64)) {
            let b: Vec<f32> = a.iter().rev().cloned().collect();
            prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-3);
        }

        #[test]
        fn cosine_similarity_is_bounded(
            a in proptest::collection::vec(-10.0f32..10.0, 1..32),
            b in proptest::collection::vec(-10.0f32..10.0, 1..32),
        ) {
            let n = a.len().min(b.len());
            let s = cosine_similarity(&a[..n], &b[..n]);
            prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&s));
        }

        #[test]
        fn l2_distance_satisfies_identity(a in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            prop_assert!(l2_distance(&a, &a) < 1e-6);
        }

        #[test]
        fn top_k_indices_are_unique_and_sorted_by_value(
            v in proptest::collection::vec(-100.0f32..100.0, 1..64),
            k in 1usize..64,
        ) {
            let idx = top_k_indices(&v, k);
            prop_assert_eq!(idx.len(), k.min(v.len()));
            let mut seen = std::collections::HashSet::new();
            for w in idx.windows(2) {
                prop_assert!(v[w[0]] >= v[w[1]]);
            }
            for &i in &idx {
                prop_assert!(seen.insert(i));
            }
        }

        #[test]
        fn norm_is_non_negative(a in proptest::collection::vec(-10.0f32..10.0, 0..32)) {
            prop_assert!(norm(&a) >= 0.0);
        }
    }
}
