//! One-sided Jacobi singular value decomposition.
//!
//! The InfiniGen baseline (`clusterkv-baselines`) generates *partial* query
//! and key projection weights offline by taking an SVD of the query/key
//! weight product and keeping only the channels with the largest singular
//! values. This module provides the SVD that step needs; it favours clarity
//! and robustness over raw speed (the matrices involved are at most a few
//! hundred columns and the decomposition runs once per head, offline).

use crate::{Matrix, Result, TensorError};

/// Result of a singular value decomposition `A = U · diag(S) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, one column per singular value (`m × r`).
    pub u: Matrix,
    /// Singular values in descending order (`r`).
    pub singular_values: Vec<f32>,
    /// Right singular vectors, one column per singular value (`n × r`).
    pub v: Matrix,
}

impl Svd {
    /// Number of singular values retained.
    pub fn rank(&self) -> usize {
        self.singular_values.len()
    }

    /// Reconstruct the (possibly truncated) matrix `U · diag(S) · Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let m = self.u.rows();
        let n = self.v.rows();
        let r = self.rank();
        let mut out = Matrix::zeros(m, n);
        for k in 0..r {
            let s = self.singular_values[k];
            for i in 0..m {
                let uik = self.u.get(i, k);
                if uik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let add = s * uik * self.v.get(j, k);
                    out.set(i, j, out.get(i, j) + add);
                }
            }
        }
        out
    }

    /// Keep only the `k` largest singular values (truncated SVD).
    pub fn truncate(&self, k: usize) -> Svd {
        let k = k.min(self.rank());
        let mut u = Matrix::zeros(self.u.rows(), k);
        let mut v = Matrix::zeros(self.v.rows(), k);
        for c in 0..k {
            for r in 0..self.u.rows() {
                u.set(r, c, self.u.get(r, c));
            }
            for r in 0..self.v.rows() {
                v.set(r, c, self.v.get(r, c));
            }
        }
        Svd {
            u,
            singular_values: self.singular_values[..k].to_vec(),
            v,
        }
    }
}

/// Compute the SVD of `a` using the one-sided Jacobi method.
///
/// Suitable for small/medium matrices (up to a few hundred columns). The
/// returned singular values are sorted in descending order and the singular
/// vectors are permuted accordingly.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `a` has zero rows or columns.
pub fn svd(a: &Matrix) -> Result<Svd> {
    let m = a.rows();
    let n = a.cols();
    if m == 0 || n == 0 {
        return Err(TensorError::InvalidArgument(
            "svd requires a non-empty matrix".into(),
        ));
    }

    // Work on columns of A (one-sided Jacobi orthogonalises the columns of
    // U·S while accumulating the rotations into V).
    let mut u = a.clone();
    let mut v = Matrix::identity(n);

    let max_sweeps = 60;
    let eps = 1e-9f64;

    for _sweep in 0..max_sweeps {
        let mut off_diag = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Compute the 2x2 Gram sub-matrix of columns p and q.
                let mut alpha = 0.0f64;
                let mut beta = 0.0f64;
                let mut gamma = 0.0f64;
                for i in 0..m {
                    let up = u.get(i, p) as f64;
                    let uq = u.get(i, q) as f64;
                    alpha += up * up;
                    beta += uq * uq;
                    gamma += up * uq;
                }
                off_diag += gamma.abs();
                if gamma.abs() <= eps * (alpha * beta).sqrt() {
                    continue;
                }
                // Jacobi rotation that zeroes the off-diagonal element.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u.get(i, p) as f64;
                    let uq = u.get(i, q) as f64;
                    u.set(i, p, (c * up - s * uq) as f32);
                    u.set(i, q, (s * up + c * uq) as f32);
                }
                for i in 0..n {
                    let vp = v.get(i, p) as f64;
                    let vq = v.get(i, q) as f64;
                    v.set(i, p, (c * vp - s * vq) as f32);
                    v.set(i, q, (s * vp + c * vq) as f32);
                }
            }
        }
        if off_diag < eps {
            break;
        }
    }

    // Column norms of U are the singular values; normalise U's columns.
    // Ranking goes through the blessed total-order argsort (NaN norms — e.g.
    // from a NaN input entry — rank strictly last and deterministically,
    // instead of poisoning the comparator).
    let norms: Vec<f32> = (0..n)
        .map(|j| {
            (0..m)
                .map(|i| u.get(i, j) * u.get(i, j))
                .sum::<f32>()
                .sqrt()
        })
        .collect();
    let order = crate::vector::argsort_descending(&norms);

    let rank = n.min(m);
    let mut u_sorted = Matrix::zeros(m, rank);
    let mut v_sorted = Matrix::zeros(n, rank);
    let mut singular_values = Vec::with_capacity(rank);
    for (dst, &src) in order.iter().take(rank).enumerate() {
        let s = norms[src];
        singular_values.push(s);
        for i in 0..m {
            let val = if s > 0.0 { u.get(i, src) / s } else { 0.0 };
            u_sorted.set(i, dst, val);
        }
        for i in 0..n {
            v_sorted.set(i, dst, v.get(i, src));
        }
    }

    Ok(Svd {
        u: u_sorted,
        singular_values,
        v: v_sorted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "matrices differ: {x} vs {y}");
        }
    }

    #[test]
    fn svd_of_identity_has_unit_singular_values() {
        let id = Matrix::identity(4);
        let d = svd(&id).unwrap();
        for s in &d.singular_values {
            assert!((s - 1.0).abs() < 1e-4);
        }
        assert_close(&d.reconstruct(), &id, 1e-4);
    }

    #[test]
    fn svd_reconstructs_diagonal_matrix() {
        let mut m = Matrix::zeros(3, 3);
        m.set(0, 0, 3.0);
        m.set(1, 1, 2.0);
        m.set(2, 2, 1.0);
        let d = svd(&m).unwrap();
        assert!((d.singular_values[0] - 3.0).abs() < 1e-4);
        assert!((d.singular_values[1] - 2.0).abs() < 1e-4);
        assert!((d.singular_values[2] - 1.0).abs() < 1e-4);
        assert_close(&d.reconstruct(), &m, 1e-4);
    }

    #[test]
    fn svd_singular_values_are_descending() {
        let m = rng::gaussian_matrix(&mut rng::seeded(5), 16, 8, 0.0, 1.0);
        let d = svd(&m).unwrap();
        for w in d.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-5);
        }
    }

    #[test]
    fn svd_reconstructs_random_matrix() {
        let m = rng::gaussian_matrix(&mut rng::seeded(9), 12, 6, 0.0, 1.0);
        let d = svd(&m).unwrap();
        assert_close(&d.reconstruct(), &m, 1e-3);
    }

    #[test]
    fn truncated_svd_is_best_low_rank_approx_in_spirit() {
        // A rank-1 matrix should be perfectly captured by a rank-1 truncation.
        let u = [1.0f32, 2.0, 3.0];
        let v = [4.0f32, 5.0];
        let mut m = Matrix::zeros(3, 2);
        for (i, &ui) in u.iter().enumerate() {
            for (j, &vj) in v.iter().enumerate() {
                m.set(i, j, ui * vj);
            }
        }
        let d = svd(&m).unwrap().truncate(1);
        assert_eq!(d.rank(), 1);
        assert_close(&d.reconstruct(), &m, 1e-3);
    }

    #[test]
    fn svd_of_empty_matrix_errors() {
        assert!(svd(&Matrix::zeros(0, 3)).is_err());
        assert!(svd(&Matrix::zeros(3, 0)).is_err());
    }

    #[test]
    fn svd_with_nan_entries_is_deterministic_and_ranks_nan_last() {
        // A NaN entry makes its column norm NaN. The total-order argsort
        // must rank that column strictly last (it can never masquerade as
        // the dominant singular value) and the decomposition must be
        // bit-identical across runs.
        let mut m = Matrix::zeros(3, 3);
        m.set(0, 0, 2.0);
        m.set(1, 1, f32::NAN);
        m.set(2, 2, 1.0);
        let d1 = svd(&m).unwrap();
        let d2 = svd(&m).unwrap();
        assert_eq!(
            d1.singular_values
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<_>>(),
            d2.singular_values
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<_>>(),
            "NaN input must not make the ranking nondeterministic"
        );
        // NaN norms rank strictly after every finite singular value: once
        // the first NaN appears, everything after it is NaN too.
        let first_nan = d1
            .singular_values
            .iter()
            .position(|s| s.is_nan())
            .expect("a NaN input column yields at least one NaN norm");
        assert!(
            d1.singular_values[first_nan..].iter().all(|s| s.is_nan()),
            "NaN norms must be contiguous at the tail: {:?}",
            d1.singular_values
        );
        // The outputs stay NaN-free where the value is defined: truncating
        // away NaN-ranked columns is well-defined.
        let _ = d1.truncate(first_nan);
    }

    #[test]
    fn truncate_beyond_rank_is_clamped() {
        let m = Matrix::identity(3);
        let d = svd(&m).unwrap();
        assert_eq!(d.truncate(10).rank(), 3);
    }
}
