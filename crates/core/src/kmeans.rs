//! K-means clustering over key vectors.
//!
//! The paper applies "a simple K-means algorithm" (§III-B): initial centroids
//! are chosen from the key vectors themselves, then assignment and update
//! steps alternate until the assignment no longer changes. The assignment
//! step uses the configured semantic distance (cosine by default); the update
//! step takes the mean of the keys assigned to each centroid — exactly what
//! the custom centroid-update CUDA kernel of §IV-B computes, here implemented
//! as a parallel CPU reduction.
//!
//! One deliberate deviation from the paper: instead of sampling the initial
//! centroids uniformly at random, the first centroid is sampled randomly
//! (seeded) and the remaining ones are chosen by farthest-first traversal
//! (k-means++-style). This costs the same `O(k·L·d)` as one assignment pass,
//! is deterministic for a fixed seed, and avoids the degenerate local minima
//! that uniform sampling occasionally produces for small `k`.

use crate::distance::DistanceMetric;
use clusterkv_tensor::rng::{sample_distinct_indices, seeded};
use clusterkv_tensor::vector::{argmax, mean_of};
use clusterkv_tensor::Matrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Minimum rows each worker of the parallel assignment sweep receives: one
/// `nearest` call is `O(C·d)`, cheap enough that splitting a small prompt's
/// keys across threads costs more than it saves.
const ASSIGN_MIN_ROWS_PER_WORKER: usize = 64;

/// Result of running k-means on a set of key vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Clustering {
    /// Cluster centroids (`C × d`).
    pub centroids: Matrix,
    /// Cluster label of every input row.
    pub labels: Vec<usize>,
    /// Number of assignment/update iterations performed.
    pub iterations: usize,
    /// Whether the assignment converged before the iteration cap.
    pub converged: bool,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centroids.rows()
    }

    /// An empty clustering over vectors of dimension `dim`.
    pub fn empty(dim: usize) -> Self {
        Self {
            centroids: Matrix::zeros(0, dim),
            labels: Vec::new(),
            iterations: 0,
            converged: true,
        }
    }
}

/// K-means configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    /// Distance metric used in the assignment step.
    pub metric: DistanceMetric,
    /// Iteration cap.
    pub max_iters: usize,
    /// Seed for centroid initialisation.
    pub seed: u64,
}

impl KMeans {
    /// Create a k-means runner.
    pub fn new(metric: DistanceMetric, max_iters: usize, seed: u64) -> Self {
        Self {
            metric,
            max_iters,
            seed,
        }
    }

    /// Cluster the rows of `keys` into (at most) `k` clusters.
    ///
    /// Degenerate inputs are handled without panicking: `k == 0` or an empty
    /// matrix yields an empty clustering, and `k >= rows` assigns every row
    /// to its own cluster.
    pub fn fit(&self, keys: &Matrix, k: usize) -> Clustering {
        let n = keys.rows();
        let dim = keys.cols();
        if n == 0 || k == 0 {
            return Clustering::empty(dim);
        }
        if k >= n {
            return Clustering {
                centroids: keys.clone(),
                labels: (0..n).collect(),
                iterations: 0,
                converged: true,
            };
        }

        // Initialise centroids with farthest-first traversal: a random first
        // pick, then repeatedly the key farthest (under the metric) from all
        // centroids chosen so far.
        let mut rng = seeded(self.seed);
        let first = sample_distinct_indices(&mut rng, n, 1)[0];
        let mut init = vec![first];
        let mut min_dist: Vec<f32> = (0..n)
            .map(|i| self.metric.distance(keys.row(i), keys.row(first)))
            .collect();
        while init.len() < k {
            // `argmax` skips NaN distances (a NaN key would otherwise poison
            // farthest-first traversal) and breaks ties toward the lower
            // index, keeping initialisation deterministic. All-NaN
            // degenerate input falls back to index 0.
            let next = argmax(&min_dist).unwrap_or(0);
            init.push(next);
            for (i, md) in min_dist.iter_mut().enumerate() {
                let d = self.metric.distance(keys.row(i), keys.row(next));
                if d < *md {
                    *md = d;
                }
            }
        }
        let mut centroids = keys.select_rows(&init);
        let mut labels = vec![usize::MAX; n];
        let mut iterations = 0;
        let mut converged = false;

        while iterations < self.max_iters {
            iterations += 1;

            // Assignment step (parallel across rows, mirroring the batched
            // Torch kernels of §IV-B). Chunk-parallel per-row assignments
            // are order-preserving, so the labeling is identical at every
            // thread count.
            let centroid_rows: Vec<&[f32]> = centroids.iter_rows().collect();
            let new_labels: Vec<usize> = (0..n)
                .into_par_iter()
                .with_min_len(ASSIGN_MIN_ROWS_PER_WORKER)
                .map(|i| {
                    // `nearest` returns None only when every distance is NaN
                    // (degenerate NaN keys); pin such rows to cluster 0
                    // deterministically rather than panicking the sweep.
                    self.metric
                        .nearest(keys.row(i), centroid_rows.iter().copied())
                        .unwrap_or(0)
                })
                .collect();

            let changed = new_labels != labels;
            labels = new_labels;
            if !changed {
                converged = true;
                break;
            }

            // Update step: mean of the members of each cluster. Empty
            // clusters keep their previous centroid.
            let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
            for (i, &l) in labels.iter().enumerate() {
                members[l].push(i);
            }
            for (c, member_idx) in members.iter().enumerate() {
                if member_idx.is_empty() {
                    continue;
                }
                let mean = mean_of(member_idx.iter().map(|&i| keys.row(i)), dim);
                centroids.row_mut(c).copy_from_slice(&mean);
            }
        }

        Clustering {
            centroids,
            labels,
            iterations,
            converged,
        }
    }
}

impl Default for KMeans {
    fn default() -> Self {
        Self::new(DistanceMetric::Cosine, 20, 0x5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterkv_tensor::rng::{gaussian_vec, seeded as seeded_rng};
    use proptest::prelude::*;

    /// Three well-separated directional blobs (cosine-separable).
    fn blobs(per_blob: usize, dim: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let directions = [
            {
                let mut v = vec![0.0f32; dim];
                v[0] = 1.0;
                v
            },
            {
                let mut v = vec![0.0f32; dim];
                v[dim / 2] = 1.0;
                v
            },
            {
                let mut v = vec![0.0f32; dim];
                v[dim - 1] = -1.0;
                v
            },
        ];
        let mut rng = seeded_rng(seed);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for (b, dir) in directions.iter().enumerate() {
            for _ in 0..per_blob {
                let noise = gaussian_vec(&mut rng, dim, 0.0, 0.05);
                let row: Vec<f32> = dir.iter().zip(&noise).map(|(d, n)| d * 3.0 + n).collect();
                rows.push(row);
                truth.push(b);
            }
        }
        (Matrix::from_rows(rows).unwrap(), truth)
    }

    /// Fraction of pairs whose same/different-cluster relation matches the
    /// ground truth (Rand index).
    fn rand_index(labels: &[usize], truth: &[usize]) -> f64 {
        let n = labels.len();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                let same_pred = labels[i] == labels[j];
                let same_true = truth[i] == truth[j];
                if same_pred == same_true {
                    agree += 1;
                }
            }
        }
        agree as f64 / total.max(1) as f64
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (keys, truth) = blobs(30, 16, 3);
        let result = KMeans::default().fit(&keys, 3);
        assert_eq!(result.num_clusters(), 3);
        assert!(result.converged);
        let ri = rand_index(&result.labels, &truth);
        assert!(ri > 0.95, "rand index {ri}");
    }

    #[test]
    fn empty_input_and_zero_k_are_handled() {
        let km = KMeans::default();
        let empty = km.fit(&Matrix::zeros(0, 8), 4);
        assert_eq!(empty.num_clusters(), 0);
        assert!(empty.labels.is_empty());
        let zero_k = km.fit(&Matrix::identity(4), 0);
        assert_eq!(zero_k.num_clusters(), 0);
    }

    #[test]
    fn k_larger_than_rows_gives_singleton_clusters() {
        let keys = Matrix::identity(3);
        let result = KMeans::default().fit(&keys, 10);
        assert_eq!(result.num_clusters(), 3);
        assert_eq!(result.labels, vec![0, 1, 2]);
        assert!(result.converged);
    }

    #[test]
    fn clustering_is_deterministic_for_fixed_seed() {
        let (keys, _) = blobs(20, 8, 7);
        let a = KMeans::new(DistanceMetric::Cosine, 20, 1).fit(&keys, 4);
        let b = KMeans::new(DistanceMetric::Cosine, 20, 1).fit(&keys, 4);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let (keys, _) = blobs(30, 8, 5);
        let result = KMeans::new(DistanceMetric::Cosine, 1, 0).fit(&keys, 3);
        assert_eq!(result.iterations, 1);
    }

    #[test]
    fn all_metrics_produce_valid_labelings() {
        let (keys, _) = blobs(15, 8, 11);
        for metric in DistanceMetric::all() {
            let result = KMeans::new(metric, 15, 2).fit(&keys, 4);
            assert_eq!(result.labels.len(), keys.rows());
            assert!(result.labels.iter().all(|&l| l < result.num_clusters()));
        }
    }

    #[test]
    fn cosine_beats_l2_with_outlier_channels() {
        // Construct two directional groups, then amplify one channel of a
        // subset of keys (outlier channel). Cosine clustering should still
        // group by direction better than L2 clustering does.
        let (keys, truth) = blobs(25, 16, 13);
        let mut rows: Vec<Vec<f32>> = keys.iter_rows().map(|r| r.to_vec()).collect();
        for (i, row) in rows.iter_mut().enumerate() {
            if i % 3 == 0 {
                // Scale whole vector: direction unchanged, magnitude outlier.
                for v in row.iter_mut() {
                    *v *= 6.0;
                }
            }
        }
        let keys = Matrix::from_rows(rows).unwrap();
        let cos = KMeans::new(DistanceMetric::Cosine, 25, 3).fit(&keys, 3);
        let l2 = KMeans::new(DistanceMetric::L2, 25, 3).fit(&keys, 3);
        let ri_cos = rand_index(&cos.labels, &truth);
        let ri_l2 = rand_index(&l2.labels, &truth);
        assert!(
            ri_cos >= ri_l2,
            "cosine rand index {ri_cos} should be >= l2 {ri_l2}"
        );
        assert!(ri_cos > 0.9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn labels_are_always_valid(
            n in 1usize..40,
            k in 1usize..10,
            seed in 0u64..100,
        ) {
            let mut rng = seeded_rng(seed);
            let rows: Vec<Vec<f32>> = (0..n).map(|_| gaussian_vec(&mut rng, 8, 0.0, 1.0)).collect();
            let keys = Matrix::from_rows(rows).unwrap();
            let result = KMeans::new(DistanceMetric::Cosine, 10, seed).fit(&keys, k);
            prop_assert_eq!(result.labels.len(), n);
            let c = result.num_clusters();
            prop_assert!(c <= n.max(1));
            for &l in &result.labels {
                prop_assert!(l < c);
            }
        }
    }
}
