//! K-means clustering over key vectors.
//!
//! The paper applies "a simple K-means algorithm" (§III-B): initial centroids
//! are chosen from the key vectors themselves, then assignment and update
//! steps alternate until the assignment no longer changes. The assignment
//! step uses the configured semantic distance (cosine by default); the update
//! step takes the mean of the keys assigned to each centroid — exactly what
//! the custom centroid-update CUDA kernel of §IV-B computes, here implemented
//! as a parallel CPU reduction.
//!
//! The assignment sweep is a blocked Gram-trick kernel (DESIGN.md §6): each
//! row scores every centroid with one blocked matvec
//! ([`matvec_t_into`]) and the
//! distance is reconstructed from the inner product and **cached squared
//! norms** (`‖x−c‖² = ‖x‖² − 2x·c + ‖c‖²`;
//! [`DistanceMetric::distance_from_parts`]). Row norms are computed once per
//! fit — or passed in by callers that maintain them incrementally
//! ([`fit_with_norms`](KMeans::fit_with_norms)) — instead of once per
//! row-centroid *pair* per iteration, which is what the naive
//! `metric.distance` sweep costs under the cosine metric (three dot products
//! per pair). The naive sweep survives as [`assign_labels_reference`] for
//! property tests and the `exp_hotpath` speedup gate.
//!
//! One deliberate deviation from the paper: instead of sampling the initial
//! centroids uniformly at random, the first centroid is sampled randomly
//! (seeded) and the remaining ones are chosen by farthest-first traversal
//! (k-means++-style). This costs the same `O(k·L·d)` as one assignment pass,
//! is deterministic for a fixed seed, and avoids the degenerate local minima
//! that uniform sampling occasionally produces for small `k`.

use crate::distance::DistanceMetric;
use clusterkv_tensor::kernels::{matvec_t_into, row_norms_sq_into, Workspace};
use clusterkv_tensor::rng::{sample_distinct_indices, seeded};
use clusterkv_tensor::vector::{argmax, mean_of};
use clusterkv_tensor::Matrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Rows per chunk of the parallel assignment sweep: one row's assignment is
/// `O(C·d)`, cheap enough that splitting a small prompt's keys across
/// threads costs more than it saves. The chunk size is a constant (not a
/// function of the thread count), so chunk boundaries — and therefore every
/// per-row result — are identical at every `RAYON_NUM_THREADS`.
const ASSIGN_MIN_ROWS_PER_WORKER: usize = 64;

/// Result of running k-means on a set of key vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Clustering {
    /// Cluster centroids (`C × d`).
    pub centroids: Matrix,
    /// Cached squared norms `‖c‖²` of the final centroids, aligned with the
    /// rows of `centroids`. Callers that keep centroids around
    /// (`SemanticClustering`) cache these so later Gram-trick scoring never
    /// recomputes them.
    pub centroid_norms: Vec<f32>,
    /// Cluster label of every input row.
    pub labels: Vec<usize>,
    /// Number of assignment/update iterations performed.
    pub iterations: usize,
    /// Whether the assignment converged before the iteration cap.
    pub converged: bool,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centroids.rows()
    }

    /// An empty clustering over vectors of dimension `dim`.
    pub fn empty(dim: usize) -> Self {
        Self {
            centroids: Matrix::zeros(0, dim),
            centroid_norms: Vec::new(),
            labels: Vec::new(),
            iterations: 0,
            converged: true,
        }
    }
}

/// Predigest the per-centroid norm column for one assignment sweep: the
/// cosine metric consumes `‖c‖` (square roots taken once per centroid per
/// iteration instead of once per pair), L2 consumes `‖c‖²` as-is, and the
/// inner product needs no norms at all.
fn predigest_centroid_norms(metric: DistanceMetric, norms_sq: &mut [f32]) {
    if metric == DistanceMetric::Cosine {
        for n in norms_sq.iter_mut() {
            *n = n.sqrt();
        }
    }
}

/// Label of one row given its centroid inner products and predigested norms.
/// Mirrors [`DistanceMetric::nearest`]: ties break toward the lower index,
/// NaN distances are never selected, an all-NaN row falls back to cluster 0.
#[inline]
fn label_of_row(metric: DistanceMetric, scores: &[f32], row_norm_sq: f32, cnorms: &[f32]) -> usize {
    let row_norm = match metric {
        DistanceMetric::Cosine => row_norm_sq.sqrt(),
        _ => row_norm_sq,
    };
    let mut best: Option<(usize, f32)> = None;
    for (c, &s) in scores.iter().enumerate() {
        let d = match metric {
            DistanceMetric::Cosine => {
                let denom = row_norm * cnorms[c];
                if denom == 0.0 {
                    1.0
                } else {
                    1.0 - s / denom
                }
            }
            DistanceMetric::L2 => row_norm_sq - 2.0 * s + cnorms[c],
            DistanceMetric::InnerProduct => -s,
        };
        if d.is_nan() {
            continue;
        }
        match best {
            Some((_, bd)) if d >= bd => {}
            _ => best = Some((c, d)),
        }
    }
    best.map(|(c, _)| c).unwrap_or(0)
}

/// Blocked Gram-trick assignment sweep: the label of every row of `keys`
/// under `metric`, given cached squared row norms. Row chunks fan out across
/// the thread pool; per-row arithmetic is canonical (one blocked matvec per
/// row), so the labeling is identical at every thread count. `ws` provides
/// the score scratch of the sequential path; parallel chunks carry their own
/// per-worker scratch.
///
/// # Panics
///
/// Panics if `row_norms.len() != keys.rows()` or the dimensionalities of
/// `keys` and `centroids` differ.
pub fn assign_labels(
    metric: DistanceMetric,
    keys: &Matrix,
    row_norms: &[f32],
    centroids: &Matrix,
    ws: &mut Workspace,
) -> Vec<usize> {
    assert_eq!(row_norms.len(), keys.rows(), "row norm cache out of date");
    assert_eq!(keys.cols(), centroids.cols(), "key/centroid dim mismatch");
    let n = keys.rows();
    let k = centroids.rows();
    if n == 0 || k == 0 {
        return vec![0; n];
    }
    row_norms_sq_into(centroids, &mut ws.centroid_norms);
    predigest_centroid_norms(metric, &mut ws.centroid_norms);
    if n <= ASSIGN_MIN_ROWS_PER_WORKER {
        // Sequential fast path on the caller's workspace: no allocation
        // beyond the returned labels.
        let mut labels = Vec::with_capacity(n);
        for (i, &rn) in row_norms.iter().enumerate() {
            matvec_t_into(centroids, keys.row(i), &mut ws.scores);
            labels.push(label_of_row(metric, &ws.scores, rn, &ws.centroid_norms));
        }
        return labels;
    }
    let cnorms = &ws.centroid_norms;
    let starts: Vec<usize> = (0..n).step_by(ASSIGN_MIN_ROWS_PER_WORKER).collect();
    let chunks: Vec<Vec<usize>> = starts
        .into_par_iter()
        .with_min_len(1)
        .map(|start| {
            let end = (start + ASSIGN_MIN_ROWS_PER_WORKER).min(n);
            let mut scores = Vec::with_capacity(k);
            (start..end)
                .map(|i| {
                    matvec_t_into(centroids, keys.row(i), &mut scores);
                    label_of_row(metric, &scores, row_norms[i], cnorms)
                })
                .collect()
        })
        .collect();
    chunks.concat()
}

/// The pre-kernel-layer assignment sweep: one `metric.distance` call per
/// row-centroid pair (three scalar dot products per pair under cosine).
/// Kept as the reference the blocked sweep is property-tested and speedup-
/// gated against (`exp_hotpath`).
pub fn assign_labels_reference(
    metric: DistanceMetric,
    keys: &Matrix,
    centroids: &Matrix,
) -> Vec<usize> {
    let centroid_rows: Vec<&[f32]> = centroids.iter_rows().collect();
    (0..keys.rows())
        .map(|i| {
            metric
                .nearest(keys.row(i), centroid_rows.iter().copied())
                .unwrap_or(0)
        })
        .collect()
}

/// K-means configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    /// Distance metric used in the assignment step.
    pub metric: DistanceMetric,
    /// Iteration cap.
    pub max_iters: usize,
    /// Seed for centroid initialisation.
    pub seed: u64,
}

impl KMeans {
    /// Create a k-means runner.
    pub fn new(metric: DistanceMetric, max_iters: usize, seed: u64) -> Self {
        Self {
            metric,
            max_iters,
            seed,
        }
    }

    /// Cluster the rows of `keys` into (at most) `k` clusters, computing the
    /// squared row norms on entry and using a throwaway workspace. Callers
    /// that cache row norms incrementally (`SemanticClustering`) or reuse a
    /// workspace across sweeps use [`fit_with_norms`](Self::fit_with_norms).
    ///
    /// Degenerate inputs are handled without panicking: `k == 0` or an empty
    /// matrix yields an empty clustering, and `k >= rows` assigns every row
    /// to its own cluster.
    pub fn fit(&self, keys: &Matrix, k: usize) -> Clustering {
        let mut ws = Workspace::new();
        let mut norms = Vec::new();
        row_norms_sq_into(keys, &mut norms);
        self.fit_with_norms(keys, &norms, k, &mut ws)
    }

    /// [`fit`](Self::fit) with caller-cached squared row norms (`‖x‖²`, one
    /// per row of `keys`) and a reusable scratch workspace.
    ///
    /// # Panics
    ///
    /// Panics if `row_norms.len() != keys.rows()`.
    pub fn fit_with_norms(
        &self,
        keys: &Matrix,
        row_norms: &[f32],
        k: usize,
        ws: &mut Workspace,
    ) -> Clustering {
        assert_eq!(row_norms.len(), keys.rows(), "row norm cache out of date");
        let n = keys.rows();
        let dim = keys.cols();
        if n == 0 || k == 0 {
            return Clustering::empty(dim);
        }
        if k >= n {
            return Clustering {
                centroids: keys.clone(),
                centroid_norms: row_norms.to_vec(),
                labels: (0..n).collect(),
                iterations: 0,
                converged: true,
            };
        }

        // Initialise centroids with farthest-first traversal: a random first
        // pick, then repeatedly the key farthest (under the metric) from all
        // centroids chosen so far. Distances come from the Gram parts — one
        // blocked matvec against the newest pick plus the cached row norms.
        let mut rng = seeded(self.seed);
        let first = sample_distinct_indices(&mut rng, n, 1)[0];
        let mut init = vec![first];
        matvec_t_into(keys, keys.row(first), &mut ws.scores);
        let mut min_dist: Vec<f32> = (0..n)
            .map(|i| {
                self.metric
                    .distance_from_parts(ws.scores[i], row_norms[i], row_norms[first])
            })
            .collect();
        while init.len() < k {
            // `argmax` skips NaN distances (a NaN key would otherwise poison
            // farthest-first traversal) and breaks ties toward the lower
            // index, keeping initialisation deterministic. All-NaN
            // degenerate input falls back to index 0.
            let next = argmax(&min_dist).unwrap_or(0);
            init.push(next);
            matvec_t_into(keys, keys.row(next), &mut ws.scores);
            for (i, md) in min_dist.iter_mut().enumerate() {
                let d =
                    self.metric
                        .distance_from_parts(ws.scores[i], row_norms[i], row_norms[next]);
                if d < *md {
                    *md = d;
                }
            }
        }
        let mut centroids = keys.select_rows(&init);
        let mut labels = vec![usize::MAX; n];
        let mut iterations = 0;
        let mut converged = false;

        while iterations < self.max_iters {
            iterations += 1;

            // Assignment step: the blocked Gram-trick sweep (parallel across
            // row chunks, mirroring the batched Torch kernels of §IV-B).
            let new_labels = assign_labels(self.metric, keys, row_norms, &centroids, ws);

            let changed = new_labels != labels;
            labels = new_labels;
            if !changed {
                converged = true;
                break;
            }

            // Update step: mean of the members of each cluster. Empty
            // clusters keep their previous centroid.
            let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
            for (i, &l) in labels.iter().enumerate() {
                members[l].push(i);
            }
            for (c, member_idx) in members.iter().enumerate() {
                if member_idx.is_empty() {
                    continue;
                }
                let mean = mean_of(member_idx.iter().map(|&i| keys.row(i)), dim);
                centroids.row_mut(c).copy_from_slice(&mean);
            }
        }

        let mut centroid_norms = Vec::with_capacity(k);
        row_norms_sq_into(&centroids, &mut centroid_norms);
        Clustering {
            centroids,
            centroid_norms,
            labels,
            iterations,
            converged,
        }
    }
}

impl Default for KMeans {
    fn default() -> Self {
        Self::new(DistanceMetric::Cosine, 20, 0x5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterkv_tensor::kernels::norm_sq;
    use clusterkv_tensor::rng::{gaussian_vec, seeded as seeded_rng};
    use proptest::prelude::*;

    /// Three well-separated directional blobs (cosine-separable).
    fn blobs(per_blob: usize, dim: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let directions = [
            {
                let mut v = vec![0.0f32; dim];
                v[0] = 1.0;
                v
            },
            {
                let mut v = vec![0.0f32; dim];
                v[dim / 2] = 1.0;
                v
            },
            {
                let mut v = vec![0.0f32; dim];
                v[dim - 1] = -1.0;
                v
            },
        ];
        let mut rng = seeded_rng(seed);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for (b, dir) in directions.iter().enumerate() {
            for _ in 0..per_blob {
                let noise = gaussian_vec(&mut rng, dim, 0.0, 0.05);
                let row: Vec<f32> = dir.iter().zip(&noise).map(|(d, n)| d * 3.0 + n).collect();
                rows.push(row);
                truth.push(b);
            }
        }
        (Matrix::from_rows(rows).unwrap(), truth)
    }

    /// Fraction of pairs whose same/different-cluster relation matches the
    /// ground truth (Rand index).
    fn rand_index(labels: &[usize], truth: &[usize]) -> f64 {
        let n = labels.len();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                let same_pred = labels[i] == labels[j];
                let same_true = truth[i] == truth[j];
                if same_pred == same_true {
                    agree += 1;
                }
            }
        }
        agree as f64 / total.max(1) as f64
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (keys, truth) = blobs(30, 16, 3);
        let result = KMeans::default().fit(&keys, 3);
        assert_eq!(result.num_clusters(), 3);
        assert!(result.converged);
        let ri = rand_index(&result.labels, &truth);
        assert!(ri > 0.95, "rand index {ri}");
    }

    #[test]
    fn empty_input_and_zero_k_are_handled() {
        let km = KMeans::default();
        let empty = km.fit(&Matrix::zeros(0, 8), 4);
        assert_eq!(empty.num_clusters(), 0);
        assert!(empty.labels.is_empty());
        let zero_k = km.fit(&Matrix::identity(4), 0);
        assert_eq!(zero_k.num_clusters(), 0);
    }

    #[test]
    fn k_larger_than_rows_gives_singleton_clusters() {
        let keys = Matrix::identity(3);
        let result = KMeans::default().fit(&keys, 10);
        assert_eq!(result.num_clusters(), 3);
        assert_eq!(result.labels, vec![0, 1, 2]);
        assert!(result.converged);
        // The norm cache covers the adopted rows.
        assert_eq!(result.centroid_norms, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn clustering_is_deterministic_for_fixed_seed() {
        let (keys, _) = blobs(20, 8, 7);
        let a = KMeans::new(DistanceMetric::Cosine, 20, 1).fit(&keys, 4);
        let b = KMeans::new(DistanceMetric::Cosine, 20, 1).fit(&keys, 4);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.centroid_norms, b.centroid_norms);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let (keys, _) = blobs(30, 8, 5);
        let result = KMeans::new(DistanceMetric::Cosine, 1, 0).fit(&keys, 3);
        assert_eq!(result.iterations, 1);
    }

    #[test]
    fn all_metrics_produce_valid_labelings() {
        let (keys, _) = blobs(15, 8, 11);
        for metric in DistanceMetric::all() {
            let result = KMeans::new(metric, 15, 2).fit(&keys, 4);
            assert_eq!(result.labels.len(), keys.rows());
            assert!(result.labels.iter().all(|&l| l < result.num_clusters()));
        }
    }

    #[test]
    fn centroid_norm_cache_matches_recomputation() {
        let (keys, _) = blobs(20, 8, 17);
        for metric in DistanceMetric::all() {
            let result = KMeans::new(metric, 10, 3).fit(&keys, 4);
            assert_eq!(result.centroid_norms.len(), result.num_clusters());
            for (c, row) in result.centroids.iter_rows().enumerate() {
                assert_eq!(
                    result.centroid_norms[c],
                    norm_sq(row),
                    "{metric}: centroid {c}"
                );
            }
        }
    }

    #[test]
    fn blocked_assignment_matches_reference_on_separated_data() {
        // On well-separated data the Gram-trick reassociation cannot flip a
        // label: blocked and reference sweeps agree exactly.
        let (keys, _) = blobs(40, 16, 23);
        let mut norms = Vec::new();
        clusterkv_tensor::kernels::row_norms_sq_into(&keys, &mut norms);
        let centroids = keys.select_rows(&[0, 45, 85]);
        let mut ws = Workspace::new();
        for metric in DistanceMetric::all() {
            let blocked = assign_labels(metric, &keys, &norms, &centroids, &mut ws);
            let reference = assign_labels_reference(metric, &keys, &centroids);
            assert_eq!(blocked, reference, "{metric}");
        }
    }

    #[test]
    fn assignment_is_thread_count_invariant() {
        // > ASSIGN_MIN_ROWS_PER_WORKER rows so the parallel path engages;
        // chunk boundaries are thread-count independent, so labels match the
        // sequential sweep bit for bit.
        let (keys, _) = blobs(80, 8, 29); // 240 rows
        let mut norms = Vec::new();
        clusterkv_tensor::kernels::row_norms_sq_into(&keys, &mut norms);
        let centroids = keys.select_rows(&[1, 90, 170]);
        let mut ws = Workspace::new();
        let reference = assign_labels(DistanceMetric::Cosine, &keys, &norms, &centroids, &mut ws);
        // Restore the caller's RAYON_NUM_THREADS (CI pins it to 1 for the
        // single-thread sweep) even if an assertion below panics.
        struct EnvRestore(Option<String>);
        impl Drop for EnvRestore {
            fn drop(&mut self) {
                match self.0.take() {
                    Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
                    None => std::env::remove_var("RAYON_NUM_THREADS"),
                }
            }
        }
        let _restore = EnvRestore(std::env::var("RAYON_NUM_THREADS").ok());
        for threads in ["1", "2", "8"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let got = assign_labels(DistanceMetric::Cosine, &keys, &norms, &centroids, &mut ws);
            assert_eq!(got, reference, "threads {threads}");
        }
    }

    #[test]
    fn nan_rows_fall_back_to_cluster_zero() {
        let mut rows: Vec<Vec<f32>> = (0..6).map(|i| vec![i as f32 + 1.0; 4]).collect();
        rows[3] = vec![f32::NAN; 4];
        let keys = Matrix::from_rows(rows).unwrap();
        let mut norms = Vec::new();
        clusterkv_tensor::kernels::row_norms_sq_into(&keys, &mut norms);
        let centroids = keys.select_rows(&[0, 5]);
        let mut ws = Workspace::new();
        let labels = assign_labels(DistanceMetric::Cosine, &keys, &norms, &centroids, &mut ws);
        assert_eq!(labels.len(), 6);
        assert_eq!(labels[3], 0, "all-NaN row pins to cluster 0");
        assert_eq!(
            labels,
            assign_labels_reference(DistanceMetric::Cosine, &keys, &centroids)
        );
    }

    #[test]
    fn cosine_beats_l2_with_outlier_channels() {
        // Construct two directional groups, then amplify one channel of a
        // subset of keys (outlier channel). Cosine clustering should still
        // group by direction better than L2 clustering does.
        let (keys, truth) = blobs(25, 16, 13);
        let mut rows: Vec<Vec<f32>> = keys.iter_rows().map(|r| r.to_vec()).collect();
        for (i, row) in rows.iter_mut().enumerate() {
            if i % 3 == 0 {
                // Scale whole vector: direction unchanged, magnitude outlier.
                for v in row.iter_mut() {
                    *v *= 6.0;
                }
            }
        }
        let keys = Matrix::from_rows(rows).unwrap();
        let cos = KMeans::new(DistanceMetric::Cosine, 25, 3).fit(&keys, 3);
        let l2 = KMeans::new(DistanceMetric::L2, 25, 3).fit(&keys, 3);
        let ri_cos = rand_index(&cos.labels, &truth);
        let ri_l2 = rand_index(&l2.labels, &truth);
        assert!(
            ri_cos >= ri_l2,
            "cosine rand index {ri_cos} should be >= l2 {ri_l2}"
        );
        assert!(ri_cos > 0.9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn labels_are_always_valid(
            n in 1usize..40,
            k in 1usize..10,
            seed in 0u64..100,
        ) {
            let mut rng = seeded_rng(seed);
            let rows: Vec<Vec<f32>> = (0..n).map(|_| gaussian_vec(&mut rng, 8, 0.0, 1.0)).collect();
            let keys = Matrix::from_rows(rows).unwrap();
            let result = KMeans::new(DistanceMetric::Cosine, 10, seed).fit(&keys, k);
            prop_assert_eq!(result.labels.len(), n);
            let c = result.num_clusters();
            prop_assert!(c <= n.max(1));
            for &l in &result.labels {
                prop_assert!(l < c);
            }
            prop_assert_eq!(result.centroid_norms.len(), c);
        }

        #[test]
        fn blocked_assignment_agrees_with_reference_within_ties(
            n in 2usize..50,
            k in 1usize..6,
            seed in 0u64..200,
        ) {
            // The two sweeps may only disagree where floating-point
            // reassociation moves a near-tie: whenever they disagree, the
            // two candidate distances must be within tolerance.
            let mut rng = seeded_rng(seed);
            let rows: Vec<Vec<f32>> = (0..n).map(|_| gaussian_vec(&mut rng, 8, 0.0, 1.0)).collect();
            let keys = Matrix::from_rows(rows).unwrap();
            let picks: Vec<usize> = (0..k.min(n)).map(|i| i * n / k.min(n).max(1)).collect();
            let centroids = keys.select_rows(&picks);
            let mut norms = Vec::new();
            clusterkv_tensor::kernels::row_norms_sq_into(&keys, &mut norms);
            let mut ws = Workspace::new();
            for metric in DistanceMetric::all() {
                let blocked = assign_labels(metric, &keys, &norms, &centroids, &mut ws);
                let reference = assign_labels_reference(metric, &keys, &centroids);
                for i in 0..n {
                    if blocked[i] != reference[i] {
                        let db = metric.distance(keys.row(i), centroids.row(blocked[i]));
                        let dr = metric.distance(keys.row(i), centroids.row(reference[i]));
                        let scale = db.abs().max(dr.abs()).max(1.0);
                        prop_assert!((db - dr).abs() <= 1e-4 * scale,
                            "{}: row {} labels {} vs {} with distances {} vs {}",
                            metric, i, blocked[i], reference[i], db, dr);
                    }
                }
            }
        }
    }
}
