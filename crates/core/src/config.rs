//! Configuration of the ClusterKV algorithm.

use crate::distance::DistanceMetric;
use clusterkv_kvcache::CompressionConfig;
use serde::{Deserialize, Serialize};

/// Parameters of the ClusterKV algorithm, defaulting to the values chosen in
/// the paper.
///
/// # Examples
///
/// ```
/// use clusterkv::{ClusterKvConfig, DistanceMetric};
///
/// // The paper's configuration.
/// let cfg = ClusterKvConfig::default();
/// assert_eq!(cfg.sink_tokens, 16);
/// assert_eq!(cfg.tokens_per_cluster, 80);
///
/// // An ablation configuration with L2 distance and more clusters.
/// let ablation = ClusterKvConfig::default()
///     .with_distance(DistanceMetric::L2)
///     .with_tokens_per_cluster(40);
/// assert_eq!(ablation.distance, DistanceMetric::L2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterKvConfig {
    /// Number of initial tokens (attention sinks) that are never clustered
    /// and always retained (§III-B; 16 in the paper).
    pub sink_tokens: usize,
    /// Prefill tokens per cluster: `C0 = L / tokens_per_cluster` (80 in the
    /// paper, i.e. `C0 = 400` for a 32k context).
    pub tokens_per_cluster: usize,
    /// Lower bound on the number of prefill clusters (guards very short
    /// prompts).
    pub min_clusters: usize,
    /// Distance metric used for clustering (§III-B; cosine in the paper,
    /// L2 / inner product in the Fig. 11b ablation).
    pub distance: DistanceMetric,
    /// Maximum number of k-means iterations before declaring convergence.
    pub max_kmeans_iters: usize,
    /// Number of decoding steps between incremental clustering runs
    /// (`m = 320` in the paper).
    pub decode_cluster_period: usize,
    /// Number of new clusters created per incremental clustering run
    /// (`C+ = 4` in the paper).
    pub decode_new_clusters: usize,
    /// Seed for the (deterministic) random centroid initialisation.
    pub seed: u64,
    /// Compressed-tier configuration for recalled KV (DESIGN.md §9).
    /// Lossless by default, which preserves the byte-parity guarantee of
    /// the serving stack; a lossy setting makes the policy emit
    /// recall-compressed selection plans.
    pub compression: CompressionConfig,
}

// Note: the paper's recency window `R` (§IV-D) is not an algorithm
// parameter here — residency is owned by the serving stack. Size the
// session's GPU cluster cache instead (`ServeEngineBuilder::
// kv_cache_capacity`, `ClusterCacheConfig::for_recency_window`): a capacity
// holding `R` steps of selected KV is the LRU analogue of `R`.

impl Default for ClusterKvConfig {
    fn default() -> Self {
        Self {
            sink_tokens: 16,
            tokens_per_cluster: 80,
            min_clusters: 4,
            distance: DistanceMetric::Cosine,
            max_kmeans_iters: 20,
            decode_cluster_period: 320,
            decode_new_clusters: 4,
            seed: 0x5EED,
            compression: CompressionConfig::lossless(),
        }
    }
}

impl ClusterKvConfig {
    /// The paper's configuration (same as [`Default`]).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Number of prefill clusters `C0` for a prompt of `prefill_len` tokens
    /// (excluding sinks): `max(min_clusters, ceil(len / tokens_per_cluster))`,
    /// clamped to the number of clusterable tokens.
    pub fn prefill_clusters(&self, prefill_len: usize) -> usize {
        let clusterable = prefill_len.saturating_sub(self.sink_tokens);
        if clusterable == 0 {
            return 0;
        }
        let wanted = clusterable
            .div_ceil(self.tokens_per_cluster)
            .max(self.min_clusters);
        wanted.min(clusterable)
    }

    /// Set the distance metric (builder style).
    pub fn with_distance(mut self, distance: DistanceMetric) -> Self {
        self.distance = distance;
        self
    }

    /// Set the tokens-per-cluster ratio (builder style). A smaller value
    /// means more clusters (`C0 = L / tokens_per_cluster`).
    pub fn with_tokens_per_cluster(mut self, tokens_per_cluster: usize) -> Self {
        self.tokens_per_cluster = tokens_per_cluster;
        self
    }

    /// Set the number of attention-sink tokens (builder style).
    pub fn with_sink_tokens(mut self, sink_tokens: usize) -> Self {
        self.sink_tokens = sink_tokens;
        self
    }

    /// Set the incremental clustering period `m` (builder style).
    pub fn with_decode_cluster_period(mut self, period: usize) -> Self {
        self.decode_cluster_period = period;
        self
    }

    /// Set the number of new clusters `C+` per incremental run (builder style).
    pub fn with_decode_new_clusters(mut self, clusters: usize) -> Self {
        self.decode_new_clusters = clusters;
        self
    }

    /// Set the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the compressed-tier configuration (builder style).
    pub fn with_compression(mut self, compression: CompressionConfig) -> Self {
        self.compression = compression;
        self
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.tokens_per_cluster == 0 {
            return Err("tokens_per_cluster must be > 0".into());
        }
        if self.min_clusters == 0 {
            return Err("min_clusters must be > 0".into());
        }
        if self.max_kmeans_iters == 0 {
            return Err("max_kmeans_iters must be > 0".into());
        }
        if self.decode_cluster_period == 0 {
            return Err("decode_cluster_period must be > 0".into());
        }
        if self.decode_new_clusters == 0 {
            return Err("decode_new_clusters must be > 0".into());
        }
        self.compression.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_values() {
        let c = ClusterKvConfig::default();
        assert_eq!(c.sink_tokens, 16);
        assert_eq!(c.tokens_per_cluster, 80);
        assert_eq!(c.decode_cluster_period, 320);
        assert_eq!(c.decode_new_clusters, 4);
        assert_eq!(c.distance, DistanceMetric::Cosine);
        assert_eq!(ClusterKvConfig::paper(), c);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn prefill_clusters_for_32k_context_is_about_400() {
        let c = ClusterKvConfig::default();
        // 32768 - 16 sinks = 32752 clusterable tokens -> ceil(/80) = 410.
        let clusters = c.prefill_clusters(32_768);
        assert!((400..=420).contains(&clusters), "clusters = {clusters}");
    }

    #[test]
    fn prefill_clusters_handles_short_prompts() {
        let c = ClusterKvConfig::default();
        assert_eq!(c.prefill_clusters(0), 0);
        assert_eq!(c.prefill_clusters(10), 0); // all sinks
        assert_eq!(c.prefill_clusters(16), 0);
        // 4 clusterable tokens; min_clusters=4 but clamped to 4 tokens.
        assert_eq!(c.prefill_clusters(20), 4);
        // 2 clusterable tokens: clamped to 2.
        assert_eq!(c.prefill_clusters(18), 2);
    }

    #[test]
    fn builder_methods_set_fields() {
        let c = ClusterKvConfig::default()
            .with_distance(DistanceMetric::InnerProduct)
            .with_tokens_per_cluster(40)
            .with_sink_tokens(8)
            .with_decode_cluster_period(160)
            .with_decode_new_clusters(8)
            .with_seed(99);
        assert_eq!(c.distance, DistanceMetric::InnerProduct);
        assert_eq!(c.tokens_per_cluster, 40);
        assert_eq!(c.sink_tokens, 8);
        assert_eq!(c.decode_cluster_period, 160);
        assert_eq!(c.decode_new_clusters, 8);
        assert_eq!(c.seed, 99);
    }

    #[test]
    fn more_tokens_per_cluster_means_fewer_clusters() {
        let dense = ClusterKvConfig::default().with_tokens_per_cluster(40);
        let sparse = ClusterKvConfig::default().with_tokens_per_cluster(160);
        assert!(dense.prefill_clusters(32_000) > sparse.prefill_clusters(32_000));
    }

    #[test]
    fn validate_rejects_zero_fields() {
        assert!(ClusterKvConfig::default()
            .with_tokens_per_cluster(0)
            .validate()
            .is_err());
        assert!(ClusterKvConfig::default()
            .with_decode_cluster_period(0)
            .validate()
            .is_err());
        assert!(ClusterKvConfig::default()
            .with_decode_new_clusters(0)
            .validate()
            .is_err());
        let c = ClusterKvConfig {
            min_clusters: 0,
            ..ClusterKvConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ClusterKvConfig {
            max_kmeans_iters: 0,
            ..ClusterKvConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn compression_config_is_lossless_by_default_and_validated() {
        let c = ClusterKvConfig::default();
        assert!(c.compression.is_lossless());
        let lossy = c.with_compression(CompressionConfig::int8().with_merge_threshold(0.1));
        assert!(!lossy.compression.is_lossless());
        assert!(lossy.validate().is_ok());
        let bad = ClusterKvConfig::default()
            .with_compression(CompressionConfig::int8().with_merge_threshold(2.0));
        assert!(bad.validate().is_err());
    }
}
