//! # ClusterKV
//!
//! Reproduction of *ClusterKV: Manipulating LLM KV Cache in Semantic Space
//! for Recallable Compression* (DAC 2025).
//!
//! ClusterKV compresses the KV cache used during autoregressive decoding by
//! selecting, at every step, a budget `B` of tokens to attend to. Selection
//! is **recallable** (evicted tokens can come back at later steps) and
//! operates at the granularity of **semantic clusters**: groups of tokens
//! whose key vectors are close in cosine distance.
//!
//! The crate is organised to mirror the paper:
//!
//! * [`config`] — all algorithm parameters (`C0 = L/80`, sink tokens,
//!   incremental clustering period `m`, recency window `R`, distance
//!   metric) with the paper's defaults.
//! * [`distance`] — the semantic distance (§III-B): cosine, plus L2 and
//!   inner-product alternatives used in the Fig. 11b ablation.
//! * [`kmeans`] — k-means over key vectors under a configurable distance.
//! * [`clustering`] — [`SemanticClustering`]: attention-sink handling,
//!   prefill clustering and incremental decode clustering (§III-B).
//! * [`metadata`] — cluster sizes, prefix sums and label-sorted token
//!   indices (the Fig. 8 metadata).
//! * [`selection`] — greedy cluster selection under a token budget with
//!   trimming of the last cluster (§III-C, §IV-C).
//! * [`policy`] — [`ClusterKvSelector`], the
//!   [`TokenSelector`](clusterkv_model::TokenSelector) implementation that
//!   plugs into the inference engine, and its factory.
//!
//! The cluster-granularity GPU cache of §IV-D lives in `clusterkv-kvcache`
//! as the session-level tiered hierarchy ([`ClusterCache`], re-exported
//! here): plans produced by [`ClusterKvSelector`] carry their cluster page
//! decomposition, and the serving engine resolves residency against a
//! capacity-bounded GPU resident set (DESIGN.md §3).
//!
//! # Quickstart
//!
//! Build a [`ServeEngine`](clusterkv_model::ServeEngine) with ClusterKV as
//! the selection policy, then serve any number of concurrent sessions:
//!
//! ```
//! use clusterkv::{ClusterKvConfig, ClusterKvFactory};
//! use clusterkv_kvcache::types::Budget;
//! use clusterkv_model::{ModelConfig, ServeEngine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let factory = ClusterKvFactory::new(ClusterKvConfig::default());
//! let mut engine = ServeEngine::builder(ModelConfig::tiny())
//!     .synthetic_weights(42)
//!     .budget(Budget::new(64))
//!     .policy(Box::new(factory))
//!     .build()?;
//! let a = engine.create_session()?;
//! let b = engine.create_session()?;
//! engine.prefill(a, &[1, 2, 3, 4, 5, 6, 7, 8])?;
//! engine.prefill(b, &[8, 7, 6, 5, 4, 3, 2, 1])?;
//! for _ in 0..4 {
//!     let outputs = engine.decode_batch(&[a, b])?;
//!     assert_eq!(outputs.len(), 2);
//! }
//! assert_eq!(engine.release(a)?.generated_tokens, 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod clustering;
pub mod config;
pub mod distance;
pub mod kmeans;
pub mod metadata;
pub mod policy;
pub mod selection;

pub use clustering::SemanticClustering;
pub use clusterkv_kvcache::cluster_cache::{ClusterCache, ClusterCacheConfig, PageRequest};
pub use config::ClusterKvConfig;
pub use distance::DistanceMetric;
pub use kmeans::{assign_labels, assign_labels_reference, KMeans};
pub use metadata::ClusterMetadata;
pub use policy::{ClusterKvFactory, ClusterKvSelector};
pub use selection::{lookahead_clusters_ws, select_clusters, select_clusters_ws, SelectionResult};
