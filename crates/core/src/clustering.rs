//! Semantic clustering state of a single attention head.
//!
//! [`SemanticClustering`] owns the cluster centroids and metadata of one head
//! across the whole inference:
//!
//! * After prefill, the keys of the prompt (minus the first
//!   [`sink_tokens`](crate::ClusterKvConfig::sink_tokens) attention sinks)
//!   are clustered into `C0 = L / 80` clusters (§III-B).
//! * During decoding, generated keys are buffered and clustered **among
//!   themselves** every `m` steps into `C+` additional clusters, so the cost
//!   of re-clustering the whole context is never paid (§III-B).
//!
//! Tokens that are not covered by any cluster — the attention sinks and the
//! not-yet-clustered decode buffer — are reported separately so the selection
//! step can always retain them.

use crate::config::ClusterKvConfig;
use crate::kmeans::KMeans;
use crate::metadata::ClusterMetadata;
use clusterkv_tensor::kernels::{norm_sq, row_norms_sq_into, Workspace};
use clusterkv_tensor::rng::derive_seed;
use clusterkv_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Clustering state of one attention head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SemanticClustering {
    config: ClusterKvConfig,
    head_dim: usize,
    /// Centroids of all clusters created so far (`C × d`).
    centroids: Matrix,
    /// Cached squared norms `‖c‖²`, aligned with the rows of `centroids` and
    /// extended whenever clusters are created (prefill, incremental flush).
    /// Feeds Gram-trick rescoring without recomputation; consistency with
    /// recomputation is pinned by the norm-cache tests.
    centroid_norms: Vec<f32>,
    /// Sizes / prefix sums / sorted indices of those clusters.
    metadata: ClusterMetadata,
    /// Positions of the attention-sink tokens (always retained).
    sinks: Vec<usize>,
    /// Decode-time keys awaiting incremental clustering: `(position, key)`.
    buffer: Vec<(usize, Vec<f32>)>,
    /// Cached squared norms `‖x‖²` of the buffered keys, maintained per
    /// append so the incremental k-means sweep never recomputes them.
    buffer_norms: Vec<f32>,
    /// Scratch workspace reused by every k-means sweep of this head.
    ws: Workspace,
    /// Number of incremental clustering runs performed so far.
    incremental_runs: usize,
    /// Total number of tokens observed (prefill + decode).
    num_tokens: usize,
}

impl SemanticClustering {
    /// Create empty clustering state for a head of dimension `head_dim`.
    pub fn new(config: ClusterKvConfig, head_dim: usize) -> Self {
        Self {
            config,
            head_dim,
            centroids: Matrix::zeros(0, head_dim),
            centroid_norms: Vec::new(),
            metadata: ClusterMetadata::new(),
            sinks: Vec::new(),
            buffer: Vec::new(),
            buffer_norms: Vec::new(),
            ws: Workspace::new(),
            incremental_runs: 0,
            num_tokens: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ClusterKvConfig {
        &self.config
    }

    /// Dimensionality of the clustered key vectors.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Cluster centroids (`C × d`).
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Cached squared centroid norms (`‖c‖²`), aligned with
    /// [`centroids`](Self::centroids). Maintained incrementally as clusters
    /// are created; always consistent with recomputing
    /// [`norm_sq`] over the rows.
    pub fn centroid_norms(&self) -> &[f32] {
        &self.centroid_norms
    }

    /// Cached squared norms of the pending (buffered) decode keys, in buffer
    /// order — the `‖x‖²` side of the Gram trick for the next incremental
    /// sweep.
    pub fn pending_norms(&self) -> &[f32] {
        &self.buffer_norms
    }

    /// Cluster metadata (sizes, prefix sums, token indices).
    pub fn metadata(&self) -> &ClusterMetadata {
        &self.metadata
    }

    /// Positions of the attention-sink tokens.
    pub fn sink_indices(&self) -> &[usize] {
        &self.sinks
    }

    /// Positions of decode tokens not yet covered by a cluster.
    pub fn pending_indices(&self) -> Vec<usize> {
        self.buffer.iter().map(|(p, _)| *p).collect()
    }

    /// Number of clusters created so far.
    pub fn num_clusters(&self) -> usize {
        self.centroids.rows()
    }

    /// Number of incremental (decode-time) clustering runs performed.
    pub fn incremental_runs(&self) -> usize {
        self.incremental_runs
    }

    /// Total number of tokens observed.
    pub fn num_tokens(&self) -> usize {
        self.num_tokens
    }

    /// Cluster the prompt keys. Rows of `keys` are token positions
    /// `0..keys.rows()`. The first `sink_tokens` positions are kept aside as
    /// attention sinks; the rest are clustered into
    /// [`ClusterKvConfig::prefill_clusters`] clusters.
    ///
    /// # Panics
    ///
    /// Panics if `keys.cols() != head_dim` or if called more than once.
    pub fn prefill(&mut self, keys: &Matrix) {
        let mut norms = Vec::new();
        row_norms_sq_into(keys, &mut norms);
        self.prefill_with_norms(keys, &norms);
    }

    /// [`prefill`](Self::prefill) with caller-cached squared row norms
    /// (`‖x‖²`, one per row of `keys`) — the path taken by the ClusterKV
    /// selector, whose chunked-prefill buffer maintains the norms
    /// incrementally as chunks arrive.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch, a second prefill, or a norm cache whose
    /// length differs from `keys.rows()`.
    pub fn prefill_with_norms(&mut self, keys: &Matrix, norms: &[f32]) {
        assert_eq!(keys.cols(), self.head_dim, "prefill key dim mismatch");
        assert_eq!(self.num_tokens, 0, "prefill may only be called once");
        assert_eq!(norms.len(), keys.rows(), "norm cache out of date");
        let len = keys.rows();
        self.num_tokens = len;
        let sink = self.config.sink_tokens.min(len);
        self.sinks = (0..sink).collect();

        let clusterable = len - sink;
        if clusterable == 0 {
            return;
        }
        let c0 = self.config.prefill_clusters(len);
        let kmeans = KMeans::new(
            self.config.distance,
            self.config.max_kmeans_iters,
            derive_seed(self.config.seed, PREFILL_SEED_LABEL),
        );
        let clustered_keys = keys.slice_rows(sink, len);
        let result = kmeans.fit_with_norms(&clustered_keys, &norms[sink..], c0, &mut self.ws);
        let assignments: Vec<(usize, usize)> = result
            .labels
            .iter()
            .enumerate()
            .map(|(i, &label)| (sink + i, label))
            .collect();
        self.metadata.extend(&assignments, result.num_clusters());
        self.centroids
            .extend_rows(&result.centroids)
            .expect("centroid dims match");
        self.centroid_norms
            .extend_from_slice(&result.centroid_norms);
    }

    /// Observe a decode-time key at absolute position `position`. Buffers the
    /// key and, once `decode_cluster_period` keys have accumulated, clusters
    /// them into `decode_new_clusters` new clusters.
    ///
    /// # Panics
    ///
    /// Panics if the key's length differs from `head_dim`.
    pub fn append(&mut self, position: usize, key: &[f32]) {
        assert_eq!(key.len(), self.head_dim, "append key dim mismatch");
        self.buffer.push((position, key.to_vec()));
        // Maintain the ‖x‖² cache per append: one blocked self-dot now saves
        // recomputing every buffered norm at each sweep iteration later.
        self.buffer_norms.push(norm_sq(key));
        self.num_tokens = self.num_tokens.max(position + 1);
        if self.buffer.len() >= self.config.decode_cluster_period {
            self.flush_pending();
        }
    }

    /// Force incremental clustering of whatever is currently buffered
    /// (normally called automatically every `m` appends).
    pub fn flush_pending(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut keys = Matrix::zeros(0, self.head_dim);
        keys.reserve_rows(self.buffer.len());
        for (_, key) in &self.buffer {
            keys.push_row(key).expect("buffer keys have equal dims");
        }
        let k = self.config.decode_new_clusters.min(keys.rows());
        let kmeans = KMeans::new(
            self.config.distance,
            self.config.max_kmeans_iters,
            derive_seed(self.config.seed, 0xD000 + self.incremental_runs as u64),
        );
        let result = kmeans.fit_with_norms(&keys, &self.buffer_norms, k, &mut self.ws);
        let assignments: Vec<(usize, usize)> = result
            .labels
            .iter()
            .enumerate()
            .map(|(i, &label)| (self.buffer[i].0, label))
            .collect();
        self.metadata.extend(&assignments, result.num_clusters());
        self.centroids
            .extend_rows(&result.centroids)
            .expect("centroid dims match");
        self.centroid_norms
            .extend_from_slice(&result.centroid_norms);
        self.incremental_runs += 1;
        self.buffer.clear();
        self.buffer_norms.clear();
    }
}

/// Seed-derivation label for the prefill clustering run (decode runs use
/// `0xD000 + run_index`).
const PREFILL_SEED_LABEL: u64 = 0xA11F;

#[cfg(test)]
mod tests {
    use super::*;
    use clusterkv_tensor::rng::{gaussian_vec, seeded};

    fn random_keys(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        Matrix::from_rows(
            (0..n)
                .map(|_| gaussian_vec(&mut rng, dim, 0.0, 1.0))
                .collect(),
        )
        .unwrap()
    }

    fn config_small() -> ClusterKvConfig {
        ClusterKvConfig::default()
            .with_sink_tokens(4)
            .with_tokens_per_cluster(8)
            .with_decode_cluster_period(6)
            .with_decode_new_clusters(2)
    }

    #[test]
    fn prefill_separates_sinks_from_clusters() {
        let mut sc = SemanticClustering::new(config_small(), 8);
        sc.prefill(&random_keys(40, 8, 1));
        assert_eq!(sc.sink_indices(), &[0, 1, 2, 3]);
        assert_eq!(sc.num_tokens(), 40);
        // 36 clusterable tokens / 8 per cluster = 5 (>= min_clusters 4).
        assert_eq!(sc.num_clusters(), 5);
        assert_eq!(sc.metadata().num_tokens(), 36);
        // Sinks are not inside any cluster.
        for c in 0..sc.num_clusters() {
            for &t in sc.metadata().cluster_tokens(c) {
                assert!(t >= 4, "sink token {t} must not be clustered");
            }
        }
    }

    #[test]
    fn every_non_sink_token_is_in_exactly_one_cluster() {
        let mut sc = SemanticClustering::new(config_small(), 8);
        sc.prefill(&random_keys(50, 8, 2));
        let mut covered: Vec<usize> = (0..sc.num_clusters())
            .flat_map(|c| sc.metadata().cluster_tokens(c).to_vec())
            .collect();
        covered.sort_unstable();
        assert_eq!(covered, (4..50).collect::<Vec<_>>());
    }

    #[test]
    fn short_prompt_is_all_sinks() {
        let mut sc = SemanticClustering::new(config_small(), 8);
        sc.prefill(&random_keys(3, 8, 3));
        assert_eq!(sc.sink_indices(), &[0, 1, 2]);
        assert_eq!(sc.num_clusters(), 0);
    }

    #[test]
    fn decode_keys_buffer_then_cluster() {
        let mut sc = SemanticClustering::new(config_small(), 8);
        sc.prefill(&random_keys(20, 8, 4));
        let clusters_after_prefill = sc.num_clusters();
        // Five appends: below the period of 6, so still pending.
        for i in 0..5 {
            sc.append(20 + i, &[0.1 * i as f32; 8]);
        }
        assert_eq!(sc.pending_indices().len(), 5);
        assert_eq!(sc.num_clusters(), clusters_after_prefill);
        // Sixth append triggers incremental clustering into 2 new clusters.
        sc.append(25, &[1.0; 8]);
        assert_eq!(sc.pending_indices().len(), 0);
        assert_eq!(sc.num_clusters(), clusters_after_prefill + 2);
        assert_eq!(sc.incremental_runs(), 1);
        assert_eq!(sc.num_tokens(), 26);
    }

    #[test]
    fn flush_pending_handles_partial_buffer() {
        let mut sc = SemanticClustering::new(config_small(), 8);
        sc.prefill(&random_keys(20, 8, 5));
        sc.append(20, &[1.0; 8]);
        sc.flush_pending();
        assert_eq!(sc.pending_indices().len(), 0);
        // A single token forms a single cluster (k clamped to rows).
        assert_eq!(sc.metadata().cluster_tokens(sc.num_clusters() - 1), &[20]);
        // Flushing an empty buffer is a no-op.
        let before = sc.num_clusters();
        sc.flush_pending();
        assert_eq!(sc.num_clusters(), before);
    }

    #[test]
    fn centroid_count_matches_metadata() {
        let mut sc = SemanticClustering::new(config_small(), 8);
        sc.prefill(&random_keys(64, 8, 6));
        for i in 0..12 {
            sc.append(
                64 + i,
                &gaussian_vec(&mut seeded(100 + i as u64), 8, 0.0, 1.0),
            );
        }
        sc.flush_pending();
        assert_eq!(sc.num_clusters(), sc.metadata().num_clusters());
        assert_eq!(sc.centroids().rows(), sc.num_clusters());
        assert_eq!(sc.centroids().cols(), 8);
    }

    /// The norm-cache invariant: whatever sequence of prefills, appends and
    /// flushes ran, the cached `‖c‖²`/`‖x‖²` values equal recomputation.
    fn assert_norm_caches_consistent(sc: &SemanticClustering) {
        assert_eq!(sc.centroid_norms().len(), sc.centroids().rows());
        for (c, row) in sc.centroids().iter_rows().enumerate() {
            assert_eq!(
                sc.centroid_norms()[c],
                clusterkv_tensor::kernels::norm_sq(row),
                "centroid {c} norm cache stale"
            );
        }
        assert_eq!(sc.pending_norms().len(), sc.pending_indices().len());
    }

    #[test]
    fn norm_caches_survive_incremental_updates_and_flushes() {
        let mut sc = SemanticClustering::new(config_small(), 8);
        sc.prefill(&random_keys(40, 8, 21));
        assert_norm_caches_consistent(&sc);
        let mut rng = seeded(22);
        // Appends below the period keep pending norms aligned with the
        // buffer; crossing the period flushes both together.
        for i in 0..15 {
            sc.append(40 + i, &gaussian_vec(&mut rng, 8, 0.0, 1.0));
            assert_norm_caches_consistent(&sc);
        }
        // Partial-buffer flush reconciles too.
        sc.append(55, &[0.25; 8]);
        sc.flush_pending();
        assert_eq!(sc.pending_norms().len(), 0);
        assert_norm_caches_consistent(&sc);
    }

    #[test]
    fn prefill_with_norms_matches_plain_prefill() {
        let keys = random_keys(48, 8, 31);
        let mut plain = SemanticClustering::new(config_small(), 8);
        plain.prefill(&keys);
        let mut cached = SemanticClustering::new(config_small(), 8);
        let mut norms = Vec::new();
        clusterkv_tensor::kernels::row_norms_sq_into(&keys, &mut norms);
        cached.prefill_with_norms(&keys, &norms);
        assert_eq!(plain.centroids(), cached.centroids());
        assert_eq!(plain.centroid_norms(), cached.centroid_norms());
        assert_eq!(plain.metadata().sizes(), cached.metadata().sizes());
        assert_norm_caches_consistent(&cached);
    }

    #[test]
    #[should_panic]
    fn stale_norm_cache_panics() {
        let keys = random_keys(20, 8, 33);
        let mut sc = SemanticClustering::new(config_small(), 8);
        sc.prefill_with_norms(&keys, &[1.0; 3]); // wrong length
    }

    #[test]
    #[should_panic]
    fn double_prefill_panics() {
        let mut sc = SemanticClustering::new(config_small(), 8);
        sc.prefill(&random_keys(10, 8, 7));
        sc.prefill(&random_keys(10, 8, 8));
    }

    #[test]
    #[should_panic]
    fn wrong_key_dim_panics() {
        let mut sc = SemanticClustering::new(config_small(), 8);
        sc.prefill(&random_keys(10, 4, 9));
    }
}
