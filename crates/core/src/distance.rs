//! Semantic distance metrics for clustering key vectors.
//!
//! The paper (§III-B) defines the semantic distance between tokens `i` and
//! `j` as `D(i, j) = 1 − ⟨k_i, k_j⟩ / (|k_i|·|k_j|)` — one minus cosine
//! similarity — and motivates that choice by the outlier channels present in
//! key vectors, which distort L2 and inner-product distances. The Fig. 11b
//! ablation compares all three; this module implements them behind a common
//! enum.

use clusterkv_tensor::vector::{cosine_distance, dot, l2_distance_sq};
use serde::{Deserialize, Serialize};

/// Distance metric used to assign key vectors to cluster centroids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistanceMetric {
    /// `1 − cos(a, b)` — the paper's choice.
    Cosine,
    /// Squared Euclidean distance.
    L2,
    /// Negative inner product (larger inner product = closer).
    InnerProduct,
}

impl DistanceMetric {
    /// Distance between two vectors under this metric. Smaller is closer for
    /// every variant.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            DistanceMetric::Cosine => cosine_distance(a, b),
            DistanceMetric::L2 => l2_distance_sq(a, b),
            DistanceMetric::InnerProduct => -dot(a, b),
        }
    }

    /// Distance reconstructed from precomputed parts: the inner product
    /// `⟨a,b⟩` and the squared norms `‖a‖²`, `‖b‖²`. This is the Gram-trick
    /// evaluation the blocked k-means assignment uses (`‖a−b‖² =
    /// ‖a‖² − 2⟨a,b⟩ + ‖b‖²`): norms are computed once per row/centroid and
    /// cached, so each pair costs one dot product instead of three.
    ///
    /// Agrees with [`distance`](Self::distance) up to floating-point
    /// reassociation (property-tested within `1e-4` relative error); the
    /// zero-norm cosine convention (distance 1) is preserved exactly.
    #[inline]
    pub fn distance_from_parts(self, dot: f32, a_norm_sq: f32, b_norm_sq: f32) -> f32 {
        match self {
            DistanceMetric::Cosine => {
                let denom = a_norm_sq.sqrt() * b_norm_sq.sqrt();
                if denom == 0.0 {
                    1.0
                } else {
                    1.0 - dot / denom
                }
            }
            DistanceMetric::L2 => a_norm_sq - 2.0 * dot + b_norm_sq,
            DistanceMetric::InnerProduct => -dot,
        }
    }

    /// Index of the closest centroid to `v`, or `None` when `centroids` is
    /// empty. Ties break toward the lower index. NaN distances are never
    /// selected — the same contract as
    /// [`argmin`](clusterkv_tensor::vector::argmin) — so `None` is also
    /// returned when every candidate's distance is NaN.
    pub fn nearest<'a, I>(self, v: &[f32], centroids: I) -> Option<usize>
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut best: Option<(usize, f32)> = None;
        for (i, c) in centroids.into_iter().enumerate() {
            let d = self.distance(v, c);
            // A NaN distance must be skipped explicitly: `d >= bd` is false
            // for NaN, so without this guard a NaN candidate would *replace*
            // the best — the opposite of the contract above.
            if d.is_nan() {
                continue;
            }
            match best {
                Some((_, bd)) if d >= bd => {}
                _ => best = Some((i, d)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// All metrics, in the order they appear in the Fig. 11b ablation.
    pub fn all() -> [DistanceMetric; 3] {
        [
            DistanceMetric::Cosine,
            DistanceMetric::L2,
            DistanceMetric::InnerProduct,
        ]
    }
}

impl std::fmt::Display for DistanceMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistanceMetric::Cosine => write!(f, "cosine"),
            DistanceMetric::L2 => write!(f, "l2"),
            DistanceMetric::InnerProduct => write!(f, "inner-product"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cosine_distance_ignores_magnitude() {
        let a = [1.0, 1.0];
        let b = [10.0, 10.0];
        assert!(DistanceMetric::Cosine.distance(&a, &b) < 1e-6);
        assert!(DistanceMetric::L2.distance(&a, &b) > 1.0);
    }

    #[test]
    fn inner_product_prefers_aligned_large_vectors() {
        let q = [1.0, 0.0];
        let small_aligned = [0.5, 0.0];
        let large_aligned = [5.0, 0.0];
        let ip = DistanceMetric::InnerProduct;
        assert!(ip.distance(&q, &large_aligned) < ip.distance(&q, &small_aligned));
    }

    #[test]
    fn nearest_picks_minimum_distance() {
        let centroids: Vec<Vec<f32>> = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, 0.0]];
        let refs: Vec<&[f32]> = centroids.iter().map(|c| c.as_slice()).collect();
        let v = [0.9, 0.1];
        assert_eq!(
            DistanceMetric::Cosine.nearest(&v, refs.iter().copied()),
            Some(0)
        );
        assert_eq!(
            DistanceMetric::L2.nearest(&v, refs.iter().copied()),
            Some(0)
        );
        let v2 = [0.1, 0.9];
        assert_eq!(
            DistanceMetric::Cosine.nearest(&v2, refs.iter().copied()),
            Some(1)
        );
    }

    #[test]
    fn nearest_skips_nan_distances() {
        // Mirrors the argmax/argmin NaN tests: a NaN distance must never win.
        // Under L2, a centroid containing NaN yields a NaN distance.
        let good = vec![5.0f32, 0.0];
        let poisoned = vec![f32::NAN, 0.0];
        let v = [5.1f32, 0.0];
        // The poisoned centroid comes *after* the best: `d >= bd` is false
        // for NaN, so the unguarded update would have replaced the winner.
        let after: Vec<&[f32]> = vec![&good, &poisoned];
        assert_eq!(DistanceMetric::L2.nearest(&v, after), Some(0));
        // And before: it must not be retained as the initial best either.
        let before: Vec<&[f32]> = vec![&poisoned, &good];
        assert_eq!(DistanceMetric::L2.nearest(&v, before), Some(1));
        for metric in DistanceMetric::all() {
            let refs: Vec<&[f32]> = vec![&poisoned, &good, &poisoned];
            assert_eq!(metric.nearest(&v, refs), Some(1), "{metric}");
        }
    }

    #[test]
    fn nearest_of_all_nan_is_none() {
        let poisoned = vec![f32::NAN, f32::NAN];
        let refs: Vec<&[f32]> = vec![&poisoned, &poisoned];
        assert_eq!(DistanceMetric::Cosine.nearest(&[1.0, 0.0], refs), None);
    }

    #[test]
    fn nearest_of_empty_is_none() {
        assert_eq!(
            DistanceMetric::Cosine.nearest(&[1.0], std::iter::empty::<&[f32]>()),
            None
        );
    }

    #[test]
    fn outlier_channel_breaks_l2_but_not_cosine() {
        // Two keys pointing in the same direction, but one has an amplified
        // outlier channel. Under cosine they remain close; under L2 the
        // outlier dominates and they appear far apart — the paper's argument
        // for cosine distance.
        let base = [1.0f32, 1.0, 1.0, 1.0];
        let outlier = [8.0f32, 8.0, 8.0, 8.0]; // same direction, big magnitude
        let different_direction = [1.0f32, -1.0, 1.0, -1.0];

        let cos = DistanceMetric::Cosine;
        let l2 = DistanceMetric::L2;
        // Cosine: same-direction outlier is much closer than a genuinely
        // different direction.
        assert!(cos.distance(&base, &outlier) < cos.distance(&base, &different_direction));
        // L2: the magnitude outlier looks *farther* than the different
        // direction, which is the failure mode the paper describes.
        assert!(l2.distance(&base, &outlier) > l2.distance(&base, &different_direction));
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(DistanceMetric::Cosine.to_string(), "cosine");
        assert_eq!(DistanceMetric::L2.to_string(), "l2");
        assert_eq!(DistanceMetric::InnerProduct.to_string(), "inner-product");
        assert_eq!(DistanceMetric::all().len(), 3);
    }

    #[test]
    fn distance_from_parts_preserves_zero_norm_convention() {
        use clusterkv_tensor::kernels::norm_sq;
        use clusterkv_tensor::vector::dot as sdot;
        let zero = [0.0f32; 4];
        let b = [1.0f32, -2.0, 0.5, 3.0];
        let m = DistanceMetric::Cosine;
        assert_eq!(
            m.distance_from_parts(sdot(&zero, &b), norm_sq(&zero), norm_sq(&b)),
            m.distance(&zero, &b)
        );
        assert_eq!(m.distance(&zero, &b), 1.0);
    }

    proptest! {
        #[test]
        fn distance_from_parts_matches_direct(
            a in proptest::collection::vec(-5.0f32..5.0, 8),
            b in proptest::collection::vec(-5.0f32..5.0, 8),
        ) {
            use clusterkv_tensor::kernels::{dot_blocked, norm_sq};
            for m in DistanceMetric::all() {
                let direct = m.distance(&a, &b);
                let parts = m.distance_from_parts(dot_blocked(&a, &b), norm_sq(&a), norm_sq(&b));
                let scale = direct.abs().max(parts.abs()).max(1.0);
                prop_assert!((direct - parts).abs() <= 1e-4 * scale,
                    "{m}: {direct} vs {parts}");
            }
        }

        #[test]
        fn distances_are_symmetric_for_cosine_and_l2(
            a in proptest::collection::vec(-5.0f32..5.0, 8),
            b in proptest::collection::vec(-5.0f32..5.0, 8),
        ) {
            for m in [DistanceMetric::Cosine, DistanceMetric::L2] {
                prop_assert!((m.distance(&a, &b) - m.distance(&b, &a)).abs() < 1e-4);
            }
        }

        #[test]
        fn self_distance_is_minimal_for_cosine(
            a in proptest::collection::vec(0.1f32..5.0, 8),
            b in proptest::collection::vec(-5.0f32..5.0, 8),
        ) {
            let m = DistanceMetric::Cosine;
            prop_assert!(m.distance(&a, &a) <= m.distance(&a, &b) + 1e-4);
        }

        #[test]
        fn nearest_index_is_in_range(
            v in proptest::collection::vec(-5.0f32..5.0, 4),
            centroids in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 4), 1..8),
        ) {
            for m in DistanceMetric::all() {
                let idx = m.nearest(&v, centroids.iter().map(|c| c.as_slice())).unwrap();
                prop_assert!(idx < centroids.len());
            }
        }
    }
}
