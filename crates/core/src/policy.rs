//! The ClusterKV selection policy, pluggable into the inference engine.
//!
//! [`ClusterKvSelector`] wires the pieces of the algorithm together exactly
//! as the system of Fig. 5 does for one head: semantic clustering at prefill,
//! incremental clustering during decoding, centroid-based selection at every
//! step, and a cluster-granularity cache that turns repeated selections into
//! GPU-cache hits instead of PCIe transfers.

use crate::cache::ClusterCache;
use crate::clustering::SemanticClustering;
use crate::config::ClusterKvConfig;
use crate::selection::select_clusters;
use clusterkv_kvcache::stats::{CacheStats, TransferStats};
use clusterkv_kvcache::types::{Budget, Bytes};
use clusterkv_model::policy::{HeadContext, PolicyStats, SelectorFactory, TokenSelector};
use clusterkv_tensor::rng::derive_seed;
use clusterkv_tensor::Matrix;

/// ClusterKV selection state for a single attention head.
#[derive(Debug, Clone)]
pub struct ClusterKvSelector {
    head_dim: usize,
    clustering: SemanticClustering,
    cache: ClusterCache,
    scored_vectors: u64,
    transfer: TransferStats,
}

impl ClusterKvSelector {
    /// Create a selector for a head of dimension `head_dim`.
    pub fn new(config: ClusterKvConfig, head_dim: usize) -> Self {
        Self {
            head_dim,
            clustering: SemanticClustering::new(config, head_dim),
            cache: ClusterCache::new(config.recency_window),
            scored_vectors: 0,
            transfer: TransferStats::new(),
        }
    }

    /// The clustering state (centroids, metadata, sinks, pending tokens).
    pub fn clustering(&self) -> &SemanticClustering {
        &self.clustering
    }

    /// Token-level hit/miss statistics of the cluster cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Host-to-device transfer accounting caused by cache misses.
    pub fn transfer_stats(&self) -> TransferStats {
        self.transfer
    }
}

impl TokenSelector for ClusterKvSelector {
    fn name(&self) -> &str {
        "ClusterKV"
    }

    fn on_prefill(&mut self, keys: &Matrix) {
        self.clustering.prefill(keys);
    }

    fn on_append(&mut self, position: usize, key: &[f32]) {
        self.clustering.append(position, key);
    }

    fn select(&mut self, query: &[f32], num_tokens: usize, budget: Budget) -> Vec<usize> {
        // When the whole context fits in the budget, compression is a no-op.
        if budget.covers(num_tokens) {
            return (0..num_tokens).collect();
        }

        let result = select_clusters(query, &self.clustering, budget);
        self.scored_vectors += result.scored_centroids as u64;

        // Model the cluster-granularity GPU cache: only missed clusters cost
        // a PCIe transfer.
        let metadata = self.clustering.metadata();
        let access = self
            .cache
            .access(&result.selected_clusters, |c| metadata.cluster_size(c));
        if access.missed_tokens > 0 {
            let bytes = Bytes::of_f16(2 * access.missed_tokens * self.head_dim);
            self.transfer.record(access.missed_tokens as u64, bytes);
        }

        result.token_indices
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            scored_vectors: self.scored_vectors,
            transfer: self.transfer,
            cache: self.cache.stats(),
        }
    }
}

/// Factory creating one [`ClusterKvSelector`] per head, with per-head seeds
/// derived from the configured seed so clustering initialisation differs
/// across heads but stays reproducible.
#[derive(Debug, Clone, Copy)]
pub struct ClusterKvFactory {
    config: ClusterKvConfig,
}

impl ClusterKvFactory {
    /// Create a factory from a configuration.
    pub fn new(config: ClusterKvConfig) -> Self {
        Self { config }
    }

    /// The configuration used for every created selector.
    pub fn config(&self) -> &ClusterKvConfig {
        &self.config
    }
}

impl Default for ClusterKvFactory {
    fn default() -> Self {
        Self::new(ClusterKvConfig::default())
    }
}

impl SelectorFactory for ClusterKvFactory {
    fn name(&self) -> &str {
        "ClusterKV"
    }

    fn create(&self, ctx: HeadContext) -> Box<dyn TokenSelector> {
        let per_head_seed = derive_seed(
            self.config.seed,
            (ctx.layer as u64) << 16 | ctx.head as u64,
        );
        let config = self.config.with_seed(per_head_seed);
        Box::new(ClusterKvSelector::new(config, ctx.head_dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterkv_tensor::rng::{gaussian_vec, seeded};

    fn test_config() -> ClusterKvConfig {
        ClusterKvConfig::default()
            .with_sink_tokens(4)
            .with_tokens_per_cluster(8)
            .with_decode_cluster_period(8)
            .with_decode_new_clusters(2)
    }

    fn prefill_keys(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        Matrix::from_rows((0..n).map(|_| gaussian_vec(&mut rng, dim, 0.0, 1.0)).collect()).unwrap()
    }

    #[test]
    fn small_context_bypasses_selection() {
        let mut sel = ClusterKvSelector::new(test_config(), 8);
        sel.on_prefill(&prefill_keys(10, 8, 1));
        let out = sel.select(&[0.0; 8], 10, Budget::new(64));
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(sel.stats().scored_vectors, 0);
    }

    #[test]
    fn selection_respects_budget_and_is_unique() {
        let mut sel = ClusterKvSelector::new(test_config(), 8);
        sel.on_prefill(&prefill_keys(80, 8, 2));
        let q = gaussian_vec(&mut seeded(3), 8, 0.0, 1.0);
        let out = sel.select(&q, 80, Budget::new(24));
        assert!(out.len() <= 24);
        assert!(!out.is_empty());
        let set: std::collections::HashSet<_> = out.iter().collect();
        assert_eq!(set.len(), out.len());
        assert!(out.iter().all(|&t| t < 80));
        assert!(sel.stats().scored_vectors > 0);
    }

    #[test]
    fn repeated_queries_hit_the_cluster_cache() {
        let mut sel = ClusterKvSelector::new(test_config(), 8);
        sel.on_prefill(&prefill_keys(80, 8, 4));
        let q = gaussian_vec(&mut seeded(5), 8, 0.0, 1.0);
        sel.select(&q, 80, Budget::new(24));
        let misses_after_first = sel.cache_stats().misses;
        assert!(misses_after_first > 0);
        // The same query selects the same clusters, which are now cached.
        sel.select(&q, 80, Budget::new(24));
        let stats = sel.cache_stats();
        assert_eq!(stats.misses, misses_after_first, "no new misses expected");
        assert!(stats.hits > 0);
        // Transfers were only recorded for the misses.
        assert_eq!(sel.transfer_stats().tokens_moved, misses_after_first);
    }

    #[test]
    fn decode_appends_feed_incremental_clustering() {
        let mut sel = ClusterKvSelector::new(test_config(), 8);
        sel.on_prefill(&prefill_keys(40, 8, 6));
        let clusters_before = sel.clustering().num_clusters();
        let mut rng = seeded(7);
        for i in 0..8 {
            sel.on_append(40 + i, &gaussian_vec(&mut rng, 8, 0.0, 1.0));
        }
        assert_eq!(sel.clustering().num_clusters(), clusters_before + 2);
        // Newly clustered decode tokens are selectable.
        let q = gaussian_vec(&mut rng, 8, 0.0, 1.0);
        let out = sel.select(&q, 48, Budget::new(20));
        assert!(out.len() <= 20);
    }

    #[test]
    fn factory_creates_per_head_seeds() {
        let factory = ClusterKvFactory::new(test_config());
        assert_eq!(factory.name(), "ClusterKV");
        assert_eq!(factory.config().sink_tokens, 4);
        let a = factory.create(HeadContext { layer: 0, head: 0, head_dim: 8 });
        let b = factory.create(HeadContext { layer: 0, head: 1, head_dim: 8 });
        // Different heads are independent objects with their own state.
        assert_eq!(a.name(), "ClusterKV");
        assert_eq!(b.name(), "ClusterKV");
    }

    #[test]
    fn default_factory_uses_paper_config() {
        let f = ClusterKvFactory::default();
        assert_eq!(f.config().tokens_per_cluster, 80);
    }

    #[test]
    fn end_to_end_with_inference_engine() {
        use clusterkv_model::{InferenceEngine, ModelConfig};
        let factory = ClusterKvFactory::new(test_config());
        let mut engine = InferenceEngine::with_synthetic_weights(
            ModelConfig::tiny(),
            11,
            &factory,
            Budget::new(16),
        )
        .unwrap();
        let prompt: Vec<usize> = (0..40).map(|i| (i * 3) % 128).collect();
        let generated = engine.generate(&prompt, 5).unwrap();
        assert_eq!(generated.len(), 5);
        let stats = engine.policy_stats();
        assert!(stats.scored_vectors > 0, "selection ran on selective layers");
    }
}
