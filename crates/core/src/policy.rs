//! The ClusterKV selection policy, pluggable into the serving engine.
//!
//! [`ClusterKvSelector`] wires the pieces of the algorithm together exactly
//! as the system of Fig. 5 does for one head: semantic clustering at prefill,
//! incremental clustering during decoding and centroid-based selection at
//! every step. Every [`plan`] call returns the selected token indices, the
//! selection work of exactly that call (centroids scored) and the selection's
//! cluster-granularity page decomposition; the *residency* outcome (which
//! clusters hit the GPU cache vs. required a PCIe recall) is resolved by
//! whoever owns the session's tiered
//! [`ClusterCache`](clusterkv_kvcache::cluster_cache::ClusterCache) — the
//! serving engine or the episode harness (DESIGN.md §3).
//!
//! [`plan`]: clusterkv_model::policy::TokenSelector::plan

use crate::clustering::SemanticClustering;
use crate::config::ClusterKvConfig;
use crate::distance::DistanceMetric;
use crate::selection::{lookahead_clusters_ws, select_clusters_ws};
use clusterkv_kvcache::cluster_cache::PageRequest;
use clusterkv_kvcache::types::Bytes;
use clusterkv_model::policy::{
    CompressedPageRequest, HeadContext, KvResidency, ObserveEvent, PolicyStats, SelectionPlan,
    SelectionRequest, SelectorFactory, SharedPrefixState, TokenSelector,
};
use clusterkv_tensor::kernels::{norm_sq, Workspace};
use clusterkv_tensor::rng::derive_seed;
use clusterkv_tensor::Matrix;
use std::sync::Arc;

/// ClusterKV selection state for a single attention head.
#[derive(Debug, Clone)]
pub struct ClusterKvSelector {
    clustering: SemanticClustering,
    /// Prompt keys accumulated across `PrefillChunk` events, clustered as a
    /// whole on `PrefillDone`. Semantic clustering is a global pass over the
    /// prompt (k-means initialisation samples from *all* keys), so chunked
    /// prefill buffers and reconciles at the end rather than clustering each
    /// prefix — the only strategy whose final state is byte-identical to a
    /// monolithic prefill, which the serving parity suite requires. Nothing
    /// plans against a session mid-prefill, so no speculative prefix
    /// clusters are needed.
    chunk_buffer: Matrix,
    /// Squared norms `‖x‖²` of `chunk_buffer`'s rows, maintained per chunk
    /// so the reconcile-time clustering pass starts from cached norms.
    chunk_norms: Vec<f32>,
    /// Scratch reused by every `plan` call (centroid scores, rankings):
    /// after the first decode step the selection phase allocates nothing.
    ws: Workspace,
}

impl ClusterKvSelector {
    /// Create a selector for a head of dimension `head_dim`.
    pub fn new(config: ClusterKvConfig, head_dim: usize) -> Self {
        Self {
            clustering: SemanticClustering::new(config, head_dim),
            chunk_buffer: Matrix::zeros(0, head_dim),
            chunk_norms: Vec::new(),
            ws: Workspace::new(),
        }
    }

    /// The clustering state (centroids, metadata, sinks, pending tokens).
    pub fn clustering(&self) -> &SemanticClustering {
        &self.clustering
    }

    /// Squared norms cached for the not-yet-reconciled prefill chunks (test
    /// hook for the norm-cache consistency suite).
    pub fn chunk_norms(&self) -> &[f32] {
        &self.chunk_norms
    }

    /// Heap bytes currently held by this selector's scratch workspace
    /// (stable across steady-state decode steps; see DESIGN.md §6).
    pub fn workspace_bytes(&self) -> usize {
        self.ws.allocated_bytes()
    }

    /// Fingerprint of everything that determines this selector's
    /// post-prefill clustering state besides the prompt keys themselves:
    /// every [`ClusterKvConfig`] field (the per-head seed included — the
    /// factory derives it from `(layer, head)`, so cross-head adoption is
    /// structurally impossible) and the head dimension. Two selectors with
    /// equal fingerprints fed byte-identical prompt keys reconcile to
    /// byte-identical clustering state, which is exactly the precondition
    /// for sharing that state through the prefix store (DESIGN.md §8).
    fn prefill_fingerprint(&self) -> u64 {
        let c = self.clustering.config();
        let distance = match c.distance {
            DistanceMetric::Cosine => 0,
            DistanceMetric::L2 => 1,
            DistanceMetric::InnerProduct => 2,
        };
        [
            c.seed,
            c.sink_tokens as u64,
            c.tokens_per_cluster as u64,
            c.min_clusters as u64,
            distance,
            c.max_kmeans_iters as u64,
            c.decode_cluster_period as u64,
            c.decode_new_clusters as u64,
            c.compression.fingerprint_words()[0],
            c.compression.fingerprint_words()[1],
            self.clustering.head_dim() as u64,
        ]
        .into_iter()
        .fold(0x436c_7573_7465_724b, derive_seed) // "ClusterK"
    }
}

impl TokenSelector for ClusterKvSelector {
    fn name(&self) -> &str {
        "ClusterKV"
    }

    fn observe(&mut self, event: ObserveEvent<'_>) {
        match event {
            ObserveEvent::Prefill { keys } => self.clustering.prefill(keys),
            ObserveEvent::PrefillChunk { start, keys } => {
                debug_assert_eq!(start, self.chunk_buffer.rows(), "chunks must be contiguous");
                self.chunk_buffer
                    .extend_rows(keys)
                    .expect("chunk key dims consistent");
                // Norms are cached as the chunk arrives; the reconcile pass
                // hands them to the k-means sweep untouched.
                self.chunk_norms.reserve(keys.rows());
                for row in keys.iter_rows() {
                    self.chunk_norms.push(norm_sq(row));
                }
            }
            ObserveEvent::PrefillDone { total_tokens } => {
                debug_assert_eq!(
                    total_tokens,
                    self.chunk_buffer.rows(),
                    "chunks must cover the prompt"
                );
                let keys = std::mem::replace(
                    &mut self.chunk_buffer,
                    Matrix::zeros(0, self.clustering.head_dim()),
                );
                let norms = std::mem::take(&mut self.chunk_norms);
                self.clustering.prefill_with_norms(&keys, &norms);
            }
            ObserveEvent::Append { position, key } => self.clustering.append(position, key),
        }
    }

    fn plan(&mut self, request: SelectionRequest<'_>) -> SelectionPlan {
        // When the whole context fits in the budget, compression is a no-op.
        if request.budget.covers(request.num_tokens) {
            return SelectionPlan::full(request.num_tokens);
        }

        let result = select_clusters_ws(
            request.query,
            &self.clustering,
            request.budget,
            &mut self.ws,
        );
        let metadata = self.clustering.metadata();
        // Under a lossy compression config, paged clusters are recalled
        // through the compressed tier: the plan carries each page's member
        // positions so the engine can attend through the merged + quantized
        // representation (DESIGN.md §9). Lossless configs keep the
        // recall-exact Paged residency and its byte-parity guarantee.
        let residency = if self.clustering.config().compression.is_lossless() {
            KvResidency::Paged(result.page_requests(metadata))
        } else {
            KvResidency::Compressed(
                result
                    .page_requests(metadata)
                    .into_iter()
                    .zip(result.page_members(metadata))
                    .map(|(request, members)| CompressedPageRequest { request, members })
                    .collect(),
            )
        };
        let mut plan = SelectionPlan::new(result.token_indices).with_stats(PolicyStats {
            scored_vectors: result.scored_centroids as u64,
            ..PolicyStats::default()
        });
        plan.residency = residency;
        plan
    }

    fn prefetch_hint(
        &mut self,
        request: SelectionRequest<'_>,
        lookahead_tokens: usize,
    ) -> Vec<PageRequest> {
        // Contexts the budget covers never page, so there is nothing worth
        // staging.
        if request.budget.covers(request.num_tokens) {
            return Vec::new();
        }
        // One blocked matvec into the same selection workspace (DESIGN.md
        // §10): scratch-only, so the hint cannot perturb any later plan.
        let nominated = lookahead_clusters_ws(
            request.query,
            &self.clustering,
            request.budget,
            lookahead_tokens,
            &mut self.ws,
        );
        let metadata = self.clustering.metadata();
        self.ws.labels[..nominated]
            .iter()
            .map(|&c| PageRequest::new(c, metadata.cluster_size(c)))
            .collect()
    }

    fn page_table(&self) -> KvResidency {
        let metadata = self.clustering.metadata();
        if self.clustering.config().compression.is_lossless() {
            KvResidency::Paged(
                (0..metadata.num_clusters())
                    .map(|c| PageRequest::new(c, metadata.cluster_size(c)))
                    .collect(),
            )
        } else {
            KvResidency::Compressed(
                (0..metadata.num_clusters())
                    .map(|c| CompressedPageRequest::new(c, metadata.cluster_tokens(c).to_vec()))
                    .collect(),
            )
        }
    }

    fn export_prefill_state(&self) -> Option<SharedPrefixState> {
        // Only a reconciled selector has anything worth sharing: mid-prefill
        // the clustering is empty and the keys sit in the chunk buffer.
        if self.clustering.num_tokens() == 0 || self.chunk_buffer.rows() > 0 {
            return None;
        }
        let centroids = self.clustering.centroids();
        // Estimate of what the clone retains: centroid rows, their norm
        // cache, pending-token norms, and one assignment slot per token.
        let bytes = Bytes::of_f32(
            centroids.rows() * centroids.cols()
                + self.clustering.centroid_norms().len()
                + self.clustering.pending_norms().len(),
        ) + Bytes(4 * self.clustering.num_tokens() as u64);
        Some(SharedPrefixState {
            fingerprint: self.prefill_fingerprint(),
            bytes,
            state: Arc::new(self.clustering.clone()),
        })
    }

    fn adopt_prefill_state(&mut self, state: &SharedPrefixState, total_tokens: usize) -> bool {
        if state.fingerprint != self.prefill_fingerprint() {
            return false;
        }
        let Some(clustering) = state.state.downcast_ref::<SemanticClustering>() else {
            return false;
        };
        if clustering.num_tokens() != total_tokens {
            return false;
        }
        // The fingerprint pins config + seed + head_dim and the prefix-store
        // terminal node pins the exact token sequence, so this clone is
        // byte-identical to what reconciling our own chunk buffer would
        // produce — the k-means sweep is skipped outright. The buffered
        // chunks are dropped unreconciled.
        self.clustering = clustering.clone();
        self.chunk_buffer = Matrix::zeros(0, self.clustering.head_dim());
        self.chunk_norms.clear();
        true
    }
}

/// Factory creating one [`ClusterKvSelector`] per head, with per-head seeds
/// derived from the configured seed so clustering initialisation differs
/// across heads but stays reproducible.
#[derive(Debug, Clone, Copy)]
pub struct ClusterKvFactory {
    config: ClusterKvConfig,
}

impl ClusterKvFactory {
    /// Create a factory from a configuration.
    pub fn new(config: ClusterKvConfig) -> Self {
        Self { config }
    }

    /// The configuration used for every created selector.
    pub fn config(&self) -> &ClusterKvConfig {
        &self.config
    }
}

impl Default for ClusterKvFactory {
    fn default() -> Self {
        Self::new(ClusterKvConfig::default())
    }
}

impl SelectorFactory for ClusterKvFactory {
    fn name(&self) -> &str {
        "ClusterKV"
    }

    fn create(&self, ctx: HeadContext) -> Box<dyn TokenSelector> {
        let per_head_seed =
            derive_seed(self.config.seed, (ctx.layer as u64) << 16 | ctx.head as u64);
        let config = self.config.with_seed(per_head_seed);
        Box::new(ClusterKvSelector::new(config, ctx.head_dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterkv_kvcache::types::Budget;
    use clusterkv_tensor::rng::{gaussian_vec, seeded};
    use clusterkv_tensor::Matrix;

    fn test_config() -> ClusterKvConfig {
        ClusterKvConfig::default()
            .with_sink_tokens(4)
            .with_tokens_per_cluster(8)
            .with_decode_cluster_period(8)
            .with_decode_new_clusters(2)
    }

    fn prefill_keys(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        Matrix::from_rows(
            (0..n)
                .map(|_| gaussian_vec(&mut rng, dim, 0.0, 1.0))
                .collect(),
        )
        .unwrap()
    }

    fn observe_prefill(sel: &mut ClusterKvSelector, keys: &Matrix) {
        sel.observe(ObserveEvent::Prefill { keys });
    }

    #[test]
    fn small_context_bypasses_selection() {
        let mut sel = ClusterKvSelector::new(test_config(), 8);
        observe_prefill(&mut sel, &prefill_keys(10, 8, 1));
        let plan = sel.plan(SelectionRequest::new(&[0.0; 8], 10, Budget::new(64)));
        assert_eq!(plan.indices, (0..10).collect::<Vec<_>>());
        assert_eq!(plan.stats.scored_vectors, 0);
    }

    #[test]
    fn selection_respects_budget_and_is_unique() {
        let mut sel = ClusterKvSelector::new(test_config(), 8);
        observe_prefill(&mut sel, &prefill_keys(80, 8, 2));
        let q = gaussian_vec(&mut seeded(3), 8, 0.0, 1.0);
        let plan = sel.plan(SelectionRequest::new(&q, 80, Budget::new(24)));
        assert!(plan.len() <= 24);
        assert!(!plan.is_empty());
        let set: std::collections::HashSet<_> = plan.indices.iter().collect();
        assert_eq!(set.len(), plan.len());
        assert!(plan.indices.iter().all(|&t| t < 80));
        assert!(plan.stats.scored_vectors > 0);
    }

    #[test]
    fn plans_are_paged_at_cluster_granularity() {
        let mut sel = ClusterKvSelector::new(test_config(), 8);
        observe_prefill(&mut sel, &prefill_keys(80, 8, 4));
        let q = gaussian_vec(&mut seeded(5), 8, 0.0, 1.0);
        let plan = sel.plan(SelectionRequest::new(&q, 80, Budget::new(24)));
        let KvResidency::Paged(pages) = &plan.residency else {
            panic!(
                "ClusterKV selections must be paged, got {:?}",
                plan.residency
            );
        };
        assert!(!pages.is_empty());
        let metadata = sel.clustering().metadata();
        for p in pages {
            assert!(p.page < metadata.num_clusters());
            assert_eq!(p.tokens, metadata.cluster_size(p.page));
        }
        // The page table covers every cluster (for cache warm admission).
        let KvResidency::Paged(table) = sel.page_table() else {
            panic!("page table must be paged");
        };
        assert_eq!(table.len(), metadata.num_clusters());
    }

    #[test]
    fn lossy_config_emits_compressed_plans_with_full_members() {
        use clusterkv_kvcache::CompressionConfig;
        let lossy_cfg =
            test_config().with_compression(CompressionConfig::int8().with_merge_threshold(0.1));
        let mut lossy = ClusterKvSelector::new(lossy_cfg, 8);
        let mut exact = ClusterKvSelector::new(test_config(), 8);
        let keys = prefill_keys(80, 8, 4);
        observe_prefill(&mut lossy, &keys);
        observe_prefill(&mut exact, &keys);
        let q = gaussian_vec(&mut seeded(5), 8, 0.0, 1.0);
        let lp = lossy.plan(SelectionRequest::new(&q, 80, Budget::new(24)));
        let ep = exact.plan(SelectionRequest::new(&q, 80, Budget::new(24)));
        // Compression never changes which tokens are selected, only how the
        // paged ones are recalled.
        assert_eq!(lp.indices, ep.indices);
        let KvResidency::Compressed(cpages) = &lp.residency else {
            panic!("lossy config must emit compressed plans");
        };
        let KvResidency::Paged(pages) = &ep.residency else {
            panic!("lossless config must emit paged plans");
        };
        assert_eq!(cpages.iter().map(|p| p.request).collect::<Vec<_>>(), *pages);
        let metadata = lossy.clustering().metadata();
        for p in cpages {
            assert_eq!(p.members, metadata.cluster_tokens(p.request.page));
            assert_eq!(p.members.len(), p.request.tokens);
        }
        // The page table mirrors the residency kind.
        let KvResidency::Compressed(table) = lossy.page_table() else {
            panic!("lossy page table must be compressed");
        };
        assert_eq!(table.len(), metadata.num_clusters());
        assert!(matches!(exact.page_table(), KvResidency::Paged(_)));
    }

    #[test]
    fn compression_config_feeds_the_prefill_fingerprint() {
        use clusterkv_kvcache::CompressionConfig;
        let keys = prefill_keys(60, 8, 9);
        let mut donor = ClusterKvSelector::new(test_config(), 8);
        chunk_feed(&mut donor, &keys);
        donor.observe(ObserveEvent::PrefillDone { total_tokens: 60 });
        let state = donor.export_prefill_state().unwrap();
        // A lossy selector must not adopt lossless-fingerprinted state: the
        // two produce different residency plans downstream.
        let lossy_cfg = test_config().with_compression(CompressionConfig::int8());
        let mut lossy = ClusterKvSelector::new(lossy_cfg, 8);
        chunk_feed(&mut lossy, &keys);
        assert!(!lossy.adopt_prefill_state(&state, 60));
    }

    #[test]
    fn repeated_queries_hit_the_tiered_cluster_cache() {
        use clusterkv_kvcache::cluster_cache::{ClusterCache, ClusterCacheConfig};
        use clusterkv_kvcache::types::{HeadId, LayerId};
        let mut sel = ClusterKvSelector::new(test_config(), 8);
        observe_prefill(&mut sel, &prefill_keys(80, 8, 4));
        let q = gaussian_vec(&mut seeded(5), 8, 0.0, 1.0);
        // Room for two steps' worth of selected clusters.
        let mut cache = ClusterCache::new(ClusterCacheConfig::for_recency_window(2, 24, 8));

        let first = sel.plan(SelectionRequest::new(&q, 80, Budget::new(24)));
        let KvResidency::Paged(pages) = &first.residency else {
            panic!("paged plan expected");
        };
        let cold = cache.access(LayerId(0), HeadId(0), pages);
        assert!(cold.missed_tokens > 0);
        assert_eq!(cold.hit_tokens, 0, "cold cache has no hits");

        // The same query selects the same clusters, which are now resident.
        let second = sel.plan(SelectionRequest::new(&q, 80, Budget::new(24)));
        let KvResidency::Paged(pages) = &second.residency else {
            panic!("paged plan expected");
        };
        let warm = cache.access(LayerId(0), HeadId(0), pages);
        assert_eq!(warm.missed_tokens, 0, "no new misses expected");
        assert!(warm.hit_tokens > 0);
        assert_eq!(cache.transfers().tokens_moved, cold.missed_tokens);
    }

    #[test]
    fn prefetch_hint_nominates_pages_without_touching_plans() {
        let mut sel = ClusterKvSelector::new(test_config(), 8);
        observe_prefill(&mut sel, &prefill_keys(80, 8, 2));
        let q = gaussian_vec(&mut seeded(3), 8, 0.0, 1.0);
        let before = sel.plan(SelectionRequest::new(&q, 80, Budget::new(24)));
        let hint = sel.prefetch_hint(SelectionRequest::new(&q, 80, Budget::new(24)), 16);
        assert!(!hint.is_empty());
        let metadata = sel.clustering().metadata();
        for p in &hint {
            assert!(p.page < metadata.num_clusters());
            assert_eq!(p.tokens, metadata.cluster_size(p.page));
        }
        // The widened nomination covers the plan's own clusters.
        let KvResidency::Paged(pages) = &before.residency else {
            panic!("paged plan expected");
        };
        for p in pages {
            assert!(hint.contains(p), "hint must cover selected page {p:?}");
        }
        // Scratch-only: the next plan is unchanged by the hint.
        let after = sel.plan(SelectionRequest::new(&q, 80, Budget::new(24)));
        assert_eq!(before, after);
        // Covered contexts never page, so there is nothing to stage.
        assert!(sel
            .prefetch_hint(SelectionRequest::new(&q, 80, Budget::new(128)), 16)
            .is_empty());
    }

    #[test]
    fn decode_appends_feed_incremental_clustering() {
        let mut sel = ClusterKvSelector::new(test_config(), 8);
        observe_prefill(&mut sel, &prefill_keys(40, 8, 6));
        let clusters_before = sel.clustering().num_clusters();
        let mut rng = seeded(7);
        for i in 0..8 {
            let key = gaussian_vec(&mut rng, 8, 0.0, 1.0);
            sel.observe(ObserveEvent::Append {
                position: 40 + i,
                key: &key,
            });
        }
        assert_eq!(sel.clustering().num_clusters(), clusters_before + 2);
        // Newly clustered decode tokens are selectable.
        let q = gaussian_vec(&mut rng, 8, 0.0, 1.0);
        let plan = sel.plan(SelectionRequest::new(&q, 48, Budget::new(20)));
        assert!(plan.len() <= 20);
    }

    #[test]
    fn chunked_prefill_norm_cache_reconciles_consistently() {
        let full = prefill_keys(30, 8, 8);
        let mut sel = ClusterKvSelector::new(test_config(), 8);
        let mut start = 0;
        for len in [5usize, 11, 14] {
            let chunk =
                Matrix::from_rows((start..start + len).map(|i| full.row(i).to_vec()).collect())
                    .unwrap();
            sel.observe(ObserveEvent::PrefillChunk {
                start,
                keys: &chunk,
            });
            start += len;
            // Mid-prefill the chunk-norm cache tracks the buffer exactly.
            assert_eq!(sel.chunk_norms().len(), start);
            for (i, &n) in sel.chunk_norms().iter().enumerate() {
                assert_eq!(n, clusterkv_tensor::kernels::norm_sq(full.row(i)));
            }
        }
        sel.observe(ObserveEvent::PrefillDone { total_tokens: 30 });
        // Reconciliation drains the cache into the clustering pass and the
        // resulting centroid-norm cache matches recomputation.
        assert!(sel.chunk_norms().is_empty());
        let sc = sel.clustering();
        for (c, row) in sc.centroids().iter_rows().enumerate() {
            assert_eq!(
                sc.centroid_norms()[c],
                clusterkv_tensor::kernels::norm_sq(row)
            );
        }
        // And the whole state equals a monolithic prefill.
        let mut mono = ClusterKvSelector::new(test_config(), 8);
        mono.observe(ObserveEvent::Prefill { keys: &full });
        assert_eq!(mono.clustering().centroids(), sc.centroids());
        assert_eq!(mono.clustering().centroid_norms(), sc.centroid_norms());
    }

    #[test]
    fn plan_workspace_reaches_steady_state() {
        let mut sel = ClusterKvSelector::new(test_config(), 8);
        observe_prefill(&mut sel, &prefill_keys(120, 8, 12));
        let mut rng = seeded(13);
        // Warm-up step sizes the buffers.
        let q = gaussian_vec(&mut rng, 8, 0.0, 1.0);
        let _ = sel.plan(SelectionRequest::new(&q, 120, Budget::new(24)));
        let warm = sel.workspace_bytes();
        assert!(warm > 0);
        for _ in 0..20 {
            let q = gaussian_vec(&mut rng, 8, 0.0, 1.0);
            let _ = sel.plan(SelectionRequest::new(&q, 120, Budget::new(24)));
        }
        assert_eq!(
            sel.workspace_bytes(),
            warm,
            "steady-state plans must not grow the workspace"
        );
    }

    #[test]
    fn factory_creates_per_head_seeds() {
        let factory = ClusterKvFactory::new(test_config());
        assert_eq!(factory.name(), "ClusterKV");
        assert_eq!(factory.config().sink_tokens, 4);
        let a = factory.create(HeadContext {
            layer: 0,
            head: 0,
            head_dim: 8,
        });
        let b = factory.create(HeadContext {
            layer: 0,
            head: 1,
            head_dim: 8,
        });
        // Different heads are independent objects with their own state.
        assert_eq!(a.name(), "ClusterKV");
        assert_eq!(b.name(), "ClusterKV");
    }

    #[test]
    fn default_factory_uses_paper_config() {
        let f = ClusterKvFactory::default();
        assert_eq!(f.config().tokens_per_cluster, 80);
    }

    #[test]
    fn end_to_end_with_inference_engine() {
        use clusterkv_model::{InferenceEngine, ModelConfig};
        let factory = ClusterKvFactory::new(test_config());
        let mut engine = InferenceEngine::with_synthetic_weights(
            ModelConfig::tiny(),
            11,
            &factory,
            Budget::new(16),
        )
        .unwrap();
        let prompt: Vec<usize> = (0..40).map(|i| (i * 3) % 128).collect();
        let generated = engine.generate(&prompt, 5).unwrap();
        assert_eq!(generated.len(), 5);
        let stats = engine.policy_stats();
        assert!(
            stats.scored_vectors > 0,
            "selection ran on selective layers"
        );
    }

    #[test]
    fn end_to_end_with_serve_engine_sessions() {
        use clusterkv_model::{ModelConfig, ServeEngine};
        let factory = ClusterKvFactory::new(test_config());
        let mut engine = ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(11)
            .budget(Budget::new(16))
            .policy(Box::new(factory))
            .build()
            .unwrap();
        let a = engine.create_session().unwrap();
        let b = engine.create_session().unwrap();
        let prompt: Vec<usize> = (0..40).map(|i| (i * 3) % 128).collect();
        engine.prefill(a, &prompt).unwrap();
        engine.prefill(b, &prompt).unwrap();
        for _ in 0..5 {
            engine.decode_batch(&[a, b]).unwrap();
        }
        // Identical prompts through identical per-head seeds: the sessions
        // accumulate identical statistics, independently.
        let sa = engine.session_stats(a).unwrap();
        let sb = engine.session_stats(b).unwrap();
        assert!(sa.scored_vectors > 0);
        assert_eq!(sa, sb);
        engine.release(a).unwrap();
        engine.release(b).unwrap();
    }

    fn chunk_feed(sel: &mut ClusterKvSelector, keys: &Matrix) {
        sel.observe(ObserveEvent::PrefillChunk { start: 0, keys });
    }

    #[test]
    fn prefix_store_shares_clustering_state_across_sessions() {
        use clusterkv_model::{ModelConfig, ServeEngine};
        let prompt: Vec<usize> = (0..48).map(|i| (i * 7 + 1) % 128).collect();
        let decode = |engine: &mut ServeEngine, s| -> Vec<usize> {
            (0..6)
                .map(|_| engine.decode_batch(&[s]).unwrap()[0].next_token)
                .collect()
        };
        // Reference: no store, both sessions cluster from scratch.
        let mut cold = ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(11)
            .budget(Budget::new(16))
            .policy(Box::new(ClusterKvFactory::new(test_config())))
            .build()
            .unwrap();
        let c = cold.create_session().unwrap();
        cold.prefill(c, &prompt).unwrap();
        let cold_stream = decode(&mut cold, c);

        let mut engine = ServeEngine::builder(ModelConfig::tiny())
            .synthetic_weights(11)
            .budget(Budget::new(16))
            .policy(Box::new(ClusterKvFactory::new(test_config())))
            .prefix_store(Bytes(1 << 20))
            .build()
            .unwrap();
        let a = engine.create_session().unwrap();
        engine.prefill(a, &prompt).unwrap();
        assert_eq!(decode(&mut engine, a), cold_stream, "donor session");
        // The second session adopts the donor's exported clustering (same
        // per-head fingerprints, same token count) on top of fast-pathed KV:
        // its decode stream must still be byte-identical.
        let b = engine.create_session().unwrap();
        engine.prefill(b, &prompt).unwrap();
        let (matched, fast) = engine.session_prefix_tokens(b).unwrap();
        assert_eq!(matched, prompt.len());
        assert_eq!(fast, prompt.len() - 1);
        assert_eq!(decode(&mut engine, b), cold_stream, "adopting session");
        let stats = engine.prefix_store_stats().unwrap();
        assert!(
            stats.shared_bytes > Bytes(0),
            "pages plus cached selector states are charged to the store"
        );
    }

    #[test]
    fn exported_prefill_state_adopts_byte_identically() {
        let keys = prefill_keys(60, 8, 9);
        let mut donor = ClusterKvSelector::new(test_config(), 8);
        assert!(
            donor.export_prefill_state().is_none(),
            "nothing to export before reconcile"
        );
        chunk_feed(&mut donor, &keys);
        assert!(
            donor.export_prefill_state().is_none(),
            "nothing to export mid-prefill"
        );
        donor.observe(ObserveEvent::PrefillDone { total_tokens: 60 });
        let state = donor.export_prefill_state().expect("reconciled state");
        assert!(state.bytes > Bytes(0));

        // The adopter buffered the same chunks but skips its own reconcile.
        let mut adopter = ClusterKvSelector::new(test_config(), 8);
        chunk_feed(&mut adopter, &keys);
        assert!(adopter.adopt_prefill_state(&state, 60));
        assert_eq!(adopter.chunk_norms().len(), 0, "buffers dropped");
        assert_eq!(
            adopter.clustering().centroids().as_slice(),
            donor.clustering().centroids().as_slice(),
            "adopted centroids are the donor's, bitwise"
        );
        assert_eq!(
            adopter.clustering().num_tokens(),
            donor.clustering().num_tokens()
        );
        // Identical plans follow from identical state.
        let q = gaussian_vec(&mut seeded(13), 8, 0.0, 1.0);
        let pa = adopter.plan(SelectionRequest::new(&q, 60, Budget::new(24)));
        let pd = donor.plan(SelectionRequest::new(&q, 60, Budget::new(24)));
        assert_eq!(pa.indices, pd.indices);
    }

    #[test]
    fn adoption_rejects_mismatched_state() {
        let keys = prefill_keys(60, 8, 9);
        let mut donor = ClusterKvSelector::new(test_config(), 8);
        chunk_feed(&mut donor, &keys);
        donor.observe(ObserveEvent::PrefillDone { total_tokens: 60 });
        let state = donor.export_prefill_state().unwrap();

        // Wrong token count: the state is for a different prompt length.
        let mut adopter = ClusterKvSelector::new(test_config(), 8);
        assert!(!adopter.adopt_prefill_state(&state, 59));

        // Wrong seed (the factory's per-head derivation lands here): the
        // fingerprint differs, so cross-head adoption is refused.
        let mut other_head = ClusterKvSelector::new(test_config().with_seed(12345), 8);
        chunk_feed(&mut other_head, &keys);
        assert!(!other_head.adopt_prefill_state(&state, 60));
        // Refusal leaves the buffered chunks intact for the normal path.
        assert_eq!(other_head.chunk_norms().len(), 60);
        other_head.observe(ObserveEvent::PrefillDone { total_tokens: 60 });
        assert_eq!(other_head.clustering().num_tokens(), 60);
    }
}
